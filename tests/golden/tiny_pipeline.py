"""Tiny fixed-seed pipeline config shared by the golden suite and tests.

One deliberately small but fully end-to-end configuration — 4 training
workloads, a strided clock grid, short training — that exercises
collection, training, and the online phase in a couple of seconds.  The
golden file in this directory pins its outputs; the serving and phased
tests reuse the trained models so they don't retrain per module.

Everything here is deterministic: fixed seeds, fixed workload order,
fresh devices for the online phase (decoupled from the training device's
RNG stream position, so golden values survive changes to collection
internals that don't change the maths).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.models import PowerModel, TimeModel
from repro.core.pipeline import FrequencySelectionPipeline
from repro.gpusim import GA100, SimulatedGPU
from repro.workloads import get_workload

GOLDEN_PATH = Path(__file__).parent / "golden_tiny_pipeline.json"

TRAINING_WORKLOADS = ("dgemm", "stream", "spmv", "lud")
EVAL_WORKLOADS = ("lammps", "lstm", "resnet50")
OBJECTIVE_NAMES = ("EDP", "ED2P")
THRESHOLDS = (None, 0.03)

MODEL_SEED = 0
TRAIN_DEVICE_SEED = 7
EVAL_DEVICE_SEED = 123
MAX_SAMPLES_PER_RUN = 4
POWER_EPOCHS = 12
TIME_EPOCHS = 8
CLOCK_STRIDE = 10


def tiny_freqs(device: SimulatedGPU) -> tuple[float, ...]:
    """Strided clock grid that always includes the reference (max) clock."""
    usable = tuple(device.dvfs.usable_mhz)
    freqs = usable[::CLOCK_STRIDE]
    if freqs[-1] != usable[-1]:
        freqs = freqs + (usable[-1],)
    return freqs


def train_tiny_models() -> tuple[PowerModel, TimeModel]:
    """Train the tiny model pair (TDP-normalised power, relative time)."""
    device = SimulatedGPU(GA100, seed=TRAIN_DEVICE_SEED, max_samples_per_run=MAX_SAMPLES_PER_RUN)
    pipe = FrequencySelectionPipeline(
        device,
        power_model=PowerModel(reference_power_w=device.arch.tdp_watts, seed=MODEL_SEED),
        time_model=TimeModel(seed=MODEL_SEED),
    )
    pipe.power_model.epochs = POWER_EPOCHS
    pipe.time_model.epochs = TIME_EPOCHS
    pipe.fit_offline(
        [get_workload(name) for name in TRAINING_WORKLOADS],
        runs_per_config=1,
        freqs_mhz=tiny_freqs(device),
    )
    return pipe.power_model, pipe.time_model


def make_tiny_pipeline(
    models: tuple[PowerModel, TimeModel],
    *,
    device_seed: int = EVAL_DEVICE_SEED,
    device: SimulatedGPU | None = None,
) -> FrequencySelectionPipeline:
    """Fitted pipeline around a fresh device sharing the tiny models."""
    power_model, time_model = models
    if device is None:
        device = SimulatedGPU(GA100, seed=device_seed, max_samples_per_run=MAX_SAMPLES_PER_RUN)
    return FrequencySelectionPipeline(device, power_model=power_model, time_model=time_model)


def golden_payload(models: tuple[PowerModel, TimeModel] | None = None) -> dict:
    """The pinned end-to-end outputs for the tiny config.

    Selected frequency / index / threshold flag are exact-match fields;
    energy saving and perf degradation are float fields compared with a
    tight tolerance by the golden test.
    """
    if models is None:
        models = train_tiny_models()
    pipe = make_tiny_pipeline(models)
    results = {}
    # One fresh device per threshold variant so each block is independent
    # of how many measurements the previous block drew.
    for threshold in THRESHOLDS:
        variant = make_tiny_pipeline(models)
        key = "unconstrained" if threshold is None else f"threshold_{threshold}"
        block: dict[str, dict] = {}
        for name in EVAL_WORKLOADS:
            res = variant.run_online(get_workload(name), threshold=threshold)
            block[name] = {
                objective: {
                    "freq_mhz": res.selection(objective).freq_mhz,
                    "index": res.selection(objective).index,
                    "energy_saving": res.selection(objective).energy_saving,
                    "perf_degradation": res.selection(objective).perf_degradation,
                    "threshold_applied": res.selection(objective).threshold_applied,
                }
                for objective in OBJECTIVE_NAMES
            }
        results[key] = block
    return {
        "config": {
            "arch": "GA100",
            "training_workloads": list(TRAINING_WORKLOADS),
            "eval_workloads": list(EVAL_WORKLOADS),
            "model_seed": MODEL_SEED,
            "train_device_seed": TRAIN_DEVICE_SEED,
            "eval_device_seed": EVAL_DEVICE_SEED,
            "max_samples_per_run": MAX_SAMPLES_PER_RUN,
            "power_epochs": POWER_EPOCHS,
            "time_epochs": TIME_EPOCHS,
            "clock_stride": CLOCK_STRIDE,
            "n_clocks": len(tiny_freqs(pipe.device)),
        },
        "results": results,
    }


def write_golden(payload: dict | None = None) -> Path:
    """Write (or refresh) the checked-in golden file."""
    payload = payload if payload is not None else golden_payload()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return GOLDEN_PATH
