"""Figure 5: activity invariance across input sizes.

Shape assertions (paper Section 4.2.3): both activity features are flat
in input size at the maximum clock.
"""

import pytest

from repro.experiments.fig5 import relative_spread, render_fig5, run_fig5


@pytest.fixture(scope="module")
def fig5(ctx):
    return run_fig5(ctx)


def test_fig5_regenerate(benchmark, ctx, fig5, report):
    benchmark(run_fig5, ctx)
    report("Figure 5 - input-size invariance of activities", render_fig5(fig5))


def test_fig5_fp_invariant_across_sizes(fig5):
    # DGEMM's smallest size has relatively larger PCIe share, so the
    # spread includes a real (small) size effect plus sampling noise.
    assert relative_spread(fig5.dgemm.fp_active) < 0.18
    assert relative_spread(fig5.stream.fp_active) < 0.30


def test_fig5_dram_invariant_across_sizes(fig5):
    assert relative_spread(fig5.stream.dram_active) < 0.12
    assert relative_spread(fig5.dgemm.dram_active) < 0.30
