"""Dense-layer tests, including a full numerical gradient check."""

import numpy as np
import pytest

from repro.nn import MSE, Dense


class TestForward:
    def test_output_shape(self):
        layer = Dense(3, 5, "selu", rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((7, 3)))
        assert out.shape == (7, 5)

    def test_wrong_input_width_rejected(self):
        layer = Dense(3, 5)
        with pytest.raises(ValueError, match="shape"):
            layer.forward(np.zeros((7, 4)))

    def test_one_d_input_rejected(self):
        layer = Dense(3, 5)
        with pytest.raises(ValueError, match="shape"):
            layer.forward(np.zeros(3))

    def test_linear_layer_is_affine(self):
        layer = Dense(2, 1, "linear", rng=np.random.default_rng(0))
        layer.params["W"] = np.array([[2.0], [3.0]])
        layer.params["b"] = np.array([1.0])
        out = layer.forward(np.array([[1.0, 1.0], [0.0, 2.0]]))
        assert np.allclose(out[:, 0], [6.0, 7.0])

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError, match="in_features"):
            Dense(0, 5)

    def test_num_parameters(self):
        assert Dense(3, 5).num_parameters() == 3 * 5 + 5


class TestBackward:
    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2)
        with pytest.raises(RuntimeError, match="backward"):
            layer.backward(np.zeros((1, 2)))

    def test_inference_forward_does_not_cache(self):
        layer = Dense(2, 2)
        layer.forward(np.zeros((1, 2)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    @pytest.mark.parametrize("activation", ["linear", "selu", "tanh", "sigmoid"])
    def test_numerical_gradient_check(self, activation):
        """Backprop grads must match central finite differences."""
        rng = np.random.default_rng(3)
        layer = Dense(4, 3, activation, rng=rng)
        x = rng.standard_normal((8, 4))
        y = rng.standard_normal((8, 3))
        loss = MSE()

        def compute_loss():
            return loss(layer.forward(x, training=True), y)

        base = compute_loss()
        layer.backward(loss.gradient(layer.forward(x, training=True), y))
        analytic_w = layer.grads["W"].copy()
        analytic_b = layer.grads["b"].copy()

        h = 1e-6
        for idx in [(0, 0), (2, 1), (3, 2)]:
            layer.params["W"][idx] += h
            plus = compute_loss()
            layer.params["W"][idx] -= 2 * h
            minus = compute_loss()
            layer.params["W"][idx] += h
            numeric = (plus - minus) / (2 * h)
            assert analytic_w[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

        for j in range(3):
            layer.params["b"][j] += h
            plus = compute_loss()
            layer.params["b"][j] -= 2 * h
            minus = compute_loss()
            layer.params["b"][j] += h
            numeric = (plus - minus) / (2 * h)
            assert analytic_b[j] == pytest.approx(numeric, rel=1e-4, abs=1e-7)
        assert base >= 0

    def test_backward_returns_input_gradient_shape(self):
        layer = Dense(4, 3)
        x = np.random.default_rng(0).standard_normal((5, 4))
        layer.forward(x, training=True)
        grad_in = layer.backward(np.ones((5, 3)))
        assert grad_in.shape == (5, 4)


class TestInitialization:
    def test_selu_uses_lecun_scale(self):
        rng = np.random.default_rng(0)
        ws = [Dense(1000, 100, "selu", rng=np.random.default_rng(s)).params["W"] for s in range(3)]
        std = np.mean([w.std() for w in ws])
        assert std == pytest.approx(np.sqrt(1.0 / 1000), rel=0.1)

    def test_relu_uses_he_scale(self):
        w = Dense(1000, 100, "relu", rng=np.random.default_rng(0)).params["W"]
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_bias_starts_zero(self):
        assert np.all(Dense(3, 4).params["b"] == 0.0)

    def test_seeded_layers_identical(self):
        a = Dense(3, 4, "selu", rng=np.random.default_rng(11))
        b = Dense(3, 4, "selu", rng=np.random.default_rng(11))
        assert np.array_equal(a.params["W"], b.params["W"])
