"""Batched, cached online frequency-selection service.

The paper's online phase (Section 5, Algorithm 1) decides one unseen
application at a time; a datacenter deployment sees a *stream* of
applications, most of which it has seen before.  The
:class:`SelectionService` serves that stream on top of a trained
:class:`~repro.core.pipeline.FrequencySelectionPipeline`:

* **Batching** — a flush of n requests runs *one* packed forward pass
  per model through the fused inference engine
  (:class:`~repro.serving.engine.FusedInferenceEngine`) instead of n
  sequential curve predictions.  The default engine mode replays the
  reference pipeline bitwise; ``fused=True`` opts into the folded-scaler
  fast path (1e-9 equivalence, not bitwise) and ``shards>1`` adds a
  multiprocess shard pool.
* **Caching** — prediction curves are memoized in a bounded LRU keyed by
  the quantized feature vector + device architecture + model
  fingerprints, so repeated (or near-identical, under coarse
  quantization) applications skip DNN inference entirely.
* **Dedup** — identical requests inside one flush share a single curve
  computation and a single Algorithm 1 pass.

Hard correctness bar, asserted by ``tests/serving``: every batched or
cached response is bitwise-identical to what a sequential
``run_online`` loop would have produced for the same request stream.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.dataset import FeatureVector, features_at_max
from repro.core.energy import ED2P, EDP, ObjectiveFunction, energy_from_power_time
from repro.units import JoulesArray, MHzArray, Seconds, SecondsArray, Watts, WattsArray
from repro.core.pipeline import FrequencySelectionPipeline, OnlineResult
from repro.core.selection import SelectionResult, select_optimal_frequency_many
from repro.obs.metrics import HistogramSnapshot, MetricsRegistry
from repro.serving.cache import LRUCache
from repro.serving.engine import FusedInferenceEngine
from repro.workloads.base import Workload

__all__ = ["SelectionRequest", "ServiceResponse", "ServiceStats", "SelectionService", "STAGES"]

#: Sentinel distinguishing "no threshold override" from "override to None".
_UNSET = object()


@dataclass(frozen=True)
class SelectionRequest:
    """One application asking the service for a clock.

    Either a ``workload`` handle (the service profiles it once at the
    default clock, exactly as ``run_online`` would) or a pre-profiled
    ``features`` vector with the measured ``time_at_max_s`` (and
    optionally ``power_at_max_w``, reporting-only).
    """

    name: str
    workload: Workload | None = None
    features: FeatureVector | None = None
    time_at_max_s: Seconds | None = None
    #: Measured power at f_max; reporting-only (0.0 when unknown).
    power_at_max_w: Watts = 0.0
    size: int | None = None
    runs: int = 1

    def __post_init__(self) -> None:
        if (self.workload is None) == (self.features is None):
            raise ValueError("request needs exactly one of workload= or features=")
        if self.runs < 1:
            raise ValueError("runs must be >= 1")

    @classmethod
    def from_workload(
        cls, workload: Workload, *, size: int | None = None, runs: int = 1
    ) -> "SelectionRequest":
        """Request that has the service profile ``workload`` at f_max."""
        return cls(name=workload.name, workload=workload, size=size, runs=runs)

    @classmethod
    def from_features(
        cls,
        features: FeatureVector,
        time_at_max_s: Seconds,
        *,
        power_at_max_w: Watts = 0.0,
        name: str = "request",
    ) -> "SelectionRequest":
        """Request for an application already profiled at the default clock."""
        return cls(
            name=name,
            features=features,
            time_at_max_s=float(time_at_max_s),
            power_at_max_w=float(power_at_max_w),
        )


@dataclass(frozen=True)
class ServiceResponse:
    """Everything the service decided for one request.

    Field-compatible with :class:`~repro.core.pipeline.OnlineResult`
    (see :meth:`to_online_result`), plus service provenance flags.
    """

    name: str
    freqs_mhz: MHzArray
    features: FeatureVector
    measured_power_at_max_w: Watts
    measured_time_at_max_s: Seconds
    power_w: WattsArray
    time_s: SecondsArray
    energy_j: JoulesArray
    selections: dict[str, SelectionResult]
    #: Whether the curves came out of the LRU (no DNN forward this flush).
    from_cache: bool

    def selection(self, objective_name: str) -> SelectionResult:
        """Selection result for one objective by name."""
        try:
            return self.selections[objective_name]
        except KeyError:
            raise KeyError(
                f"no selection for {objective_name!r}; available: {sorted(self.selections)}"
            ) from None

    def to_online_result(self) -> OnlineResult:
        """The equivalent ``run_online`` result object."""
        return OnlineResult(
            workload=self.name,
            freqs_mhz=self.freqs_mhz,
            features=self.features,
            measured_power_at_max_w=self.measured_power_at_max_w,
            measured_time_at_max_s=self.measured_time_at_max_s,
            power_w=self.power_w,
            time_s=self.time_s,
            energy_j=self.energy_j,
            selections=self.selections,
        )


#: Flush stages in execution order (also the stage-histogram keys).
STAGES = ("measure", "lookup", "predict", "select")


class _Fanout:
    """One service instrument mirrored onto one or more registries.

    The first target is the service's private instrument (the source of
    truth for :meth:`SelectionService.stats`); any further targets are
    shared registries that aggregate across services.
    """

    __slots__ = ("_targets",)

    def __init__(self, targets) -> None:
        self._targets = tuple(targets)

    @property
    def primary(self):
        return self._targets[0]

    def inc(self, amount: float = 1.0) -> None:
        for target in self._targets:
            target.inc(amount)

    def observe(self, value: float) -> None:
        for target in self._targets:
            target.observe(value)

    def set_max(self, value: float) -> None:
        for target in self._targets:
            target.set_max(value)


@dataclass(frozen=True)
class ServiceStats:
    """Lifetime service counters plus per-stage wall time.

    The per-stage floats (``measure_s`` ...) keep their historical
    meaning — total wall time across all flushes — but are now the sums
    of per-flush :class:`~repro.obs.metrics.Histogram` observations, so
    the snapshot also carries full latency distributions in
    ``stage_latency`` (one histogram snapshot per stage, keyed
    "measure"/"lookup"/"predict"/"select").
    """

    requests: int
    batches: int
    max_batch_size: int
    measured_requests: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_entries: int
    #: Unique curve computations actually sent through the DNNs.
    curves_computed: int
    measure_s: float
    lookup_s: float
    predict_s: float
    select_s: float
    #: Per-flush latency distribution per stage.
    stage_latency: dict[str, HistogramSnapshot] = field(default_factory=dict)
    #: Engine configuration serving the predict stage ("exact", "fused",
    #: or "<mode>xN" with an N-shard pool).
    engine: str = "exact"

    @property
    def mean_batch_size(self) -> float:
        """Average requests per flush."""
        return self.requests / self.batches if self.batches else 0.0

    @property
    def hit_rate(self) -> float:
        """LRU hit fraction over all curve lookups."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_s(self) -> float:
        """Wall time across all service stages."""
        return self.measure_s + self.lookup_s + self.predict_s + self.select_s

    def percentile(self, stage: str, p: float) -> float:
        """Per-flush latency percentile for one stage (p in [0, 100])."""
        try:
            snap = self.stage_latency[stage]
        except KeyError:
            raise KeyError(f"unknown stage {stage!r}; available: {STAGES}") from None
        return snap.percentile(p)


class SelectionService:
    """Thread-safe batched/cached frontend over a fitted pipeline.

    One service instance owns one device and one trained model pair.
    ``select_many`` is the synchronous batch entry point;
    :meth:`submit` feeds the background micro-batcher
    (:class:`~repro.serving.microbatch.MicroBatcher`) and returns a
    future.  All public entry points may be called from many threads;
    selection work is serialized internally (the device and its RNG are
    stateful), which is also what makes workload-handle measurement
    order deterministic.

    ``quantize_decimals`` controls cache-key quantization of the
    activity features.  The default (12 decimals) is far below sensor
    noise, so only bit-exact repeats share an entry and every response
    stays bitwise-identical to a sequential ``run_online`` loop.
    Coarser values (e.g. 3) trade that identity for cache hits across
    *near*-identical profiles of the same application — re-measured
    features differing in the noise digits reuse the first profile's
    curves.
    """

    def __init__(
        self,
        pipeline: FrequencySelectionPipeline,
        *,
        objectives: tuple[ObjectiveFunction, ...] = (EDP, ED2P),
        threshold: float | None = None,
        cache_size: int = 1024,
        quantize_decimals: int = 12,
        max_batch_size: int = 64,
        batch_window_s: float = 0.002,
        fused: bool = False,
        shards: int = 1,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not pipeline.is_fitted:
            raise ValueError("pipeline must be fitted before serving")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if quantize_decimals < 0:
            raise ValueError("quantize_decimals must be non-negative")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.pipeline = pipeline
        self.objectives = tuple(objectives)
        self.threshold = threshold
        self.quantize_decimals = quantize_decimals
        self.max_batch_size = max_batch_size
        self.batch_window_s = batch_window_s
        self.fused = fused
        self.shards = shards
        self._cache = LRUCache(cache_size)
        self._lock = threading.RLock()
        self._batcher = None
        self._key_static: tuple = ()
        self._engine: FusedInferenceEngine | None = None
        self.refresh_models()
        # Counters and stage histograms live on a private metrics
        # registry, so ``stats()`` always describes *this* service.  An
        # external ``registry`` (e.g. ``obs.get_registry()``, as the CLI
        # passes) additionally receives every update under the same
        # metric names — there the numbers aggregate across services and
        # process lifetime, which is what an exporter wants.
        self.metrics = MetricsRegistry()
        registries = (self.metrics,) if registry is None else (self.metrics, registry)

        def counter(name: str, help: str) -> _Fanout:
            return _Fanout([r.counter(name, help) for r in registries])

        self._m_requests = counter("serving_requests_total", "selection requests served")
        self._m_batches = counter("serving_batches_total", "flushes executed")
        self._m_measured = counter(
            "serving_measured_requests_total", "requests profiled on-device at f_max"
        )
        self._m_curves = counter(
            "serving_curves_computed_total", "unique curve computations through the DNNs"
        )
        self._m_max_batch = _Fanout(
            [r.gauge("serving_max_batch_size", "largest flush seen") for r in registries]
        )
        self._m_stage = {
            stage: _Fanout(
                [
                    r.histogram(
                        f"serving_flush_{stage}_seconds",
                        f"per-flush wall time of the {stage} stage",
                    )
                    for r in registries
                ]
            )
            for stage in STAGES
        }

    # ------------------------------------------------------------------
    # Cache keys and invalidation
    # ------------------------------------------------------------------
    def refresh_models(self) -> None:
        """Re-fingerprint the models and invalidate every cached curve.

        Call after refitting or reloading the pipeline's models: the new
        fingerprints orphan old keys, the explicit clear releases their
        memory immediately rather than waiting for LRU churn, and the
        packed inference engine is rebuilt around the new weights.
        """
        with self._lock:
            power_model = self.pipeline.power_model
            time_model = self.pipeline.time_model
            device = self.pipeline.device
            self._key_static = (
                device.arch.name,
                power_model.fingerprint(),
                time_model.fingerprint(),
            )
            self._cache.clear()
            if self._engine is not None:
                self._engine.close()
            scale = (
                device.arch.tdp_watts if power_model.reference_power_w is not None else None
            )
            self._engine = FusedInferenceEngine(
                power_model.inference_spec(),
                time_model.inference_spec(),
                device.dvfs.usable_array(),
                power_scale_w=scale,
                fast=self.fused,
                shards=self.shards,
            )

    def clear_cache(self) -> None:
        """Drop every memoized curve, keeping the packed engine.

        The cheap way to force cold-path behaviour (e.g. for
        benchmarking, or after an external store invalidation): unlike
        :meth:`refresh_models` it neither re-fingerprints nor repacks —
        the engine's folded weights and warmed arenas survive.
        """
        with self._lock:
            self._cache.clear()

    def _curve_key(self, features: FeatureVector) -> tuple:
        return (
            *self._key_static,
            round(features.fp_active, self.quantize_decimals),
            round(features.dram_active, self.quantize_decimals),
        )

    # ------------------------------------------------------------------
    # Synchronous batch path
    # ------------------------------------------------------------------
    def select_one(self, request: SelectionRequest, **kwargs) -> ServiceResponse:
        """Convenience single-request flush (same path as a 1-batch)."""
        return self.select_many([request], **kwargs)[0]

    def select_many(
        self,
        requests: Sequence[SelectionRequest],
        *,
        objectives: tuple[ObjectiveFunction, ...] | None = None,
        threshold: float | None = _UNSET,  # type: ignore[assignment]
    ) -> list[ServiceResponse]:
        """Serve one flush of requests; responses align with the input order.

        Workload-handle requests are profiled sequentially in request
        order on the pipeline's device (measurement is stateful and
        cannot batch); everything downstream — curve prediction,
        energy, Algorithm 1 — runs batched and deduplicated.
        """
        objs = self.objectives if objectives is None else tuple(objectives)
        thr = self.threshold if threshold is _UNSET else threshold
        if not requests:
            return []
        with self._lock:
            return self._flush(list(requests), objs, thr)

    def _flush(
        self,
        requests: list[SelectionRequest],
        objectives: tuple[ObjectiveFunction, ...],
        threshold: float | None,
    ) -> list[ServiceResponse]:
        device = self.pipeline.device
        freqs = device.dvfs.usable_array()

        with obs.span(
            "serving.flush", batch=len(requests), engine=self._engine.mode
        ) as flush_span:
            return self._flush_traced(
                flush_span, requests, objectives, threshold, device, freqs
            )

    def _flush_traced(
        self,
        flush_span,
        requests: list[SelectionRequest],
        objectives: tuple[ObjectiveFunction, ...],
        threshold: float | None,
        device,
        freqs,
    ) -> list[ServiceResponse]:
        """Column-oriented flush: requests live in parallel numpy columns.

        From here on a request is a row index — features, measured
        maxima, cache slots, and Algorithm-1 combos are parallel columns
        joined by gather/scatter index arrays rather than per-request
        dicts, so the per-request Python cost is one response object.
        """
        time_model = self.pipeline.time_model
        measured = 0
        n = len(requests)

        # Stage 1 — acquire per-request profiles (measure workload handles).
        t0 = _time.perf_counter()
        with obs.span("serving.measure") as measure_span:
            features_col: list[FeatureVector] = []
            p_max_col: list[float] = []
            t_max_col: list[float | None] = []
            fp_col = np.empty(n)
            dram_col = np.empty(n)
            for i, req in enumerate(requests):
                if req.workload is not None:
                    fv, p_max, t_max = features_at_max(
                        device, req.workload, runs=req.runs, size=req.size
                    )
                    measured += 1
                else:
                    fv, p_max, t_max = req.features, req.power_at_max_w, req.time_at_max_s
                features_col.append(fv)
                p_max_col.append(p_max)
                t_max_col.append(t_max)
                fp_col[i] = fv.fp_active
                dram_col[i] = fv.dram_active
            measure_span.set(measured=measured)
        t1 = _time.perf_counter()

        # Stage 2 — dedup into curve slots, then one batched cache probe.
        with obs.span("serving.lookup") as lookup_span:
            q = self.quantize_decimals
            static = self._key_static
            keys = [
                (*static, round(fp, q), round(dram, q))
                for fp, dram in zip(fp_col.tolist(), dram_col.tolist())
            ]
            slot_of: dict[tuple, int] = {}
            slots = np.empty(n, dtype=np.intp)
            first_row: list[int] = []
            unique_keys: list[tuple] = []
            for i, key in enumerate(keys):
                slot = slot_of.get(key)
                if slot is None:
                    slot = len(unique_keys)
                    slot_of[key] = slot
                    unique_keys.append(key)
                    first_row.append(i)
                slots[i] = slot
            cached = self._cache.get_many(unique_keys)
            power_rows = [entry[0] if entry is not None else None for entry in cached]
            unit_rows = [entry[1] if entry is not None else None for entry in cached]
            miss_slots = [s for s, entry in enumerate(cached) if entry is None]
            lookup_span.set(unique=len(unique_keys), hits=len(unique_keys) - len(miss_slots))
        t2 = _time.perf_counter()

        # Stage 3 — one fused engine pass over all missing curves.
        with obs.span("serving.predict", misses=len(miss_slots)):
            full_matrices = None
            if miss_slots:
                all_miss = len(miss_slots) == len(unique_keys)
                miss_rows = (
                    np.asarray(first_row, dtype=np.intp)
                    if all_miss
                    else np.array([first_row[s] for s in miss_slots], dtype=np.intp)
                )
                power_matrix, unit_time_matrix = self._engine.infer(
                    fp_col[miss_rows], dram_col[miss_rows]
                )
                # Responses and cache entries share these rows; freeze them so
                # no consumer can corrupt a curve another request will reuse.
                power_matrix.flags.writeable = False
                unit_time_matrix.flags.writeable = False
                if all_miss:
                    # Cold-flush fast path: slot j is matrix row j, so the
                    # scatter is a C-level row split instead of a Python loop.
                    power_rows = list(power_matrix)
                    unit_rows = list(unit_time_matrix)
                    entries = list(zip(unique_keys, zip(power_rows, unit_rows)))
                    full_matrices = (power_matrix, unit_time_matrix)
                else:
                    entries = []
                    for j, slot in enumerate(miss_slots):
                        power_rows[slot] = power_matrix[j]
                        unit_rows[slot] = unit_time_matrix[j]
                        entries.append((unique_keys[slot], (power_matrix[j], unit_time_matrix[j])))
                self._cache.put_many(entries)
        t3 = _time.perf_counter()

        # Stage 4 — energy + Algorithm 1, vectorized over deduped
        # (curve, p_max, t_max) combos; objectives/threshold are flush
        # constants, so the combo key replaces the old per-request memo.
        with obs.span("serving.select") as select_span:
            combo_of: dict[tuple, int] = {}
            combo_col = np.empty(n, dtype=np.intp)
            combo_slot: list[int] = []
            combo_t_max: list[float | None] = []
            for i in range(n):
                ck = (int(slots[i]), p_max_col[i], t_max_col[i])
                combo = combo_of.get(ck)
                if combo is None:
                    combo = len(combo_slot)
                    combo_of[ck] = combo
                    combo_slot.append(int(slots[i]))
                    combo_t_max.append(t_max_col[i])
                combo_col[i] = combo  # repro: noqa[PERF001] — dict-keyed dedup is order-dependent and inherently sequential; n is one micro-batch
            if (
                full_matrices is not None
                and len(combo_slot) == n
                and combo_slot == list(range(n))
            ):
                # All requests distinct and uncached: the combo matrices ARE
                # the engine outputs — skip the per-row restack entirely.
                power_c, unit_c = full_matrices
            else:
                power_c = np.stack([power_rows[s] for s in combo_slot])
                unit_c = np.stack([unit_rows[s] for s in combo_slot])
            if time_model.target == "relative":
                if any(t is None for t in combo_t_max):
                    raise ValueError("time_at_max_s is required for the relative time target")
                time_c = unit_c * np.asarray(combo_t_max, dtype=float)[:, None]
            else:
                time_c = unit_c
            energy_c = energy_from_power_time(power_c, time_c)
            selections_c: list[dict[str, SelectionResult]] = [{} for _ in combo_slot]
            for obj in objectives:
                results = select_optimal_frequency_many(
                    freqs, energy_c, time_c, objective=obj, threshold=threshold
                )
                for combo, result in enumerate(results):
                    selections_c[combo][obj.name] = result
            responses: list[ServiceResponse] = []
            for i, req in enumerate(requests):
                combo = combo_col[i]
                slot = combo_slot[combo]
                t_max = t_max_col[i]
                responses.append(
                    ServiceResponse(
                        name=req.name,
                        freqs_mhz=freqs,
                        features=features_col[i],
                        measured_power_at_max_w=p_max_col[i],
                        measured_time_at_max_s=t_max if t_max is not None else 0.0,
                        power_w=power_rows[slot],
                        time_s=time_c[combo],
                        energy_j=energy_c[combo],
                        selections=selections_c[combo],
                        from_cache=cached[slot] is not None,
                    )
                )
            select_span.set(combos=len(combo_slot), objectives=len(objectives))
        t4 = _time.perf_counter()

        self._m_requests.inc(n)
        self._m_batches.inc()
        self._m_measured.inc(measured)
        self._m_curves.inc(len(miss_slots))
        self._m_max_batch.set_max(n)
        self._m_stage["measure"].observe(t1 - t0)
        self._m_stage["lookup"].observe(t2 - t1)
        self._m_stage["predict"].observe(t3 - t2)
        self._m_stage["select"].observe(t4 - t3)
        flush_span.set(
            hits=len(unique_keys) - len(miss_slots),
            curves_computed=len(miss_slots),
            measured=measured,
            unique=len(unique_keys),
        )
        return responses

    # ------------------------------------------------------------------
    # Asynchronous micro-batching path
    # ------------------------------------------------------------------
    def submit(self, request: SelectionRequest):
        """Enqueue one request; returns a ``Future[ServiceResponse]``.

        Requests submitted within ``batch_window_s`` of each other (up
        to ``max_batch_size``) are flushed as one batch.  The dispatcher
        thread starts lazily on first use; call :meth:`close` (or use
        the service as a context manager) to drain and stop it.
        """
        from repro.serving.microbatch import MicroBatcher

        with self._lock:
            if self._batcher is None:
                self._batcher = MicroBatcher(
                    self,
                    max_batch_size=self.max_batch_size,
                    batch_window_s=self.batch_window_s,
                )
            batcher = self._batcher
        return batcher.submit(request)

    def close(self) -> None:
        """Drain pending submissions and stop the dispatcher thread."""
        with self._lock:
            batcher, self._batcher = self._batcher, None
        if batcher is not None:
            batcher.close()

    def __enter__(self) -> "SelectionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Immutable snapshot of the lifetime service counters.

        Always reads this service's private instruments — a shared
        export ``registry`` passed at construction receives mirrored
        updates but never feeds back into ``stats()``.
        """
        with self._lock:
            stage_latency = {
                stage: hist.primary.snapshot() for stage, hist in self._m_stage.items()
            }
            return ServiceStats(
                requests=int(self._m_requests.primary.value),
                batches=int(self._m_batches.primary.value),
                max_batch_size=int(self._m_max_batch.primary.value),
                measured_requests=int(self._m_measured.primary.value),
                cache_hits=self._cache.hits,
                cache_misses=self._cache.misses,
                cache_evictions=self._cache.evictions,
                cache_entries=len(self._cache),
                curves_computed=int(self._m_curves.primary.value),
                measure_s=stage_latency["measure"].sum,
                lookup_s=stage_latency["lookup"].sum,
                predict_s=stage_latency["predict"].sum,
                select_s=stage_latency["select"].sum,
                stage_latency=stage_latency,
                engine=self._engine.mode,
            )
