"""Bitwise comparison helpers for serving equivalence tests.

``SelectionResult``/``OnlineResult`` are frozen dataclasses holding
ndarrays, so ``==`` either raises or returns elementwise arrays; these
helpers compare field-by-field with ``np.array_equal`` (exact — the
serving layer's contract is *bitwise* identity, not closeness).
"""

from __future__ import annotations

import numpy as np


def assert_selections_identical(got, want, context: str = "") -> None:
    """Field-by-field bitwise equality of two SelectionResults."""
    prefix = f"{context}: " if context else ""
    assert got.freq_mhz == want.freq_mhz, f"{prefix}freq {got.freq_mhz} != {want.freq_mhz}"
    assert got.index == want.index, f"{prefix}index"
    assert got.objective_name == want.objective_name, f"{prefix}objective"
    assert got.perf_degradation == want.perf_degradation, f"{prefix}perf_degradation"
    assert got.energy_saving == want.energy_saving, f"{prefix}energy_saving"
    assert got.threshold_applied == want.threshold_applied, f"{prefix}threshold_applied"
    assert np.array_equal(got.scores, want.scores), f"{prefix}scores differ"


def assert_online_results_identical(got, want) -> None:
    """Field-by-field bitwise equality of two OnlineResults.

    ``got`` may also be a ServiceResponse converted via
    ``to_online_result()`` upstream; only OnlineResult fields are
    compared here.
    """
    ctx = want.workload
    assert got.workload == want.workload
    assert np.array_equal(got.freqs_mhz, want.freqs_mhz), f"{ctx}: freq grid differs"
    assert got.features == want.features, f"{ctx}: features differ"
    assert got.measured_power_at_max_w == want.measured_power_at_max_w, f"{ctx}: power@max"
    assert got.measured_time_at_max_s == want.measured_time_at_max_s, f"{ctx}: time@max"
    assert np.array_equal(got.power_w, want.power_w), f"{ctx}: power curve differs"
    assert np.array_equal(got.time_s, want.time_s), f"{ctx}: time curve differs"
    assert np.array_equal(got.energy_j, want.energy_j), f"{ctx}: energy curve differs"
    assert set(got.selections) == set(want.selections), f"{ctx}: objective sets differ"
    for name in want.selections:
        assert_selections_identical(got.selections[name], want.selections[name], f"{ctx}/{name}")
