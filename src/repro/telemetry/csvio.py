"""CSV persistence for collected metrics (paper Section 4.1).

The paper's launch module "saves output metrics of each run into a
comma-separated values format file"; this module is that format.  Files
are plain CSV with a header row, one line per sample, all-numeric values,
so they remain greppable and loadable by any downstream tool.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

__all__ = [
    "write_samples_csv",
    "read_samples_csv",
    "write_columns_csv",
    "read_columns_csv",
]


def write_samples_csv(path: str | Path, rows: list[dict[str, float]]) -> Path:
    """Write sample rows to ``path``; returns the resolved path.

    All rows must share the same keys (the first row defines the header) —
    a mismatch raises :class:`ValueError` rather than silently writing a
    ragged file.
    """
    if not rows:
        raise ValueError("refusing to write an empty CSV")
    path = Path(path)
    header = list(rows[0].keys())
    for i, row in enumerate(rows):
        if list(row.keys()) != header:
            raise ValueError(f"row {i} keys {sorted(row)} differ from header {sorted(header)}")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=header)
        writer.writeheader()
        writer.writerows({k: repr(float(v)) for k, v in row.items()} for row in rows)
    return path


def write_columns_csv(path: str | Path, header: list[str], columns: np.ndarray) -> Path:
    """Write one ``(n_rows, n_cols)`` numeric block as a CSV.

    Column-oriented fast path of :func:`write_samples_csv`: same file
    format (header row, ``repr(float)`` cells, full round-trip precision)
    without building one dict per row.
    """
    columns = np.asarray(columns, dtype=float)
    if columns.ndim != 2 or columns.shape[1] != len(header):
        raise ValueError(
            f"columns shape {columns.shape} does not match header of {len(header)} names"
        )
    if columns.shape[0] == 0:
        raise ValueError("refusing to write an empty CSV")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows([repr(v) for v in row] for row in columns.tolist())
    return path


def read_columns_csv(path: str | Path) -> tuple[list[str], np.ndarray]:
    """Read a samples CSV back as ``(header, (n_rows, n_cols) array)``.

    Column-oriented fast path of :func:`read_samples_csv` — one numeric
    block instead of one dict per row.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV") from None
        try:
            data = np.loadtxt(fh, delimiter=",", dtype=float, ndmin=2)
        except ValueError as exc:
            raise ValueError(f"{path}: non-numeric value ({exc})") from exc
    if data.size == 0:
        data = data.reshape(0, len(header))
    if data.shape[1] != len(header):
        raise ValueError(
            f"{path}: rows have {data.shape[1]} columns, header has {len(header)}"
        )
    return header, data


def read_samples_csv(path: str | Path) -> list[dict[str, float]]:
    """Read sample rows back; values are parsed to float."""
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty CSV")
        rows: list[dict[str, float]] = []
        for line_no, row in enumerate(reader, start=2):
            try:
                rows.append({k: float(v) for k, v in row.items()})
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: non-numeric value ({exc})") from exc
    return rows
