"""Phase-aware prediction bench (extension study).

Shape assertions: on a bimodal application, phase-aware prediction is at
least as accurate as the paper's whole-run averaging, and both stay in
the usable band.
"""

import pytest

from repro.experiments.phase_study import render_phase_study, run_phase_study


@pytest.fixture(scope="module")
def study(ctx):
    return run_phase_study(ctx)


def test_phase_report(benchmark, study, report):
    benchmark(render_phase_study, study)
    report("Phase-aware prediction study", render_phase_study(study))


def test_phase_aware_no_worse_than_monolithic(study):
    assert study.time_accuracy_phased >= study.time_accuracy_monolithic - 1.0
    assert study.power_accuracy_phased >= study.power_accuracy_monolithic - 2.0


def test_both_predictions_usable(study):
    assert study.time_accuracy_monolithic > 85.0
    assert study.time_accuracy_phased > 85.0
    assert study.power_accuracy_phased > 85.0


def test_truth_curves_sane(study):
    """Composite app slows down at low clocks but less than pure compute."""
    slow = study.time_measured_s[0] / study.time_measured_s[-1]
    assert 1.2 < slow < 2.6
