"""DGEMM and STREAM micro-benchmarks (paper Section 3).

These are the paper's canonical compute-bound and memory-bound anchors.
Both carry runnable NumPy reference kernels so the census arithmetic is
checked against an actual computation in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.kernel import KernelCensus
from repro.workloads.base import Workload, WorkloadCategory

__all__ = ["DGEMM", "STREAM"]


class DGEMM(Workload):
    """Dense double-precision matrix multiply ``C = A @ B`` (cuBLAS style).

    ``size`` is the square matrix dimension ``n``.  One *run* performs
    ``repetitions`` back-to-back multiplies on device-resident matrices
    (the usual benchmarking loop), with a single host transfer of A, B in
    and C out.

    Census math per multiply:

    * FLOPs: ``2 n^3`` (n^3 multiply-adds),
    * DRAM bytes: with square tiling at block size ``b`` each input element
      is read ``n / b`` times, giving ``2 n^3 * 8 / b`` read traffic plus
      ``n^2 * 8`` for the C write-back.
    """

    name = "dgemm"
    category = WorkloadCategory.MICROBENCH
    default_size = 8192
    min_size = 64
    max_size = 65536

    def __init__(self, repetitions: int = 16, tile: int = 256) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if tile < 1:
            raise ValueError("tile must be >= 1")
        self.repetitions = repetitions
        self.tile = tile

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        reps = self.repetitions
        flops = 2.0 * n**3 * reps
        dram = (2.0 * n**3 * 8.0 / self.tile + n * n * 8.0) * reps
        return KernelCensus(
            flops_fp64=flops,
            flops_fp32=0.0,
            dram_bytes=dram,
            pcie_rx_bytes=2.0 * n * n * 8.0,  # A and B in
            pcie_tx_bytes=n * n * 8.0,  # C out
            occupancy=0.92,
            compute_efficiency=0.90,
            memory_efficiency=0.75,
            compute_latency_fraction=0.04,
            serial_fraction=0.015,
        )

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        n = self.resolve_size(size)
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        c = a @ b
        return {
            "checksum": float(c.sum()),
            "flops": 2.0 * n**3,
            "bytes_touched": 3.0 * n * n * 8.0,
        }


class STREAM(Workload):
    """GPU-STREAM triad ``a[i] = b[i] + s * c[i]`` (Deakin et al.).

    ``size`` is the element count per array (FP64).  One run performs
    ``repetitions`` triad sweeps on device-resident arrays.

    Census math per sweep: 2 FLOPs and 24 DRAM bytes per element (two
    8-byte reads, one 8-byte write) — arithmetic intensity 1/12, firmly
    memory-bound on any modern GPU.
    """

    name = "stream"
    category = WorkloadCategory.MICROBENCH
    default_size = 33_554_432  # 256 MiB per array
    min_size = 1024
    max_size = 2**34

    def __init__(self, repetitions: int = 1000) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.repetitions = repetitions

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        reps = self.repetitions
        return KernelCensus(
            flops_fp64=2.0 * n * reps,
            flops_fp32=0.0,
            dram_bytes=24.0 * n * reps,
            pcie_rx_bytes=2.0 * n * 8.0,  # b and c in
            pcie_tx_bytes=n * 8.0,  # a out (verification read-back)
            occupancy=0.82,
            compute_efficiency=0.85,
            memory_efficiency=0.88,
            compute_latency_fraction=0.05,
            serial_fraction=0.015,
        )

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        n = self.resolve_size(size)
        b = rng.standard_normal(n)
        c = rng.standard_normal(n)
        scalar = 3.0
        a = b + scalar * c
        return {
            "checksum": float(a.sum()),
            "flops": 2.0 * n,
            "bytes_touched": 24.0 * n,
        }
