"""SPEC ACCEL benchmark proxies (paper Table 2, training set).

The SPEC ACCEL suite is proprietary; each proxy here reproduces the
*computational character* of its benchmark — FLOP count, DRAM traffic, and
irregularity — from the underlying algorithm's complexity.  The goal is
that the (fp_active, dram_active) signature the paper's models consume
matches the benchmark family: TPACF/MRIQ/CUTCP/LAVAMD compute-bound,
SPMV/LBM/STENCIL/HISTO memory-bound, BFS/BPLUSTREE latency-bound with low
achievable bandwidth, NW/GE launch- and dependency-limited, and so on.

All sizes are single scalars (documented per class) so the paper's
input-size invariance study (Fig. 5) can sweep them uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.kernel import KernelCensus
from repro.workloads.base import Workload, WorkloadCategory

__all__ = [
    "TPACF",
    "Stencil",
    "LBM",
    "FFT",
    "SPMV",
    "MRIQ",
    "Histo",
    "BFS",
    "CUTCP",
    "KMeans",
    "LavaMD",
    "CFD",
    "NW",
    "Hotspot",
    "LUD",
    "GE",
    "SRAD",
    "HeartWall",
    "BPlusTree",
]


class TPACF(Workload):
    """Two-point angular correlation function over ``size`` sky points.

    All-pairs angular separations histogrammed into bins: ``O(n^2)``
    double-precision distance computations with heavy shared-memory reuse,
    so DRAM traffic is only the tiled re-streaming of the point list.
    """

    name = "tpacf"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 97_152  # ~100k points per dataset, SPEC "ref"-like scale
    min_size = 256

    def __init__(self, datasets: int = 100) -> None:
        if datasets < 1:
            raise ValueError("datasets must be >= 1")
        self.datasets = datasets

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        reps = float(self.datasets)
        pair_flops = 31.0  # dot product, acos approx, bin search
        tile = 512.0  # points cached per block
        return KernelCensus(
            flops_fp64=pair_flops * n * n * reps,
            dram_bytes=((n * n / tile) * 24.0 + n * 24.0) * reps,
            pcie_rx_bytes=n * 24.0,
            pcie_tx_bytes=4096.0,
            occupancy=0.85,
            compute_efficiency=0.72,  # acos + divergence in bin search
            memory_efficiency=0.70,
            compute_latency_fraction=0.22,
            serial_fraction=0.02,
        )

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        n = min(self.resolve_size(size), 2048)  # all-pairs: cap the demo size
        vecs = rng.standard_normal((n, 3))
        vecs /= np.linalg.norm(vecs, axis=1, keepdims=True)
        cosines = np.clip(vecs @ vecs.T, -1.0, 1.0)
        angles = np.arccos(cosines[np.triu_indices(n, k=1)])
        hist, _ = np.histogram(angles, bins=32, range=(0.0, np.pi))
        return {
            "checksum": float(hist.sum()),
            "flops": 31.0 * n * n,
            "bytes_touched": 24.0 * n,
        }


class Stencil(Workload):
    """3-D 7-point Jacobi stencil on a ``size^3`` single-precision grid.

    8 FLOPs per cell per sweep; with neighbour reuse in cache the DRAM
    traffic is one read and one write of the grid per sweep.
    """

    name = "stencil"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 512
    min_size = 16
    max_size = 2048

    def __init__(self, iterations: int = 4000) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        cells = n**3
        it = self.iterations
        return KernelCensus(
            flops_fp32=8.0 * cells * it,
            dram_bytes=2.0 * 4.0 * cells * it,
            pcie_rx_bytes=4.0 * cells,
            pcie_tx_bytes=4.0 * cells,
            occupancy=0.88,
            compute_efficiency=0.80,
            memory_efficiency=0.85,
            compute_latency_fraction=0.20,
            serial_fraction=0.02,
        )

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        n = self.resolve_size(size)
        grid = rng.standard_normal((n, n, n)).astype(np.float32)
        out = grid.copy()
        core = grid[1:-1, 1:-1, 1:-1]
        out[1:-1, 1:-1, 1:-1] = (
            0.4 * core
            + 0.1 * (grid[:-2, 1:-1, 1:-1] + grid[2:, 1:-1, 1:-1])
            + 0.1 * (grid[1:-1, :-2, 1:-1] + grid[1:-1, 2:, 1:-1])
            + 0.1 * (grid[1:-1, 1:-1, :-2] + grid[1:-1, 1:-1, 2:])
        )
        return {
            "checksum": float(out.sum()),
            "flops": 8.0 * (n - 2) ** 3,
            "bytes_touched": 2.0 * 4.0 * n**3,
        }


class LBM(Workload):
    """D3Q19 lattice Boltzmann on a ``size^3`` fluid domain.

    ~230 FLOPs per cell per step against 19 distributions streamed in and
    out (152 read + 152 write bytes in FP32) — strongly memory-bound.
    """

    name = "lbm"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 256
    min_size = 16
    max_size = 1024

    def __init__(self, timesteps: int = 500) -> None:
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        self.timesteps = timesteps

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        cells = n**3
        steps = self.timesteps
        return KernelCensus(
            flops_fp32=230.0 * cells * steps,
            dram_bytes=2.0 * 19.0 * 4.0 * cells * steps,
            pcie_rx_bytes=19.0 * 4.0 * cells,
            pcie_tx_bytes=19.0 * 4.0 * cells,
            occupancy=0.80,
            compute_efficiency=0.78,
            memory_efficiency=0.82,
            compute_latency_fraction=0.20,
            serial_fraction=0.02,
        )


class FFT(Workload):
    """Batched 1-D complex-to-complex FFT, ``size`` points x 4096 batches.

    ``5 n log2 n`` FLOPs per transform; a multi-pass implementation makes
    ~3 full passes over the data per transform — moderate arithmetic
    intensity, mixed compute/memory character.
    """

    name = "fft"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 65_536
    min_size = 64
    max_size = 2**24

    def __init__(self, batches: int = 4096, repetitions: int = 50) -> None:
        if batches < 1 or repetitions < 1:
            raise ValueError("batches and repetitions must be >= 1")
        self.batches = batches
        self.repetitions = repetitions

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        b = self.batches * self.repetitions
        flops = 5.0 * n * np.log2(n) * b
        passes = 3.0
        return KernelCensus(
            flops_fp32=flops,
            dram_bytes=passes * 2.0 * 8.0 * n * b,  # complex64 in+out per pass
            pcie_rx_bytes=8.0 * n * self.batches,
            pcie_tx_bytes=8.0 * n * self.batches,
            occupancy=0.78,
            compute_efficiency=0.75,
            memory_efficiency=0.80,
            compute_latency_fraction=0.25,
            serial_fraction=0.03,
        )

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        n = self.resolve_size(size)
        x = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(np.complex64)
        y = np.fft.fft(x)
        return {
            "checksum": float(np.abs(y).sum()),
            "flops": 5.0 * n * np.log2(n),
            "bytes_touched": 2.0 * 8.0 * n,
        }


class SPMV(Workload):
    """CSR sparse matrix-vector product with ``size`` non-zeros.

    2 FLOPs per non-zero against ~14 bytes (8 B value + 4 B column index +
    amortized row pointers and an irregular gather from x) — one of the
    most memory-bound kernels in the suite, with poor achieved bandwidth
    from the scattered x accesses.
    """

    name = "spmv"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 50_000_000
    min_size = 1024

    def __init__(self, repetitions: int = 1500) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.repetitions = repetitions

    def census(self, size: int | None = None) -> KernelCensus:
        nnz = float(self.resolve_size(size))
        reps = self.repetitions
        return KernelCensus(
            flops_fp64=2.0 * nnz * reps,
            dram_bytes=14.0 * nnz * reps,
            pcie_rx_bytes=12.0 * nnz,
            pcie_tx_bytes=8.0 * (nnz / 64.0),  # result vector, ~64 nnz/row
            occupancy=0.75,
            compute_efficiency=0.60,
            memory_efficiency=0.55,
            compute_latency_fraction=0.20,
            serial_fraction=0.02,
        )

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        from scipy import sparse

        nnz_target = self.resolve_size(size)
        rows = max(8, int(np.sqrt(nnz_target)))
        density = min(1.0, nnz_target / (rows * rows))
        mat = sparse.random(rows, rows, density=density, format="csr", rng=rng)
        x = rng.standard_normal(rows)
        y = mat @ x
        return {
            "checksum": float(y.sum()),
            "flops": 2.0 * mat.nnz,
            "bytes_touched": 14.0 * mat.nnz,
        }


class MRIQ(Workload):
    """MRI Q-matrix computation: ``size`` k-space samples x 262k voxels.

    ~14 single-precision FLOPs (including sin/cos) per sample-voxel pair
    with all sample data cached — almost pure compute.
    """

    name = "mriq"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 32_768
    min_size = 32

    def __init__(self, voxels: int = 2_097_152, repetitions: int = 30) -> None:
        if voxels < 1 or repetitions < 1:
            raise ValueError("voxels and repetitions must be >= 1")
        self.voxels = voxels
        self.repetitions = repetitions

    def census(self, size: int | None = None) -> KernelCensus:
        k = float(self.resolve_size(size))
        v = float(self.voxels)
        reps = float(self.repetitions)
        return KernelCensus(
            flops_fp32=14.0 * k * v * reps,
            dram_bytes=((k / 256.0) * v * 12.0 + v * 24.0) * reps,  # tiled sample re-reads
            pcie_rx_bytes=k * 24.0 + v * 12.0,
            pcie_tx_bytes=v * 8.0,
            occupancy=0.90,
            compute_efficiency=0.68,  # transcendental-heavy
            memory_efficiency=0.75,
            compute_latency_fraction=0.20,
            serial_fraction=0.02,
        )


class Histo(Workload):
    """Saturating histogram of ``size`` inputs into 996x1024 bins.

    Nearly FLOP-free; performance is dominated by input streaming plus
    contended atomic updates, so achieved bandwidth is poor.
    """

    name = "histo"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 250_000_000
    min_size = 4096

    def __init__(self, repetitions: int = 100) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.repetitions = repetitions

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        reps = float(self.repetitions)
        return KernelCensus(
            flops_fp32=0.5 * n * reps,
            dram_bytes=(4.0 * n + 8.0 * n) * reps,  # input read + atomic RMW traffic
            pcie_rx_bytes=4.0 * n,
            pcie_tx_bytes=996.0 * 1024.0,
            occupancy=0.70,
            compute_efficiency=0.50,
            memory_efficiency=0.45,
            compute_latency_fraction=0.20,
            serial_fraction=0.03,
        )

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        n = self.resolve_size(size)
        data = rng.integers(0, 996 * 1024, size=n)
        hist = np.bincount(data, minlength=996 * 1024)
        return {
            "checksum": float(hist.max()),
            "flops": 0.0,
            "bytes_touched": 12.0 * n,
        }


class BFS(Workload):
    """Level-synchronous breadth-first search, ``size`` edges.

    Irregular frontier expansion: ~16 bytes of pointer-chasing traffic per
    edge at very low achieved bandwidth, negligible floating point, and
    many short kernel launches (one per level).
    """

    name = "bfs"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 120_000_000
    min_size = 1024

    def __init__(self, searches: int = 400) -> None:
        if searches < 1:
            raise ValueError("searches must be >= 1")
        self.searches = searches

    def census(self, size: int | None = None) -> KernelCensus:
        m = float(self.resolve_size(size))
        reps = float(self.searches)
        return KernelCensus(
            flops_fp32=0.1 * m * reps,
            dram_bytes=16.0 * m * reps,
            pcie_rx_bytes=8.0 * m,
            pcie_tx_bytes=4.0 * (m / 16.0),
            occupancy=0.55,
            compute_efficiency=0.40,
            memory_efficiency=0.30,
            compute_latency_fraction=0.40,
            serial_fraction=0.06,  # per-level launch overhead
        )

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        import networkx as nx

        m = self.resolve_size(size)
        n_nodes = max(4, int(np.sqrt(m)))
        g = nx.gnm_random_graph(n_nodes, min(m, n_nodes * (n_nodes - 1) // 2), seed=int(rng.integers(2**31)))
        lengths = nx.single_source_shortest_path_length(g, 0)
        return {
            "checksum": float(sum(lengths.values())),
            "flops": 0.0,
            "bytes_touched": 16.0 * g.number_of_edges(),
        }


class CUTCP(Workload):
    """Cutoff Coulomb potential on a lattice around ``size`` atoms.

    Each atom contributes to the ~1.2k lattice points inside its cutoff
    sphere at ~16 FP32 FLOPs per contribution; neighbour bins live in
    shared memory, so DRAM traffic is small.
    """

    name = "cutcp"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 500_000
    min_size = 64

    def __init__(self, repetitions: int = 400) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.repetitions = repetitions

    def census(self, size: int | None = None) -> KernelCensus:
        atoms = float(self.resolve_size(size))
        reps = float(self.repetitions)
        points_per_atom = 1200.0
        return KernelCensus(
            flops_fp32=16.0 * atoms * points_per_atom * reps,
            dram_bytes=(atoms * 32.0 + atoms * points_per_atom * 0.15) * reps,
            pcie_rx_bytes=atoms * 16.0,
            pcie_tx_bytes=atoms * 4.0,
            occupancy=0.88,
            compute_efficiency=0.78,
            memory_efficiency=0.70,
            compute_latency_fraction=0.22,
            serial_fraction=0.02,
        )


class KMeans(Workload):
    """k-means clustering of ``size`` points (34 features, k=32 clusters).

    Per iteration each point computes distances to all centroids
    (``3 k d`` FLOPs) against one streaming read of the point — moderate
    intensity, leaning compute.
    """

    name = "kmeans"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 8_000_000
    min_size = 256

    def __init__(self, clusters: int = 32, features: int = 34, iterations: int = 300) -> None:
        if min(clusters, features, iterations) < 1:
            raise ValueError("clusters, features, iterations must be >= 1")
        self.clusters = clusters
        self.features = features
        self.iterations = iterations

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        k, d, it = self.clusters, self.features, self.iterations
        return KernelCensus(
            flops_fp32=3.0 * n * k * d * it,
            dram_bytes=(n * d * 4.0 + n * 4.0) * it,
            pcie_rx_bytes=n * d * 4.0,
            pcie_tx_bytes=n * 4.0,
            occupancy=0.85,
            compute_efficiency=0.80,
            memory_efficiency=0.80,
            compute_latency_fraction=0.28,
            serial_fraction=0.03,  # host-side centroid update
        )

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        n = self.resolve_size(size)
        k, d = self.clusters, self.features
        pts = rng.standard_normal((n, d)).astype(np.float32)
        centroids = pts[rng.choice(n, size=k, replace=False)]
        dists = ((pts[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assign = dists.argmin(axis=1)
        return {
            "checksum": float(assign.sum()),
            "flops": 3.0 * n * k * d,
            "bytes_touched": n * d * 4.0,
        }


class LavaMD(Workload):
    """Particle interactions within a ``size^3`` grid of boxes (100/box).

    All-pairs force evaluation between each box and its 27 neighbours in
    double precision — compute-bound with excellent locality.
    """

    name = "lavamd"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 24
    min_size = 2
    max_size = 128

    def __init__(self, particles_per_box: int = 100, iterations: int = 150) -> None:
        if particles_per_box < 1 or iterations < 1:
            raise ValueError("particles_per_box and iterations must be >= 1")
        self.particles_per_box = particles_per_box
        self.iterations = iterations

    def census(self, size: int | None = None) -> KernelCensus:
        boxes = float(self.resolve_size(size)) ** 3
        p = float(self.particles_per_box)
        it = float(self.iterations)
        pair_flops = 50.0
        pairs = boxes * 27.0 * p * p * it
        return KernelCensus(
            flops_fp64=pair_flops * pairs,
            dram_bytes=boxes * 27.0 * p * 32.0 * it,
            pcie_rx_bytes=boxes * p * 32.0,
            pcie_tx_bytes=boxes * p * 32.0,
            occupancy=0.82,
            compute_efficiency=0.82,
            memory_efficiency=0.75,
            compute_latency_fraction=0.25,
            serial_fraction=0.02,
        )


class CFD(Workload):
    """Unstructured-grid Euler solver with ``size`` cells.

    ~180 FP32 FLOPs per cell per iteration against ~200 bytes of
    neighbour-indexed state — memory-bound with irregular access.
    """

    name = "cfd"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 1_200_000
    min_size = 256

    def __init__(self, iterations: int = 3000) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations

    def census(self, size: int | None = None) -> KernelCensus:
        cells = float(self.resolve_size(size))
        it = self.iterations
        return KernelCensus(
            flops_fp32=180.0 * cells * it,
            dram_bytes=200.0 * cells * it,
            pcie_rx_bytes=80.0 * cells,
            pcie_tx_bytes=20.0 * cells,
            occupancy=0.75,
            compute_efficiency=0.70,
            memory_efficiency=0.60,
            compute_latency_fraction=0.25,
            serial_fraction=0.03,
        )


class NW(Workload):
    """Needleman-Wunsch alignment of two ``size``-long sequences.

    Wavefront dynamic programming over an ``n^2`` score matrix: little
    floating point, diagonal-limited parallelism (low occupancy), and one
    kernel launch per anti-diagonal block row.
    """

    name = "nw"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 32_768
    min_size = 64

    def __init__(self, alignments: int = 80) -> None:
        if alignments < 1:
            raise ValueError("alignments must be >= 1")
        self.alignments = alignments

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        reps = float(self.alignments)
        cells = n * n
        return KernelCensus(
            flops_fp32=3.0 * cells * reps,
            dram_bytes=12.0 * cells * reps,
            pcie_rx_bytes=2.0 * n * 4.0 * reps,
            pcie_tx_bytes=cells * 0.01,
            occupancy=0.35,
            compute_efficiency=0.45,
            memory_efficiency=0.50,
            compute_latency_fraction=0.35,
            serial_fraction=0.10,  # one launch per block diagonal
        )

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        n = self.resolve_size(size)
        a = rng.integers(0, 4, size=n)
        b = rng.integers(0, 4, size=n)
        gap = -1
        score = np.zeros((n + 1, n + 1), dtype=np.int64)
        score[0, :] = gap * np.arange(n + 1)
        score[:, 0] = gap * np.arange(n + 1)
        # Row-vectorized DP: each row depends only on the previous row
        # (the column dependency is handled with a cumulative max trick
        # only for the gap chain; here we keep the exact recurrence with
        # a per-row scan, which is still O(n^2) like the kernel).
        for i in range(1, n + 1):
            match = np.where(a[i - 1] == b, 2, -1)
            diag = score[i - 1, :-1] + match
            up = score[i - 1, 1:] + gap
            best = np.maximum(diag, up)
            row = score[i]
            prev = row[0]
            for j in range(1, n + 1):
                prev = max(best[j - 1], prev + gap)
                row[j] = prev
        return {
            "checksum": float(score[n, n]),
            "flops": 3.0 * n * n,
            "bytes_touched": 12.0 * n * n,
        }


class Hotspot(Workload):
    """2-D thermal simulation (``size^2`` grid, 5-point stencil).

    Like STENCIL but two input fields (temperature + power) per sweep.
    """

    name = "hotspot"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 8192
    min_size = 32

    def __init__(self, iterations: int = 1000) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        cells = n * n
        it = self.iterations
        return KernelCensus(
            flops_fp32=12.0 * cells * it,
            dram_bytes=3.0 * 4.0 * cells * it,
            pcie_rx_bytes=8.0 * cells,
            pcie_tx_bytes=4.0 * cells,
            occupancy=0.86,
            compute_efficiency=0.80,
            memory_efficiency=0.82,
            compute_latency_fraction=0.20,
            serial_fraction=0.02,
        )

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        n = self.resolve_size(size)
        temp = rng.uniform(40.0, 90.0, size=(n, n))
        power = rng.uniform(0.0, 5.0, size=(n, n))
        out = temp.copy()
        core = temp[1:-1, 1:-1]
        out[1:-1, 1:-1] = core + 0.1 * (
            temp[:-2, 1:-1] + temp[2:, 1:-1] + temp[1:-1, :-2] + temp[1:-1, 2:] - 4.0 * core
        ) + 0.05 * power[1:-1, 1:-1]
        return {
            "checksum": float(out.sum()),
            "flops": 12.0 * (n - 2) ** 2,
            "bytes_touched": 3.0 * 4.0 * n * n,
        }


class LUD(Workload):
    """Blocked LU decomposition of a ``size x size`` FP32 matrix.

    ``(2/3) n^3`` FLOPs; blocked panels give DGEMM-like reuse for the
    trailing update but the panel factorizations serialize, so efficiency
    and occupancy sit below DGEMM's.
    """

    name = "lud"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 8192
    min_size = 64
    max_size = 32768

    def __init__(self, repetitions: int = 40) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.repetitions = repetitions

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        reps = float(self.repetitions)
        return KernelCensus(
            flops_fp32=(2.0 / 3.0) * n**3 * reps,
            dram_bytes=((2.0 / 3.0) * n**3 * 4.0 / 96.0 + n * n * 4.0) * reps,
            pcie_rx_bytes=n * n * 4.0,
            pcie_tx_bytes=n * n * 4.0,
            occupancy=0.70,
            compute_efficiency=0.65,
            memory_efficiency=0.70,
            compute_latency_fraction=0.30,
            serial_fraction=0.05,
        )

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        from scipy import linalg

        n = self.resolve_size(size)
        a = rng.standard_normal((n, n)).astype(np.float32) + n * np.eye(n, dtype=np.float32)
        _p, l, u = linalg.lu(a)
        return {
            "checksum": float(np.abs(np.diag(u)).sum() + np.abs(l).sum()),
            "flops": (2.0 / 3.0) * n**3,
            "bytes_touched": 2.0 * n * n * 4.0,
        }


class GE(Workload):
    """Unblocked Gaussian elimination on a ``size x size`` system.

    Same ``(2/3) n^3`` FLOP count as LUD but with one kernel launch per
    pivot row and no blocking — heavy launch overhead and full-matrix
    streaming every step make it launch/memory limited.
    """

    name = "ge"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 4096
    min_size = 64
    max_size = 16384

    def __init__(self, systems: int = 20) -> None:
        if systems < 1:
            raise ValueError("systems must be >= 1")
        self.systems = systems

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        reps = float(self.systems)
        return KernelCensus(
            flops_fp32=(2.0 / 3.0) * n**3 * reps,
            dram_bytes=n * (n * n * 4.0) / 3.0 * reps,  # trailing matrix re-streamed per pivot
            pcie_rx_bytes=n * n * 4.0,
            pcie_tx_bytes=n * 4.0 * reps,
            occupancy=0.60,
            compute_efficiency=0.55,
            memory_efficiency=0.65,
            compute_latency_fraction=0.30,
            serial_fraction=0.08,
        )


class SRAD(Workload):
    """Speckle-reducing anisotropic diffusion on a ``size^2`` image.

    Two stencil-like passes per iteration, ~30 FP32 FLOPs and ~24 bytes
    per pixel — mixed, leaning memory.
    """

    name = "srad"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 4096
    min_size = 64

    def __init__(self, iterations: int = 2000) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations

    def census(self, size: int | None = None) -> KernelCensus:
        n = float(self.resolve_size(size))
        pixels = n * n
        it = self.iterations
        return KernelCensus(
            flops_fp32=30.0 * pixels * it,
            dram_bytes=24.0 * pixels * it,
            pcie_rx_bytes=4.0 * pixels,
            pcie_tx_bytes=4.0 * pixels,
            occupancy=0.84,
            compute_efficiency=0.75,
            memory_efficiency=0.78,
            compute_latency_fraction=0.22,
            serial_fraction=0.03,
        )


class HeartWall(Workload):
    """Heart-wall tracking across ``size`` ultrasound frames.

    Template correlation around 51 tracking points per frame: compute-lean
    FP32 with modest, well-blocked image traffic.
    """

    name = "heartwall"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 104
    min_size = 1
    max_size = 10000

    def __init__(self, tracking_iterations: int = 40) -> None:
        if tracking_iterations < 1:
            raise ValueError("tracking_iterations must be >= 1")
        self.tracking_iterations = tracking_iterations

    def census(self, size: int | None = None) -> KernelCensus:
        frames = float(self.resolve_size(size))
        it = float(self.tracking_iterations)
        points = 51.0
        flops_per_point = 9.0e7  # correlation windows + statistics
        return KernelCensus(
            flops_fp32=flops_per_point * points * frames * it,
            dram_bytes=frames * it * (610.0 * 590.0 * 4.0 * 6.0),
            pcie_rx_bytes=frames * 610.0 * 590.0 * 4.0,
            pcie_tx_bytes=frames * points * 8.0,
            occupancy=0.68,
            compute_efficiency=0.70,
            memory_efficiency=0.72,
            compute_latency_fraction=0.30,
            serial_fraction=0.05,
        )


class BPlusTree(Workload):
    """B+ tree range queries: ``size`` queries over a 1M-key tree.

    Pure pointer chasing — ~6 levels x 64-byte node reads per query at
    very low achieved bandwidth and occupancy, negligible floating point.
    """

    name = "bplustree"
    category = WorkloadCategory.SPEC_ACCEL
    default_size = 60_000_000
    min_size = 256

    def __init__(self, depth: int = 6, batches: int = 60) -> None:
        if depth < 1 or batches < 1:
            raise ValueError("depth and batches must be >= 1")
        self.depth = depth
        self.batches = batches

    def census(self, size: int | None = None) -> KernelCensus:
        q = float(self.resolve_size(size))
        reps = float(self.batches)
        return KernelCensus(
            flops_fp32=0.2 * q * reps,
            dram_bytes=q * self.depth * 64.0 * reps,
            pcie_rx_bytes=q * 8.0,
            pcie_tx_bytes=q * 8.0,
            occupancy=0.55,
            compute_efficiency=0.35,
            memory_efficiency=0.35,
            compute_latency_fraction=0.45,
            serial_fraction=0.04,
        )
