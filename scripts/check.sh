#!/usr/bin/env sh
# Full static-check pass: ruff -> mypy -> repro check.
#
# ruff and mypy are optional (install with `pip install -e .[lint]`);
# when a tool is missing it is reported and skipped, not failed — the
# base image ships only the runtime deps.  `repro check` (the project's
# own AST invariant checker) is stdlib-only and always runs; its exit
# code gates the script together with whichever optional tools ran.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root" || exit 2

status=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests || status=1
else
    echo "== ruff == (not installed; pip install -e .[lint] — skipped)"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy || status=1
else
    echo "== mypy == (not installed; pip install -e .[lint] — skipped)"
fi

echo "== repro check =="
PYTHONPATH="$repo_root/src" python -m repro.cli check --stats "$@" || status=1

exit "$status"
