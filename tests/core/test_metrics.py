"""Metric tests: MAPE, accuracy, RMSE, R2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import accuracy_percent, mape, r2_score, rmse


class TestMAPE:
    def test_zero_on_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mape(y, y) == 0.0

    def test_known_value(self):
        assert mape(np.array([100.0]), np.array([110.0])) == pytest.approx(10.0)

    def test_symmetric_in_sign_of_error(self):
        y = np.array([100.0, 100.0])
        pred = np.array([90.0, 110.0])
        assert mape(y, pred) == pytest.approx(10.0)

    def test_zero_true_value_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            mape(np.array([0.0, 1.0]), np.array([1.0, 1.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            mape(np.zeros(2) + 1, np.zeros(3) + 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            mape(np.array([]), np.array([]))


class TestAccuracy:
    def test_complement_of_mape(self):
        y = np.array([100.0])
        pred = np.array([95.0])
        assert accuracy_percent(y, pred) == pytest.approx(95.0)

    def test_floored_at_zero(self):
        assert accuracy_percent(np.array([1.0]), np.array([10.0])) == 0.0

    @given(
        scale=st.floats(min_value=0.01, max_value=1e6),
        rel_err=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_scale_invariant(self, scale, rel_err):
        y = np.array([scale])
        pred = np.array([scale * (1 + rel_err)])
        assert accuracy_percent(y, pred) == pytest.approx(100.0 - 100.0 * rel_err, abs=1e-6)


class TestRMSE:
    def test_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(np.sqrt(12.5))

    def test_zero_on_perfect(self):
        y = np.array([1.0, -2.0])
        assert rmse(y, y) == 0.0


class TestR2:
    def test_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_mean_predictor_scores_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, 2.0)
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_constant_target(self):
        y = np.full(4, 2.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1.0) == 0.0
