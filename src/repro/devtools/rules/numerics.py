"""Numerical-safety rule NUM001: no equality comparison between floats.

(One lexical rule lives here; the interprocedural numeric dataflow
rules — NUM002/SHAPE001/PERF001/PURE001 over the dtype/shape lattice of
:mod:`repro.devtools.numeric` — live in
:mod:`repro.devtools.rules.numeric`.)

Algorithm 1 selection, Pareto tie handling and the serving cache key all
touch values that came out of DNN forward passes; ``==`` on such values
is either dead (never true) or a latent nondeterminism (true on one
BLAS, false on another).  The repo's documented idioms are

* ordered guards (``x <= 0.0`` for non-negative quantities),
* index-based tie handling (``np.argmin`` returns the first minimiser —
  ties break by position, never by re-comparing float scores), and
* exact-sentinel comparisons only where a value is *defined* to be the
  sentinel (``np.sign`` outputs, "0.0 disables this term" config knobs)
  — suppressed case-by-case with ``# repro: noqa[NUM001]`` or a
  baseline entry carrying the justification.

Float-ness is established conservatively: float literals, ``float()``
casts, division results, a small set of known float-returning calls, and
local names assigned from any of those.  Anything the rule cannot prove
float stays silent, so there are no int-comparison false positives.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding
from repro.devtools.rules.base import Rule, register

__all__ = ["NUM001FloatEquality"]

#: Calls whose results are known floats (resolved through the import table).
_FLOAT_CALLS = frozenset(
    {
        "time.perf_counter",
        "time.time",
        "time.monotonic",
        "math.sqrt",
        "math.exp",
        "math.log",
        "math.hypot",
        "math.fsum",
        "numpy.linalg.norm",
        "numpy.float64",
        "numpy.hypot",
        "numpy.ptp",
    }
)

_FLOAT_CONSTANT_ATTRS = frozenset(
    {"math.pi", "math.e", "math.tau", "math.inf", "math.nan", "numpy.inf", "numpy.nan", "numpy.pi", "numpy.e"}
)


class _ScopeChecker(ast.NodeVisitor):
    """Single lexical pass over one scope: track float names, flag compares."""

    def __init__(self, rule: "NUM001FloatEquality", ctx: ModuleContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.float_names: set[str] = set()
        self.findings: list[Finding] = []

    # -- float-ness ----------------------------------------------------
    def _floatish(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in self.float_names
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "float":
                return "float" not in self.ctx.imports  # builtin float(), not a shadow
            return self.ctx.resolve(node.func) in _FLOAT_CALLS
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._floatish(node.left) or self._floatish(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._floatish(node.operand)
        if isinstance(node, ast.IfExp):
            return self._floatish(node.body) or self._floatish(node.orelse)
        if isinstance(node, ast.Attribute):
            return self.ctx.resolve(node) in _FLOAT_CONSTANT_ATTRS
        return False

    # -- scope boundaries ----------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.rule._check_scope(self.ctx, node.body, self.findings)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- tracking and flagging -----------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        if self._floatish(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.float_names.add(target.id)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None and self._floatish(node.value) and isinstance(node.target, ast.Name):
            self.float_names.add(node.target.id)

    def visit_Compare(self, node: ast.Compare) -> None:
        self.generic_visit(node)
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if self._floatish(left) or self._floatish(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                self.findings.append(
                    self.rule.finding(
                        self.ctx,
                        node,
                        f"float {symbol} comparison — use an ordered guard, an explicit "
                        "tolerance, or index-based tie handling (np.argmin order)",
                    )
                )
                break  # one finding per comparison chain


@register
class NUM001FloatEquality(Rule):
    """No ``==``/``!=`` between float-typed expressions in library code."""

    rule_id = "NUM001"
    severity = "error"
    summary = "equality comparison between float-typed expressions"
    rationale = (
        "Selected frequencies and tie-breaks must not depend on bit-exact "
        "float coincidence: BLAS/summation-order changes flip such branches "
        "and silently desync the golden files. Ties break by index order "
        "(np.argmin takes the first minimiser); degenerate-value guards use "
        "ordered comparisons on provably non-negative quantities."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        self._check_scope(ctx, ctx.tree.body, findings)
        return findings

    def _check_scope(self, ctx: ModuleContext, body: list[ast.stmt], findings: list[Finding]) -> None:
        checker = _ScopeChecker(self, ctx)
        for stmt in body:
            checker.visit(stmt)
        findings.extend(checker.findings)
