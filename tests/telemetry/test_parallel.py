"""Parallel collection campaign tests: planning, execution, persistence."""

import numpy as np
import pytest

from repro.gpusim import GA100, SimulatedGPU
from repro.gpusim.thermal import ThermalModel
from repro.telemetry import LaunchConfig, Launcher, plan_cells, read_columns_csv, run_campaign
from repro.workloads import get_workload


@pytest.fixture()
def small_config():
    return LaunchConfig(freqs_mhz=(600.0, 1005.0, 1410.0), runs_per_config=2)


class TestPlan:
    def test_canonical_cell_order_matches_serial_nesting(self, small_config):
        cells = plan_cells([get_workload("stream"), get_workload("dgemm")], small_config)
        assert len(cells) == 2 * 3 * 2
        assert [c.index for c in cells] == list(range(12))
        # workload-major, then freq, then run — the serial loop order.
        assert [c.workload.name for c in cells[:6]] == ["stream"] * 6
        assert [c.freq_mhz for c in cells[:6]] == [600.0, 600.0, 1005.0, 1005.0, 1410.0, 1410.0]
        assert [c.run_index for c in cells[:2]] == [0, 1]

    def test_sizes_reach_cells(self):
        config = LaunchConfig(freqs_mhz=(1410.0,), runs_per_config=1, sizes={"stream": 4096})
        cells = plan_cells([get_workload("stream"), get_workload("dgemm")], config)
        assert cells[0].size == 4096
        assert cells[1].size is None


class TestRunCampaign:
    def test_artifacts_in_plan_order_any_worker_count(self, ga100, small_config):
        workloads = [get_workload("stream"), get_workload("dgemm")]
        arts = run_campaign(ga100, workloads, small_config, workers=4)
        keys = [(a.workload, a.freq_mhz, a.run_index) for a in arts]
        expected = [
            (c.workload.name, c.freq_mhz, c.run_index)
            for c in plan_cells(workloads, small_config)
        ]
        assert keys == expected

    def test_device_clock_and_rng_untouched(self, ga100, small_config):
        before_clock = ga100.current_sm_clock
        baseline = SimulatedGPU(GA100, seed=ga100.seed)
        run_campaign(ga100, [get_workload("stream")], small_config, workers=2)
        assert ga100.current_sm_clock == before_clock
        # The device's own stream is untouched: a sequential run after the
        # campaign matches the same run on a fresh device.
        census = get_workload("stream").census(None)
        assert ga100.run(census).exec_time_s == baseline.run(census).exec_time_s

    def test_invalid_worker_count_rejected(self, ga100, small_config):
        with pytest.raises(ValueError, match="workers"):
            run_campaign(ga100, [get_workload("stream")], small_config, workers=0)

    def test_thermal_device_rejected(self, small_config):
        device = SimulatedGPU(GA100, seed=0, thermal=ThermalModel())
        with pytest.raises(ValueError, match="thermal"):
            run_campaign(device, [get_workload("stream")], small_config, workers=2)

    def test_csv_output_matches_serial_format(self, ga100, tmp_path):
        config = LaunchConfig(freqs_mhz=(1410.0,), runs_per_config=1, output_dir=tmp_path)
        arts = run_campaign(ga100, [get_workload("stream")], config, workers=2)
        assert arts[0].csv_path is not None
        assert arts[0].csv_path.name == "stream_1410mhz_run0.csv"
        header, data = read_columns_csv(arts[0].csv_path)
        assert header[0] == "timestamp_s"
        assert data.shape == (arts[0].record.n_samples, 13)
        assert np.array_equal(data[:, header.index("power_usage")],
                              arts[0].record.metric_column("power_usage"))

    def test_launcher_collect_workers_delegates(self, ga100, small_config):
        launcher = Launcher(ga100)
        arts = launcher.collect([get_workload("stream")], small_config, workers=3)
        assert len(arts) == 3 * 2
        assert {a.freq_mhz for a in arts} == {600.0, 1005.0, 1410.0}
