"""Ablation: number of MI-ranked features.

Shape assertion: accuracy saturates by k = 3 — adding features beyond
the paper's triple buys little, while k < 3 clearly loses accuracy.
"""

import pytest

from repro.experiments.ablations import render_ablation, run_feature_count_ablation


@pytest.fixture(scope="module")
def rows(ctx):
    return run_feature_count_ablation(ctx)


def test_feature_ablation_report(benchmark, rows, report):
    benchmark(render_ablation, "Ablation: MI-ranked feature count (power)", rows)
    report("Ablation - feature count", render_ablation("Ablation: MI-ranked feature count (power)", rows))


def test_five_variants(rows):
    assert len(rows) == 5


def test_three_features_sufficient(rows):
    """k=3 within 2 points of the best k."""
    accs = [r.eval_accuracy for r in rows]
    assert accs[2] >= max(accs) - 2.0


def test_one_feature_insufficient(rows):
    accs = [r.eval_accuracy for r in rows]
    assert accs[0] < accs[2]
