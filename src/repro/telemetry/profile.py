"""Profile module (paper Section 4.1): run an app, sample metrics.

The paper samples DCGM fields every 20 ms for the whole execution so that
even short workloads contribute a statistically significant number of
rows.  Here the device produces those samples; the profiler converts them
to field-keyed records and run-level aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.device import METRIC_INDEX, RunRecord, SimulatedGPU
from repro.telemetry.fields import FIELDS
from repro.workloads.base import Workload

__all__ = ["Profiler", "record_columns", "record_as_rows"]

#: CSV header: timestamp plus the 12 fields in registry order.
CSV_HEADER: list[str] = ["timestamp_s", *(f.name for f in FIELDS)]

#: Metric-block column index for each field, in registry order.
_FIELD_COLUMNS: tuple[int, ...] = tuple(METRIC_INDEX[f.name] for f in FIELDS)


def record_columns(record: RunRecord) -> tuple[list[str], np.ndarray]:
    """``(header, (n_samples, 13) block)`` for one run, CSV column order.

    The persistence format the launch module writes: ``timestamp_s``
    followed by the 12 fields in registry order.  Pure column shuffling —
    no per-row Python objects.
    """
    data = np.column_stack([record.timestamps_s, record.metrics_block[:, _FIELD_COLUMNS]])
    return list(CSV_HEADER), data


def record_as_rows(record: RunRecord) -> list[dict[str, float]]:
    """Per-sample rows keyed by field name (plus ``timestamp_s``).

    Row-oriented view of :func:`record_columns`, for consumers that want
    one dict per 20 ms sample.
    """
    header, data = record_columns(record)
    return [dict(zip(header, row)) for row in data.tolist()]


@dataclass
class Profiler:
    """Executes workloads on one device and collects per-sample metrics."""

    device: SimulatedGPU

    def profile(self, workload: Workload, *, size: int | None = None) -> RunRecord:
        """One profiled execution at the device's current clock."""
        census = workload.census(size)
        return self.device.run(census, workload_name=workload.name)

    def samples_as_rows(self, record: RunRecord) -> list[dict[str, float]]:
        """Per-sample rows keyed by field name (plus ``timestamp_s``).

        This is the row format the CSV writer persists — one row per 20 ms
        sample, mirroring the paper's framework output.
        """
        return record_as_rows(record)

    def aggregate(self, record: RunRecord) -> dict[str, float]:
        """Run-level aggregates (means; sums for traffic counters)."""
        return record.metrics()
