"""Obs-suite fixtures: every test leaves the global tracer disabled."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture()
def ring_tracer():
    """Fresh global tracer (ring only), torn down unconditionally."""
    tracer = obs.configure()
    yield tracer
    obs.disable()


@pytest.fixture(autouse=True)
def _tracer_hygiene():
    """No obs test may leak an enabled tracer into the rest of the suite."""
    yield
    obs.disable()
