"""Thermal model and throttling tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import GA100, KernelCensus, NoiseModel, SimulatedGPU, ThermalModel


@pytest.fixture()
def thermal():
    return ThermalModel()


class TestRCModel:
    def test_steady_state(self, thermal):
        assert thermal.steady_state_c(0.0) == thermal.ambient_c
        assert thermal.steady_state_c(500.0) == pytest.approx(30.0 + 0.13 * 500.0)

    def test_time_constant(self, thermal):
        assert thermal.time_constant_s == pytest.approx(0.13 * 400.0)

    def test_evolve_approaches_steady_state(self, thermal):
        t = thermal.evolve(30.0, 400.0, 10 * thermal.time_constant_s)
        assert t == pytest.approx(thermal.steady_state_c(400.0), abs=0.01)

    def test_evolve_one_tau_covers_63_percent(self, thermal):
        t0, p = 30.0, 400.0
        t_ss = thermal.steady_state_c(p)
        t = thermal.evolve(t0, p, thermal.time_constant_s)
        assert (t - t0) / (t_ss - t0) == pytest.approx(1 - np.exp(-1), rel=1e-6)

    def test_cooling_works_too(self, thermal):
        t = thermal.evolve(90.0, 0.0, 10 * thermal.time_constant_s)
        assert t == pytest.approx(thermal.ambient_c, abs=0.01)

    def test_time_to_reach_consistency(self, thermal):
        """evolve(time_to_reach(target)) lands exactly on the target."""
        t_cross = thermal.time_to_reach(30.0, 500.0, 80.0)
        assert thermal.evolve(30.0, 500.0, t_cross) == pytest.approx(80.0, abs=1e-9)

    def test_time_to_reach_unreachable(self, thermal):
        assert thermal.time_to_reach(30.0, 10.0, 80.0) == float("inf")

    def test_time_to_reach_already_there(self, thermal):
        assert thermal.time_to_reach(85.0, 500.0, 80.0) == 0.0

    def test_max_sustainable_power(self, thermal):
        p = thermal.max_sustainable_power_w()
        assert thermal.steady_state_c(p) == pytest.approx(thermal.throttle_limit_c)
        assert not thermal.would_throttle(p - 1.0)
        assert thermal.would_throttle(p + 1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="resistance"):
            ThermalModel(thermal_resistance_c_per_w=0.0)
        with pytest.raises(ValueError, match="capacitance"):
            ThermalModel(thermal_capacitance_j_per_c=-1.0)
        with pytest.raises(ValueError, match="throttle_limit"):
            ThermalModel(throttle_limit_c=20.0, ambient_c=30.0)
        with pytest.raises(ValueError, match="power_w"):
            ThermalModel().steady_state_c(-1.0)
        with pytest.raises(ValueError, match="duration"):
            ThermalModel().evolve(30.0, 100.0, -1.0)

    @given(
        t0=st.floats(20.0, 95.0),
        power=st.floats(0.0, 600.0),
        dt=st.floats(0.0, 1000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_evolution_bounded_by_endpoints(self, thermal, t0, power, dt):
        t = thermal.evolve(t0, power, dt)
        lo = min(t0, thermal.steady_state_c(power))
        hi = max(t0, thermal.steady_state_c(power))
        assert lo - 1e-9 <= t <= hi + 1e-9


class TestDeviceIntegration:
    @pytest.fixture()
    def hot_census(self):
        """A compute-bound census that pushes the board to ~TDP."""
        return KernelCensus(
            flops_fp64=2e14,  # long enough to heat through the RC constant
            dram_bytes=1e13,
            occupancy=0.95,
            compute_efficiency=0.95,
            serial_fraction=0.01,
        )

    def test_no_thermal_model_means_no_temperature(self, quiet_ga100, compute_census):
        record = quiet_ga100.run(compute_census)
        assert record.final_temperature_c is None
        assert not record.throttled
        assert quiet_ga100.temperature_c is None
        assert quiet_ga100.cool_down(60.0) is None

    def test_cool_run_does_not_throttle(self, hot_census):
        # Generous cooling: nothing throttles.
        device = SimulatedGPU(
            GA100,
            seed=0,
            noise=NoiseModel.disabled(),
            thermal=ThermalModel(thermal_resistance_c_per_w=0.05),
        )
        record = device.run(hot_census)
        assert not record.throttled
        assert record.final_temperature_c < 90.0

    def test_sustained_tdp_load_throttles(self, hot_census):
        """Back-to-back TDP runs heat through the RC constant and hit
        the limit; the throttled run is slower and draws less power."""
        device = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled(), thermal=ThermalModel())
        record = None
        for _ in range(40):
            record = device.run(hot_census)
            if record.throttled:
                break
        assert record is not None and record.throttled
        assert record.exec_time_s > device.true_time(hot_census, 1410.0)
        assert record.mean_power_w < device.true_power(hot_census, 1410.0)

    def test_temperature_persists_across_runs(self, hot_census):
        device = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled(), thermal=ThermalModel())
        t0 = device.temperature_c
        device.run(hot_census)
        assert device.temperature_c > t0

    def test_cool_down_lowers_temperature(self, hot_census):
        device = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled(), thermal=ThermalModel())
        device.run(hot_census)
        hot = device.temperature_c
        device.cool_down(600.0)
        assert device.temperature_c < hot

    def test_low_clock_runs_stay_cool(self, hot_census):
        device = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled(), thermal=ThermalModel())
        device.set_sm_clock(700.0)
        record = device.run(hot_census)
        assert not record.throttled

    def test_throttle_clock_is_thermally_sustainable(self, hot_census):
        device = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled(), thermal=ThermalModel())
        f, _t, p = device._throttle_clock(hot_census, 1.0)
        assert not device.thermal.would_throttle(p)
        assert f in device.dvfs.usable_mhz
