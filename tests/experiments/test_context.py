"""Experiment-context tests."""

import pytest

from repro.experiments import ExperimentContext, ExperimentSettings


class TestSettings:
    def test_paper_profile_defaults(self):
        s = ExperimentSettings.paper()
        assert s.runs_per_config == 3  # paper: three runs per config
        assert s.truth_runs_per_config == 3

    def test_fast_profile_is_cheap(self):
        s = ExperimentSettings.fast()
        assert s.runs_per_config == 1
        assert s.max_samples_per_run <= 8


class TestContext:
    def test_device_cached(self, fast_ctx):
        assert fast_ctx.device("GA100") is fast_ctx.device("ga100")

    def test_devices_distinct_per_arch(self, fast_ctx):
        assert fast_ctx.device("GA100") is not fast_ctx.device("GV100")

    def test_pipeline_cached(self, fast_ctx):
        assert fast_ctx.pipeline("GA100") is fast_ctx.pipeline("GA100")

    def test_gv100_pipeline_wraps_ga100_models(self, fast_ctx):
        assert fast_ctx.pipeline("GV100").power_model is fast_ctx.pipeline("GA100").power_model

    def test_workload_sets(self, fast_ctx):
        assert len(fast_ctx.training_workloads()) == 21
        assert len(fast_ctx.evaluation_workloads()) == 6

    def test_truth_sweep_cached(self, fast_ctx):
        a = fast_ctx.truth_sweep("lstm", "GA100")
        b = fast_ctx.truth_sweep("lstm", "GA100")
        assert a is b

    def test_power_model_is_tdp_normalised(self, fast_ctx):
        assert fast_ctx.pipeline("GA100").power_model.reference_power_w == 500.0
