"""Figure 1: DGEMM/STREAM power, time, energy, FLOPS, bandwidth vs clock.

Shape assertions (paper Section 2): nonlinear increasing power reaching
~TDP (DGEMM) and ~TDP/2 (STREAM); inverse-nonlinear time; U-shaped
energy with the DGEMM optimum at a higher clock than STREAM's (paper:
1080 vs 1005 MHz); near-linear FLOPS; bandwidth saturating near 900 MHz.
"""

import numpy as np
import pytest

from repro.experiments.fig1 import render_fig1, run_fig1


@pytest.fixture(scope="module")
def fig1(ctx):
    return run_fig1(ctx)


def test_fig1_regenerate(benchmark, ctx, fig1, report):
    benchmark(run_fig1, ctx)
    report("Figure 1 - DVFS characterization", render_fig1(fig1))


def test_fig1_power_envelope(fig1):
    assert fig1.dgemm.power_w[-1] > 0.90 * 500.0
    assert 0.35 * 500.0 < fig1.stream.power_w[-1] < 0.60 * 500.0
    # Lowest clock cuts power to roughly a quarter/fifth of peak.
    assert fig1.dgemm.power_w[0] < 0.35 * fig1.dgemm.power_w[-1]


def test_fig1_energy_u_shape_and_ordering(fig1):
    d_opt, s_opt = fig1.dgemm.energy_optimal_mhz, fig1.stream.energy_optimal_mhz
    assert 510.0 < s_opt < d_opt < 1410.0
    assert 945.0 <= d_opt <= 1185.0  # paper: 1080 MHz
    assert 825.0 <= s_opt <= 1100.0  # paper: 1005 MHz


def test_fig1_flops_linear_bandwidth_saturating(fig1):
    d, s = fig1.dgemm, fig1.stream
    flops_ratio = d.flops_per_s[-1] / d.flops_per_s[0]
    clock_ratio = d.freqs_mhz[-1] / d.freqs_mhz[0]
    assert flops_ratio == pytest.approx(clock_ratio, rel=0.25)
    i900 = int(np.argmin(np.abs(s.freqs_mhz - 900.0)))
    assert s.bandwidth_bytes_per_s[-1] / s.bandwidth_bytes_per_s[i900] < 1.15
