"""`repro report`: trajectory reports and the performance-regression gate.

The repo's perf contract lives in three committed files —
``BENCH_collection.json``, ``BENCH_serving.json``, ``BENCH_obs.json`` —
each carrying a machine-local *current* measurement and the *best*
record ever committed for every tracked hot-path metric.  This module
turns those payloads (plus an optional :class:`~repro.obs.store.RunStore`
history) into human reports and a CI verdict:

* :func:`load_bench_payloads` / :func:`collect_rows` — find the bench
  files under a root and extract their tracked metrics;
* :func:`evaluate_gate` — one failure message per metric whose current
  value regressed more than ``tolerance`` (default 10 %) past its
  recorded best, in whichever direction is worse for that metric;
* :func:`render_report` — markdown / GitHub-annotation / plain-text
  rendering of the full table (GitHub mode emits ``::error`` workflow
  annotations so regressions land inline on the PR).

``repro report --gate`` exits 2 on any regression; the old
``scripts/bench_gate.py`` is now a thin shim over :func:`evaluate_gate`
restricted to the serving payload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.obs.store import (
    RunStore,
    TrackedMetric,
    record_from_bench_payload,
    tracked_metrics,
)

__all__ = [
    "BENCH_FILES",
    "GateFailure",
    "load_bench_payloads",
    "collect_rows",
    "evaluate_gate",
    "record_rows",
    "render_report",
    "default_root",
]

#: The committed trajectory files, in report order.
BENCH_FILES = ("BENCH_collection.json", "BENCH_serving.json", "BENCH_obs.json")


def default_root() -> Path:
    """Where the BENCH_* files live: cwd if any is present, else the
    checkout that holds this installed tree."""
    cwd = Path.cwd()
    if any((cwd / name).exists() for name in BENCH_FILES):
        return cwd
    return Path(__file__).resolve().parents[3]


def load_bench_payloads(root: str | Path) -> dict[str, dict]:
    """Parse every committed bench file under ``root`` (path -> payload).

    Raises ``ValueError`` when a present file is unreadable; silently
    skips absent ones (a fresh checkout may not have all three).
    """
    root = Path(root)
    payloads: dict[str, dict] = {}
    for name in BENCH_FILES:
        path = root / name
        if not path.exists():
            continue
        try:
            payloads[name] = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: invalid JSON ({exc})") from None
    return payloads


def collect_rows(payloads: dict[str, dict]) -> list[TrackedMetric]:
    """Tracked metrics of every payload, in file order."""
    rows: list[TrackedMetric] = []
    for name in sorted(payloads, key=lambda n: BENCH_FILES.index(n) if n in BENCH_FILES else 99):
        rows.extend(tracked_metrics(payloads[name]))
    return rows


@dataclass(frozen=True)
class GateFailure:
    """One tracked metric beyond the allowed regression."""

    row: TrackedMetric
    #: Fractional regression past best (positive; 0.12 == 12 % worse).
    regression: float

    @property
    def message(self) -> str:
        row = self.row
        direction = "below" if row.higher_is_better else "above"
        return (
            f"{row.bench}/{row.metric}: committed {row.current:g} is "
            f"{100.0 * self.regression:.1f}% {direction} the best record {row.best:g}"
        )


def _regression(row: TrackedMetric) -> float:
    """Fractional regression of current vs best (<= 0 means no worse)."""
    if row.best <= 0.0:
        return 0.0
    if row.higher_is_better:
        return 1.0 - row.current / row.best
    return row.current / row.best - 1.0


def evaluate_gate(
    rows: list[TrackedMetric],
    *,
    tolerance: float = 0.10,
    store: RunStore | None = None,
) -> list[GateFailure]:
    """Failures for every metric regressed more than ``tolerance``.

    When a ``store`` is given, each metric's best is tightened with the
    best value in the recorded history, so a trajectory better than the
    committed file also raises the bar.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    failures: list[GateFailure] = []
    for row in rows:
        best = row.best
        if store is not None:
            recorded = store.best(row.bench, row.metric, higher_is_better=row.higher_is_better)
            if recorded is not None:
                best = max(best, recorded) if row.higher_is_better else min(best, recorded)
        effective = TrackedMetric(
            bench=row.bench,
            metric=row.metric,
            current=row.current,
            best=best,
            higher_is_better=row.higher_is_better,
        )
        regression = _regression(effective)
        if regression > tolerance:
            failures.append(GateFailure(row=effective, regression=regression))
    return failures


def record_rows(payloads: dict[str, dict], store: RunStore) -> int:
    """Append every payload's current point to the history store."""
    for name, payload in payloads.items():
        store.append(record_from_bench_payload(payload, source=name))
    return len(payloads)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _status(row: TrackedMetric, failures: dict[tuple[str, str], GateFailure]) -> str:
    failure = failures.get((row.bench, row.metric))
    if failure is not None:
        return f"REGRESSED {100.0 * failure.regression:.1f}%"
    regression = _regression(row)
    if regression <= 0.0:
        return "at best" if regression >= -1e-12 else "improved"
    return f"-{100.0 * regression:.1f}% ok"


def render_report(
    rows: list[TrackedMetric],
    failures: list[GateFailure],
    *,
    fmt: str = "markdown",
    tolerance: float = 0.10,
    store: RunStore | None = None,
) -> str:
    """The full tracked-metric table in the requested format."""
    failed = {(f.row.bench, f.row.metric): f for f in failures}
    lines: list[str] = []
    if fmt == "github":
        for failure in failures:
            lines.append(f"::error ::bench gate: {failure.message}")
    if fmt in ("markdown", "github"):
        lines.append("# Performance trajectory report")
        lines.append("")
        lines.append(
            f"{len(rows)} tracked hot-path metrics, gate tolerance "
            f"{100.0 * tolerance:.0f}% — "
            + (f"**{len(failures)} regression(s)**" if failures else "all within tolerance")
        )
        lines.append("")
        lines.append("| bench | metric | current | best | status |")
        lines.append("|---|---|---|---|---|")
        for row in rows:
            lines.append(
                f"| {row.bench} | `{row.metric}` | {row.current:g} | {row.best:g} "
                f"| {_status(row, failed)} |"
            )
        if store is not None:
            lines.append("")
            lines.append(f"run-history store: {store.path} ({len(store)} records)")
    else:  # text
        lines.append(
            f"{'bench':26s} {'metric':28s} {'current':>12s} {'best':>12s}  status"
        )
        for row in rows:
            lines.append(
                f"{row.bench:26s} {row.metric:28s} {row.current:12g} {row.best:12g}  "
                f"{_status(row, failed)}"
            )
        for failure in failures:
            lines.append(f"bench gate: {failure.message}")
    return "\n".join(lines)
