"""Analysis utilities beyond the paper's core method.

* :mod:`~repro.analysis.pareto` — energy/time Pareto fronts, knee points,
  and hypervolume.  The paper's related work ([8, 11]) returns Pareto
  *sets* of DVFS configurations; these tools let the benches show that
  the paper's single EDP/ED2P pick always lies on that front (simplicity
  without optimality loss).
* :mod:`~repro.analysis.capping` — power-cap policies: the operational
  alternative an HPC site uses when it cares about watts, not energy.
* :mod:`~repro.analysis.stats` — bootstrap confidence intervals for the
  accuracy numbers the evaluation reports.
"""

from repro.analysis.capping import clock_for_power_cap, power_cap_policy
from repro.analysis.pareto import hypervolume_2d, knee_point, pareto_front
from repro.analysis.stats import bootstrap_ci

__all__ = [
    "pareto_front",
    "knee_point",
    "hypervolume_2d",
    "clock_for_power_cap",
    "power_cap_policy",
    "bootstrap_ci",
]
