"""Pareto study: the paper's single pick vs the related work's sets.

The paper argues (Section 1) that Pareto-set approaches like Guerreiro
et al. [11] and Fan et al. [8] burden the user with a *set* of optimal
DVFS configurations, while EDP/ED2P return one.  This study quantifies
what that simplicity costs: for every real application it computes the
measured (energy, time) Pareto front across the design space and checks
where the EDP/ED2P selections and the geometric knee point sit on it.

Expected shape: every EDP/ED2P minimiser lies ON the Pareto front (any
scalarising product of the objectives is Pareto-optimal), so the paper's
simplification loses nothing but choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.pareto import hypervolume_2d, knee_point, pareto_front
from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import EvaluationSuite
from repro.experiments.report import render_table

__all__ = ["ParetoRow", "ParetoStudyResult", "run_pareto_study", "render_pareto_study"]


@dataclass(frozen=True)
class ParetoRow:
    """Front geometry + selection placement for one application."""

    app: str
    front_size: int
    hypervolume: float
    knee_freq_mhz: float
    edp_freq_mhz: float
    ed2p_freq_mhz: float
    edp_on_front: bool
    ed2p_on_front: bool


@dataclass(frozen=True)
class ParetoStudyResult:
    """All per-app rows."""

    rows: list[ParetoRow]

    def all_selections_on_front(self) -> bool:
        """Whether every EDP/ED2P pick is Pareto-optimal."""
        return all(r.edp_on_front and r.ed2p_on_front for r in self.rows)


def run_pareto_study(ctx: ExperimentContext, *, suite: EvaluationSuite | None = None) -> ParetoStudyResult:
    """Compute fronts and selection placement on GA100 measured curves."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    rows: list[ParetoRow] = []
    for ev in suite.evaluate_all("GA100"):
        energy = ev.energy_measured_j
        time = ev.time_measured_s
        front = pareto_front(energy, time)
        front_freqs = set(np.round(ev.freqs_mhz[front], 3).tolist())
        knee = knee_point(energy, time)
        edp = ev.selections["M-EDP"].freq_mhz
        ed2p = ev.selections["M-ED2P"].freq_mhz
        rows.append(
            ParetoRow(
                app=ev.app,
                front_size=int(front.size),
                hypervolume=hypervolume_2d(energy, time),
                knee_freq_mhz=float(ev.freqs_mhz[knee]),
                edp_freq_mhz=edp,
                ed2p_freq_mhz=ed2p,
                edp_on_front=round(edp, 3) in front_freqs,
                ed2p_on_front=round(ed2p, 3) in front_freqs,
            )
        )
    return ParetoStudyResult(rows=rows)


def render_pareto_study(result: ParetoStudyResult) -> str:
    """Front geometry table."""
    table = render_table(
        ["app", "front size", "knee (MHz)", "EDP (MHz)", "ED2P (MHz)", "EDP on front", "ED2P on front"],
        [
            [r.app, r.front_size, r.knee_freq_mhz, r.edp_freq_mhz, r.ed2p_freq_mhz, r.edp_on_front, r.ed2p_on_front]
            for r in result.rows
        ],
        title="Pareto study - single EDP/ED2P picks vs the measured front, GA100",
    )
    verdict = "every selection is Pareto-optimal" if result.all_selections_on_front() else "some selections are dominated"
    return f"{table}\n=> {verdict}"
