"""Inline ``# repro: noqa`` suppression semantics."""

from __future__ import annotations

import textwrap

from repro.devtools import check_source


def _check(source: str, rules: list[str]) -> list:
    return check_source(textwrap.dedent(source), module="repro.core.fixture", rules=rules)


def test_rule_specific_noqa_suppresses():
    findings = _check(
        """
        def f(x):
            return x == 1.5  # repro: noqa[NUM001]
        """,
        ["NUM001"],
    )
    assert findings == []


def test_blanket_noqa_suppresses_everything_on_the_line():
    findings = _check(
        """
        def f(x):
            print(x == 1.5)  # repro: noqa
        """,
        ["NUM001", "OBS001"],
    )
    assert findings == []


def test_noqa_for_other_rule_does_not_suppress():
    findings = _check(
        """
        def f(x):
            return x == 1.5  # repro: noqa[OBS001]
        """,
        ["NUM001"],
    )
    assert [f.rule_id for f in findings] == ["NUM001"]


def test_noqa_accepts_multiple_rule_ids():
    findings = _check(
        """
        def f(x):
            print(x == 1.5)  # repro: noqa[NUM001, OBS001]
        """,
        ["NUM001", "OBS001"],
    )
    assert findings == []


def test_noqa_only_applies_to_its_own_line():
    findings = _check(
        """
        def f(x):
            a = x == 1.5  # repro: noqa[NUM001]
            b = x == 2.5
            return a or b
        """,
        ["NUM001"],
    )
    assert len(findings) == 1
    assert findings[0].line == 4


def test_noqa_with_justification_text_after_it():
    findings = _check(
        """
        def f(x):
            return x == 1.5  # repro: noqa[NUM001] — exact sentinel, see DESIGN.md
        """,
        ["NUM001"],
    )
    assert findings == []
