"""Plain-text rendering of experiment results.

The benchmark harness prints these tables so a run of
``pytest benchmarks/ --benchmark-only`` reproduces the same rows/series
the paper reports, greppable from the captured output.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_series"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str | None = None) -> str:
    """Fixed-width ASCII table; floats formatted to sensible precision."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}" if abs(cell) >= 10 else f"{cell:.2f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[float], ys: Sequence[float], *, every: int = 6) -> str:
    """Compact (x, y) series dump, subsampled for readability."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    picks = list(range(0, len(xs), max(1, every)))
    if picks and picks[-1] != len(xs) - 1:
        picks.append(len(xs) - 1)
    pairs = ", ".join(f"{xs[i]:.0f}:{ys[i]:.4g}" for i in picks)
    return f"{name}: {pairs}"
