"""GV100 energy savings (paper Section 1 contribution claim).

"Further, energy saving of up to 23.6% was achieved with less than 1%
performance loss on GV100."  This experiment repeats the Figure 10 /
Table 5 computation on the Volta device, still driving everything with
the GA100-trained models (full portability path: features measured on
GV100, TDP-rescaled power, slowdown-rescaled time, ED2P selection,
realised changes measured on GV100 sweeps).

Expected shapes: positive energy savings on every app via P-ED2P; at
least one app at near-zero time loss; average time loss in single
digits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import EvaluationSuite
from repro.experiments.fig9 import METHODS
from repro.experiments.report import render_table

__all__ = ["GV100Row", "GV100SavingsResult", "run_gv100_savings", "render_gv100_savings"]


@dataclass(frozen=True)
class GV100Row:
    """Realised energy/time change for one app on GV100."""

    app: str
    energy_pct: dict[str, float]
    time_pct: dict[str, float]


@dataclass(frozen=True)
class GV100SavingsResult:
    """All apps, plus the per-method averages."""

    rows: list[GV100Row]

    def average(self, method: str) -> tuple[float, float]:
        """(mean energy %, mean time %) across applications."""
        e = float(np.mean([r.energy_pct[method] for r in self.rows]))
        t = float(np.mean([r.time_pct[method] for r in self.rows]))
        return e, t

    def best_saving(self, method: str) -> float:
        """Largest single-app energy saving for one method."""
        return max(r.energy_pct[method] for r in self.rows)


def run_gv100_savings(ctx: ExperimentContext, *, suite: EvaluationSuite | None = None) -> GV100SavingsResult:
    """Realised changes on GV100 with GA100-trained models."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    rows = []
    for ev in suite.evaluate_all("GV100"):
        energy: dict[str, float] = {}
        time: dict[str, float] = {}
        for method in METHODS:
            e, t = ev.realised_changes(method)
            energy[method] = e
            time[method] = t
        rows.append(GV100Row(app=ev.app, energy_pct=energy, time_pct=time))
    return GV100SavingsResult(rows=rows)


def render_gv100_savings(result: GV100SavingsResult) -> str:
    """Table 5-style matrix for the Volta device."""
    headers = ["application"]
    headers += [f"E% {m}" for m in METHODS]
    headers += [f"T% {m}" for m in METHODS]
    table_rows = [
        [r.app, *(r.energy_pct[m] for m in METHODS), *(r.time_pct[m] for m in METHODS)]
        for r in result.rows
    ]
    avg: list[object] = ["average"]
    avg += [result.average(m)[0] for m in METHODS]
    avg += [result.average(m)[1] for m in METHODS]
    table_rows.append(avg)
    return render_table(
        headers,
        table_rows,
        title="GV100 savings - realised energy & time change vs f_max "
        "(GA100-trained models, positive energy = saving)",
    )
