"""Fleet-scale scenario simulation.

The paper's per-application frequency selection only pays off in
aggregate — hundreds of nodes, thousands of jobs, a facility power
budget.  This package closes that loop on top of
:mod:`repro.cluster`'s discrete-event engine:

* :mod:`~repro.fleet.scenario`  — declarative campaign descriptions
  (named: ``baseline``, ``capped``, ``flash-crowd``, ``node-churn``,
  ``day``),
* :mod:`~repro.fleet.arrivals`  — Poisson job arrivals with surges and
  physical deadlines,
* :mod:`~repro.fleet.signals`   — deterministic price/carbon signals,
* :mod:`~repro.fleet.failures`  — outage-plan construction,
* :mod:`~repro.fleet.capping`   — coordinated facility power capping,
* :mod:`~repro.fleet.services`  — per-node selection services + the
  per-job fleet clock policy,
* :mod:`~repro.fleet.models`    — per-architecture model training,
* :mod:`~repro.fleet.simulator` — the campaign runner and its
  golden-stable metrics dict.

Determinism contract: a campaign is a pure function of
``(scenario, seed)``.  One root SeedSequence spawns dedicated children
for arrivals, failures, and each node, so no component shares a
stream and results are invariant to node iteration order.
"""

from repro.fleet.arrivals import generate_jobs, rate_at
from repro.fleet.capping import PowerCapController
from repro.fleet.failures import build_outages
from repro.fleet.models import fleet_models
from repro.fleet.scenario import (
    ArrivalSpec,
    FailureSpec,
    NodeGroupSpec,
    Scenario,
    SignalSpec,
    Surge,
    get_scenario,
    list_scenarios,
)
from repro.fleet.services import FleetServicePolicy, build_fleet
from repro.fleet.signals import signal_factor
from repro.fleet.simulator import FleetResult, FleetSimulator

__all__ = [
    "ArrivalSpec",
    "FailureSpec",
    "NodeGroupSpec",
    "Scenario",
    "SignalSpec",
    "Surge",
    "get_scenario",
    "list_scenarios",
    "generate_jobs",
    "rate_at",
    "signal_factor",
    "build_outages",
    "PowerCapController",
    "fleet_models",
    "build_fleet",
    "FleetServicePolicy",
    "FleetResult",
    "FleetSimulator",
]
