"""Call-graph builder: resolution, typing, and the real-tree rate floor.

Fixture modules are indexed in memory via
:func:`repro.devtools.graph.index_from_sources`; the last test indexes
the installed tree and asserts the resolution-rate floor the roadmap
promises (>= 90 % of non-external call sites resolved).
"""

from __future__ import annotations

import ast
import textwrap

from repro.devtools.engine import default_root
from repro.devtools.graph import bind_arguments, index_from_root, index_from_sources


def _index(sources: dict[str, str]):
    return index_from_sources({m: textwrap.dedent(s) for m, s in sources.items()})


def _graph(sources: dict[str, str]):
    _, index = _index(sources)
    return index.call_graph()


# ----------------------------------------------------------------------
# Edge resolution
# ----------------------------------------------------------------------
def test_direct_call_resolves_to_module_function():
    graph = _graph(
        {
            "repro.fix.a": """
            def helper():
                return 1

            def caller():
                return helper()
            """
        }
    )
    assert [(s.caller, s.target) for s in graph.edges] == [
        ("repro.fix.a.caller", "repro.fix.a.helper")
    ]


def test_cross_module_call_through_import():
    graph = _graph(
        {
            "repro.fix.a": """
            def helper():
                return 1
            """,
            "repro.fix.b": """
            from repro.fix.a import helper

            def caller():
                return helper()
            """,
        }
    )
    targets = {s.target for s in graph.edges}
    assert "repro.fix.a.helper" in targets


def test_reexport_chases_to_definition():
    graph = _graph(
        {
            "repro.fix.impl": """
            def work():
                return 1
            """,
            "repro.fix.api": """
            from repro.fix.impl import work

            __all__ = ["work"]
            """,
            "repro.fix.user": """
            from repro.fix.api import work

            def caller():
                return work()
            """,
        }
    )
    assert {s.target for s in graph.edges} == {"repro.fix.impl.work"}


def test_constructor_call_targets_init():
    graph = _graph(
        {
            "repro.fix.a": """
            class Widget:
                def __init__(self, n):
                    self.n = n

            def make():
                return Widget(3)
            """
        }
    )
    assert {s.target for s in graph.edges} == {"repro.fix.a.Widget.__init__"}


def test_method_call_through_annotated_parameter():
    graph = _graph(
        {
            "repro.fix.a": """
            class Device:
                def run(self):
                    return 1

            def drive(dev: Device):
                return dev.run()
            """
        }
    )
    assert "repro.fix.a.Device.run" in {s.target for s in graph.edges}


def test_method_call_through_self_attribute():
    graph = _graph(
        {
            "repro.fix.a": """
            class Engine:
                def spin(self):
                    return 1

            class Car:
                def __init__(self):
                    self.engine = Engine()

                def go(self):
                    return self.engine.spin()
            """
        }
    )
    assert "repro.fix.a.Engine.spin" in {s.target for s in graph.edges}


def test_inherited_method_resolves_through_base():
    graph = _graph(
        {
            "repro.fix.a": """
            class Base:
                def shared(self):
                    return 1

            class Child(Base):
                pass

            def use(c: Child):
                return c.shared()
            """
        }
    )
    assert "repro.fix.a.Base.shared" in {s.target for s in graph.edges}


def test_external_call_is_classified_not_unresolved():
    graph = _graph(
        {
            "repro.fix.a": """
            import numpy as np

            def zeros():
                return np.zeros(4)
            """
        }
    )
    (site,) = graph.sites
    assert site.kind == "external"
    assert site.target == "numpy.zeros"


def test_unknown_receiver_is_reported_unresolved_not_dropped():
    graph = _graph(
        {
            "repro.fix.a": """
            def poke(thing):
                return thing.wiggle()
            """
        }
    )
    (site,) = graph.sites
    assert site.kind == "unresolved"
    assert site.reason  # explains *why* it could not resolve
    assert graph.stats()["unresolved"] == 1


# ----------------------------------------------------------------------
# Stats / output formats
# ----------------------------------------------------------------------
def test_stats_rate_excludes_external_sites():
    graph = _graph(
        {
            "repro.fix.a": """
            import numpy as np

            def helper():
                return 1

            def caller(thing):
                helper()
                np.zeros(3)
                return thing.wiggle()
            """
        }
    )
    stats = graph.stats()
    assert stats["total_sites"] == 3
    assert stats["external"] == 1
    assert stats["resolved"] == 1
    assert stats["unresolved"] == 1
    assert stats["resolution_rate"] == 0.5


def test_to_dict_and_dot_render_edges():
    graph = _graph(
        {
            "repro.fix.a": """
            def helper():
                return 1

            def caller():
                return helper()
            """
        }
    )
    payload = graph.to_dict()
    assert payload["schema"] == 1
    assert payload["edges"][0]["target"] == "repro.fix.a.helper"
    assert "external" not in payload  # opt-in only
    dot = graph.to_dot()
    assert dot.startswith("digraph callgraph {")
    assert '"repro.fix.a.caller" -> "repro.fix.a.helper";' in dot


def test_to_dict_include_external_lists_them():
    graph = _graph(
        {
            "repro.fix.a": """
            import numpy as np

            def zeros():
                return np.zeros(4)
            """
        }
    )
    payload = graph.to_dict(include_external=True)
    assert payload["external"][0]["target"] == "numpy.zeros"


# ----------------------------------------------------------------------
# Argument binding (used by DET003's interprocedural step)
# ----------------------------------------------------------------------
def test_bind_arguments_maps_positional_and_keyword():
    contexts, index = _index(
        {
            "repro.fix.a": """
            def callee(rng, scale=1.0):
                return scale

            def caller():
                return callee(7, scale=2.0)
            """
        }
    )
    (site,) = index.call_graph().edges
    fn = index.functions["repro.fix.a.callee"]
    binding = bind_arguments(site, fn)
    assert isinstance(binding["rng"], ast.Constant) and binding["rng"].value == 7
    assert isinstance(binding["scale"], ast.Constant) and binding["scale"].value == 2.0


def test_bind_arguments_skips_self_for_bound_methods():
    contexts, index = _index(
        {
            "repro.fix.a": """
            class Sim:
                def step(self, seed):
                    return seed

            def drive(sim: Sim):
                return sim.step(11)
            """
        }
    )
    (site,) = index.call_graph().edges
    fn = index.functions["repro.fix.a.Sim.step"]
    binding = bind_arguments(site, fn)
    assert "self" not in binding
    assert binding["seed"].value == 11


# ----------------------------------------------------------------------
# The real tree
# ----------------------------------------------------------------------
def test_installed_tree_resolution_rate_meets_floor():
    contexts, index, skipped = index_from_root(default_root())
    assert skipped == []  # the shipped tree always parses
    stats = index.call_graph().stats()
    assert stats["total_sites"] > 1000  # sanity: the whole tree was walked
    assert stats["resolution_rate"] >= 0.90


def test_cli_graph_dtypes_dumps_inferred_facts(capsys):
    import json

    from repro.cli import main

    assert main(["graph", "--dtypes"]) == 0
    table = json.loads(capsys.readouterr().out)
    assert table["schema"] == 1
    assert "float64" in table["lattice"]
    # The fused engine's hot root and its float64 return surface here.
    assert "FusedInferenceEngine.infer" in table["hot_roots"]
    assert any(q.endswith("energy_from_power_time") for q in table["functions"])
    assert all(feed["proven_pure"] for feed in table["cache_feeds"])
