"""Ablation studies over the design choices DESIGN.md calls out.

Each ablation retrains a model variant on the shared context's training
dataset and scores it the same way the main evaluation does, so results
are directly comparable with Table 3 / Fig. 11:

* **activations** — the paper's 9-function sweep (Section 4.3) that led
  to SELU,
* **optimizers** — the 5-optimizer sweep that led to RMSprop,
* **features** — MI-ranked top-k feature sets (is 3 the right k?),
* **time target** — relative slowdown vs absolute seconds,
* **architecture** — depth/width around the 3x64 choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import DVFSDataset, FeatureVector, SweepSample, measure_census_at_max
from repro.core.metrics import accuracy_percent, mape
from repro.core.models import PowerModel, TimeModel
from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import EvaluationSuite
from repro.experiments.report import render_table
from repro.features.mutual_info import mutual_information
from repro.nn.network import FeedForwardNetwork
from repro.nn.optimizers import get_optimizer
from repro.nn.training import TrainConfig, train
from repro.telemetry.launch import LaunchConfig, Launcher
from repro.telemetry.profile import Profiler

__all__ = [
    "AblationRow",
    "run_activation_ablation",
    "run_optimizer_ablation",
    "run_feature_count_ablation",
    "run_time_target_ablation",
    "run_architecture_ablation",
    "run_noise_ablation",
    "run_training_set_ablation",
    "render_ablation",
]

#: Activations the paper swept (Section 4.3).
PAPER_ACTIVATIONS: tuple[str, ...] = (
    "relu", "elu", "leaky_relu", "selu", "sigmoid", "tanh", "softmax", "softplus", "softsign",
)
#: Optimizers the paper swept.
PAPER_OPTIMIZERS: tuple[str, ...] = ("adam", "adamax", "nadam", "rmsprop", "adadelta")


@dataclass(frozen=True)
class AblationRow:
    """One variant's scores."""

    variant: str
    train_mape: float
    eval_accuracy: float


def _eval_accuracy_power(model: PowerModel, suite: EvaluationSuite) -> float:
    """Mean measured-vs-predicted power accuracy over the six real apps."""
    scores = []
    for ev in suite.evaluate_all("GA100"):
        scale = ev.features  # replicated online features
        pred = model.predict_power(
            FeatureVector(scale.fp_active, scale.dram_active, 1410.0),
            ev.freqs_mhz,
            target_power_scale_w=500.0 if model.reference_power_w is not None else None,
        )
        scores.append(accuracy_percent(ev.power_measured_w, pred))
    return float(np.mean(scores))


def run_activation_ablation(
    ctx: ExperimentContext, *, suite: EvaluationSuite | None = None, epochs: int = 40
) -> list[AblationRow]:
    """Power model quality per activation function."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    dataset = ctx.pipeline("GA100").training_dataset
    rows = []
    for act in PAPER_ACTIVATIONS:
        model = PowerModel(reference_power_w=500.0, activation=act, seed=ctx.settings.seed)
        model.fit(dataset, epochs=epochs)
        train_err = mape(dataset.y_power, model.predict_raw(dataset.x) * 500.0)
        rows.append(
            AblationRow(variant=act, train_mape=train_err, eval_accuracy=_eval_accuracy_power(model, suite))
        )
    return rows


def run_optimizer_ablation(
    ctx: ExperimentContext, *, suite: EvaluationSuite | None = None, epochs: int = 40
) -> list[AblationRow]:
    """Power model quality per optimizer (paper picked RMSprop)."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    dataset = ctx.pipeline("GA100").training_dataset
    rows = []
    for opt_name in PAPER_OPTIMIZERS:
        model = PowerModel(reference_power_w=500.0, seed=ctx.settings.seed)
        x = model._x_scaler.fit_transform(dataset.x)
        y = model._y_scaler.fit_transform(model._forward_target(dataset.y_power / 500.0)[:, None])
        model.network = FeedForwardNetwork.build(3, (64, 64, 64), 1, activation="selu", seed=ctx.settings.seed)
        model.history = train(
            model.network,
            x,
            y,
            optimizer=get_optimizer(opt_name),
            config=TrainConfig(epochs=epochs, batch_size=64),
            seed=ctx.settings.seed,
        )
        train_err = mape(dataset.y_power, model.predict_raw(dataset.x) * 500.0)
        rows.append(
            AblationRow(variant=opt_name, train_mape=train_err, eval_accuracy=_eval_accuracy_power(model, suite))
        )
    return rows


def run_feature_count_ablation(ctx: ExperimentContext, *, epochs: int = 40) -> list[AblationRow]:
    """Power prediction quality vs number of MI-ranked features.

    Collects the 10-candidate sample rows for the two micro-benchmarks,
    ranks by MI against power, and trains an FNN on the top-k columns for
    k = 1..5.  Evaluation is a held-out split of the same rows (feature
    sets differ per k, so the real-app replication mechanic does not
    apply beyond k = 3).
    """
    from repro.experiments.fig3 import CANDIDATE_FEATURES, _collect_rows

    columns = _collect_rows(ctx)
    n = columns["power_usage"].size
    rng = np.random.default_rng(ctx.settings.seed)
    idx = rng.permutation(n)
    if n > 4000:
        idx = idx[:4000]
    power = columns["power_usage"][idx]

    scores = {
        name: mutual_information(columns[name][idx], power, seed=ctx.settings.seed)
        for name in CANDIDATE_FEATURES
    }
    ranked = sorted(scores, key=scores.get, reverse=True)

    split = int(0.8 * idx.size)
    rows = []
    for k in (1, 2, 3, 4, 5):
        feats = np.column_stack([columns[name][idx] for name in ranked[:k]])
        mean, std = feats[:split].mean(axis=0), feats[:split].std(axis=0)
        std = np.where(std > 0, std, 1.0)
        xs = (feats - mean) / std
        y = np.log(power)
        y_mean, y_std = y[:split].mean(), y[:split].std()
        ys = (y - y_mean) / y_std

        net = FeedForwardNetwork.build(k, (64, 64, 64), 1, activation="selu", seed=ctx.settings.seed)
        train(
            net,
            xs[:split],
            ys[:split],
            optimizer="rmsprop",
            config=TrainConfig(epochs=epochs, batch_size=64),
            seed=ctx.settings.seed,
        )
        pred = np.exp(net.predict(xs[split:]).reshape(-1) * y_std + y_mean)
        rows.append(
            AblationRow(
                variant=f"top-{k}: {'+'.join(ranked[:k])}",
                train_mape=mape(power[:split], np.exp(net.predict(xs[:split]).reshape(-1) * y_std + y_mean)),
                eval_accuracy=accuracy_percent(power[split:], pred),
            )
        )
    return rows


def run_time_target_ablation(
    ctx: ExperimentContext, *, suite: EvaluationSuite | None = None
) -> list[AblationRow]:
    """Relative-slowdown vs absolute-seconds time targets.

    The absolute variant must predict raw seconds for 21 workloads whose
    runtimes span orders of magnitude from 3 intensive features — the
    identifiability problem DESIGN.md documents.  Scores are normalized-
    curve accuracies on the six real apps.
    """
    suite = suite if suite is not None else EvaluationSuite(ctx)
    dataset = ctx.pipeline("GA100").training_dataset
    evaluations = suite.evaluate_all("GA100")
    rows = []
    for target in ("relative", "absolute"):
        model = TimeModel(target=target, seed=ctx.settings.seed)
        model.fit(dataset)
        accs = []
        for ev in evaluations:
            fv = FeatureVector(ev.features.fp_active, ev.features.dram_active, 1410.0)
            if target == "relative":
                pred = model.predict_time(fv, ev.freqs_mhz, time_at_max_s=float(ev.time_measured_s[-1]))
            else:
                pred = model.predict_time(fv, ev.freqs_mhz)
            accs.append(
                accuracy_percent(ev.time_measured_s / ev.time_measured_s[-1], pred / pred[-1])
            )
        target_values = dataset.y_slowdown if target == "relative" else dataset.y_time
        train_err = mape(target_values, model.predict_raw(dataset.x))
        rows.append(AblationRow(variant=target, train_mape=train_err, eval_accuracy=float(np.mean(accs))))
    return rows


def run_architecture_ablation(
    ctx: ExperimentContext, *, suite: EvaluationSuite | None = None, epochs: int = 40
) -> list[AblationRow]:
    """Depth/width sweep around the paper's 3x64 architecture."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    dataset = ctx.pipeline("GA100").training_dataset
    rows = []
    for hidden in ((32,), (64,), (64, 64), (64, 64, 64), (128, 128), (64, 64, 64, 64)):
        model = PowerModel(reference_power_w=500.0, hidden=hidden, seed=ctx.settings.seed)
        model.fit(dataset, epochs=epochs)
        train_err = mape(dataset.y_power, model.predict_raw(dataset.x) * 500.0)
        label = "x".join(str(h) for h in hidden)
        rows.append(
            AblationRow(variant=label, train_mape=train_err, eval_accuracy=_eval_accuracy_power(model, suite))
        )
    return rows


def run_noise_ablation(ctx: ExperimentContext, *, epochs: int = 40) -> list[AblationRow]:
    """Model robustness vs sensor-noise level.

    Rebuilds the training campaign on devices with scaled measurement
    noise (0x to 8x the default) and scores each power model against one
    shared noise-free ground truth.  Answers: how clean do the paper's
    DCGM measurements have to be for the method to work?
    """
    from repro.core.dataset import build_dataset
    from repro.core.metrics import accuracy_percent
    from repro.gpusim.arch import get_architecture
    from repro.gpusim.device import SimulatedGPU
    from repro.gpusim.noise import NoiseModel
    from repro.telemetry.launch import LaunchConfig, Launcher
    from repro.workloads.registry import evaluation_workloads

    arch = get_architecture("GA100")
    quiet = SimulatedGPU(arch, seed=ctx.settings.seed, noise=NoiseModel.disabled())
    freqs = quiet.dvfs.usable_array()

    # Shared noise-free truth for the six evaluation apps.
    truth = {}
    for w in evaluation_workloads():
        census = w.census()
        truth[w.name] = (
            census,
            np.array([quiet.true_power(census, f) for f in freqs]),
        )

    rows = []
    base = NoiseModel()
    for scale in (0.0, 1.0, 4.0, 8.0):
        noise = NoiseModel(
            power_rel_std=scale * base.power_rel_std,
            time_rel_std=scale * base.time_rel_std,
            activity_rel_std=scale * base.activity_rel_std,
            dram_dvfs_drift_std=scale * base.dram_dvfs_drift_std,
        )
        device = SimulatedGPU(
            arch, seed=ctx.settings.seed, noise=noise,
            max_samples_per_run=ctx.settings.max_samples_per_run,
        )
        launcher = Launcher(device)
        config = LaunchConfig(freqs_mhz=tuple(device.dvfs.usable_mhz), runs_per_config=1)
        artifacts = launcher.collect(ctx.training_workloads(), config)
        dataset = build_dataset(artifacts, per_sample=True)

        model = PowerModel(reference_power_w=arch.tdp_watts, seed=ctx.settings.seed)
        model.fit(dataset, epochs=epochs)

        accs = []
        for name, (census, p_true) in truth.items():
            fv, _p, _t = measure_census_at_max(device, census, name=name)
            pred = model.predict_power(fv, freqs, target_power_scale_w=arch.tdp_watts)
            accs.append(accuracy_percent(p_true, pred))
        train_err = mape(dataset.y_power, model.predict_raw(dataset.x) * arch.tdp_watts)
        rows.append(AblationRow(variant=f"{scale:g}x noise", train_mape=train_err, eval_accuracy=float(np.mean(accs))))
    return rows


def run_training_set_ablation(
    ctx: ExperimentContext, *, suite: EvaluationSuite | None = None, epochs: int = 40, seed: int = 0
) -> list[AblationRow]:
    """Accuracy vs number of training workloads.

    Subsamples the 21-workload training set (keeping the DGEMM/STREAM
    anchors, as the paper's feature study requires them) and retrains the
    power model.  Answers: does the method really need the whole SPEC
    ACCEL suite, or do a few anchors suffice?
    """
    suite = suite if suite is not None else EvaluationSuite(ctx)
    dataset = ctx.pipeline("GA100").training_dataset
    all_names = dataset.workload_names
    anchors = [n for n in ("dgemm", "stream") if n in all_names]
    others = [n for n in all_names if n not in anchors]
    rng = np.random.default_rng(seed)
    rows = []
    for count in (2, 5, 9, 15, 21):
        extra = list(rng.choice(others, size=max(0, count - len(anchors)), replace=False))
        chosen = set(anchors + extra)
        subset_samples = [s for s in dataset.samples if s.workload in chosen]
        subset = DVFSDataset(subset_samples)
        model = PowerModel(reference_power_w=500.0, seed=ctx.settings.seed)
        model.fit(subset, epochs=epochs)
        rows.append(
            AblationRow(
                variant=f"{count} workloads",
                train_mape=mape(subset.y_power, model.predict_raw(subset.x) * 500.0),
                eval_accuracy=_eval_accuracy_power(model, suite),
            )
        )
    return rows


def render_ablation(title: str, rows: list[AblationRow]) -> str:
    """Shared ablation table layout."""
    return render_table(
        ["variant", "train MAPE (%)", "real-app accuracy (%)"],
        [[r.variant, r.train_mape, r.eval_accuracy] for r in rows],
        title=title,
    )
