"""End-to-end pipeline: offline training + online frequency selection.

This is the paper's Fig. 2 as one object.  ``fit_offline`` runs the full
collection campaign on the training workloads and trains both DNNs;
``run_online`` takes an *unseen* application, measures it once at the
default clock, predicts its power/time/energy across the design space,
and selects the optimal frequency under the requested objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.dataset import (
    DVFSDataset,
    FeatureVector,
    build_dataset,
    features_at_max,
    measure_census_at_max,
)
from repro.core.energy import ED2P, EDP, ObjectiveFunction, energy_from_power_time
from repro.core.models import PowerModel, TimeModel
from repro.core.selection import SelectionResult, select_optimal_frequency
from repro.gpusim.device import SimulatedGPU
from repro.telemetry.launch import LaunchConfig, Launcher
from repro.workloads.base import Workload
from repro.units import JoulesArray, MHzArray, Seconds, SecondsArray, Watts, WattsArray

__all__ = ["OnlineResult", "FrequencySelectionPipeline"]


@dataclass(frozen=True)
class OnlineResult:
    """Everything the online phase produces for one application."""

    workload: str
    freqs_mhz: MHzArray
    features: FeatureVector
    #: Measurement at the default clock (the only measurement taken).
    measured_power_at_max_w: Watts
    measured_time_at_max_s: Seconds
    #: Predicted curves across the design space.
    power_w: WattsArray
    time_s: SecondsArray
    energy_j: JoulesArray
    #: Selection per objective name (e.g. "EDP", "ED2P").
    selections: dict[str, SelectionResult]

    def selection(self, objective_name: str) -> SelectionResult:
        """Selection result for one objective by name."""
        try:
            return self.selections[objective_name]
        except KeyError:
            raise KeyError(
                f"no selection for {objective_name!r}; available: {sorted(self.selections)}"
            ) from None


class FrequencySelectionPipeline:
    """Offline-train / online-predict pipeline over one device."""

    def __init__(
        self,
        device: SimulatedGPU,
        *,
        power_model: PowerModel | None = None,
        time_model: TimeModel | None = None,
        seed: int = 0,
    ) -> None:
        self.device = device
        self.power_model = power_model if power_model is not None else PowerModel(seed=seed)
        self.time_model = time_model if time_model is not None else TimeModel(seed=seed)
        self.training_dataset: DVFSDataset | None = None

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------
    def fit_offline(
        self,
        training_workloads: list[Workload],
        *,
        runs_per_config: int = 3,
        freqs_mhz: tuple[float, ...] | None = None,
        sizes: dict[str, int] | None = None,
        workers: int | None = None,
    ) -> DVFSDataset:
        """Collect the training sweep and train both models.

        Defaults follow the paper: every usable clock, three runs each.
        ``workers`` parallelizes the campaign over (workload, freq, run)
        cells with deterministic per-cell RNGs (see
        :mod:`repro.telemetry.parallel`); the resulting dataset is
        bitwise-independent of the worker count.  Returns the assembled
        dataset (kept on the pipeline for inspection and for the figure
        benches).
        """
        freqs = freqs_mhz if freqs_mhz is not None else tuple(self.device.dvfs.usable_mhz)
        launcher = Launcher(self.device)
        config = LaunchConfig(
            freqs_mhz=freqs,
            runs_per_config=runs_per_config,
            sizes=sizes if sizes is not None else {},
        )
        with obs.span(
            "pipeline.fit_offline",
            workloads=len(training_workloads),
            freqs=len(freqs),
            runs=runs_per_config,
        ):
            with obs.span("pipeline.collect"):
                artifacts = launcher.collect(training_workloads, config, workers=workers)
            # Per-sample rows: every 20 ms sensor sample is a training row,
            # the paper's "statistically significant dataset" (Section 4).
            with obs.span("pipeline.build_dataset"):
                dataset = build_dataset(artifacts, max_freq_mhz=max(freqs), per_sample=True)
            with obs.span("pipeline.fit_power_model", rows=len(dataset)):
                self.power_model.fit(dataset)
            with obs.span("pipeline.fit_time_model", rows=len(dataset)):
                self.time_model.fit(dataset)
        self.training_dataset = dataset
        return dataset

    def fit_from_dataset(self, dataset: DVFSDataset) -> None:
        """Train both models from a pre-built dataset (e.g. loaded CSVs)."""
        self.power_model.fit(dataset)
        self.time_model.fit(dataset)
        self.training_dataset = dataset

    @property
    def is_fitted(self) -> bool:
        """Whether both models have been trained."""
        return self.power_model.network is not None and self.time_model.network is not None

    # ------------------------------------------------------------------
    # Online phase
    # ------------------------------------------------------------------
    def run_online(
        self,
        workload: Workload,
        *,
        objectives: tuple[ObjectiveFunction, ...] = (EDP, ED2P),
        threshold: float | None = None,
        runs: int = 1,
        size: int | None = None,
    ) -> OnlineResult:
        """Measure once at f_max, predict the design space, select clocks.

        The paper's evaluation selects without a degradation threshold;
        pass ``threshold`` to reproduce the Table 6 variants.
        """
        if not self.is_fitted:
            raise RuntimeError("pipeline used before fit_offline()/fit_from_dataset()")
        with obs.span("pipeline.run_online", workload=workload.name):
            with obs.span("pipeline.measure_at_max", workload=workload.name):
                features, power_max, time_max = features_at_max(
                    self.device, workload, runs=runs, size=size
                )
            freqs = self.device.dvfs.usable_array()
            # TDP-normalised models are rescaled onto *this* device's envelope,
            # which is what lets GA100-trained weights serve a GV100 pipeline.
            scale = self.device.arch.tdp_watts if self.power_model.reference_power_w is not None else None
            with obs.span("pipeline.predict_curves", freqs=int(freqs.size)):
                power = self.power_model.predict_power(features, freqs, target_power_scale_w=scale)
                time = self.time_model.predict_time(features, freqs, time_at_max_s=time_max)
                energy = energy_from_power_time(power, time)
            with obs.span("pipeline.select"):
                selections = {
                    obj.name: select_optimal_frequency(
                        freqs, energy, time, objective=obj, threshold=threshold
                    )
                    for obj in objectives
                }
        return OnlineResult(
            workload=workload.name,
            freqs_mhz=freqs,
            features=features,
            measured_power_at_max_w=power_max,
            measured_time_at_max_s=time_max,
            power_w=power,
            time_s=time,
            energy_j=energy,
            selections=selections,
        )

    def run_online_many(
        self,
        workloads: list[Workload],
        *,
        objectives: tuple[ObjectiveFunction, ...] = (EDP, ED2P),
        threshold: float | None = None,
        runs: int = 1,
        sizes: dict[str, int] | None = None,
        service=None,
    ) -> list[OnlineResult]:
        """Online phase for many applications via the serving layer.

        Each workload is still profiled once at f_max (in list order, so
        device noise matches a sequential ``run_online`` loop exactly),
        but the prediction stage runs as one batched forward pass per
        model and repeated applications reuse memoized curves — see
        :class:`~repro.serving.service.SelectionService`.  Results are
        bitwise-identical to calling :meth:`run_online` in a loop.

        Pass ``service`` to reuse a long-lived service (and its warm
        cache) across calls; otherwise a private one is built per call.
        """
        from repro.serving.service import SelectionRequest, SelectionService

        if service is None:
            service = SelectionService(self)
        elif service.pipeline is not self:
            raise ValueError("service is bound to a different pipeline")
        requests = [
            SelectionRequest.from_workload(
                w, size=None if sizes is None else sizes.get(w.name), runs=runs
            )
            for w in workloads
        ]
        responses = service.select_many(requests, objectives=objectives, threshold=threshold)
        return [response.to_online_result() for response in responses]

    def run_online_phased(
        self,
        workload,
        *,
        objectives: tuple[ObjectiveFunction, ...] = (EDP, ED2P),
        threshold: float | None = None,
        runs: int = 1,
        size: int | None = None,
    ) -> OnlineResult:
        """Phase-aware online prediction for a multi-phase application.

        Instead of one whole-run measurement (whose averaged features sit
        at a synthetic operating point for bimodal apps), each phase is
        measured at the default clock and predicted separately; the
        composite curves are ``T(f) = sum_i T_i(f)`` and
        ``E(f) = sum_i P_i(f) T_i(f)``, with mean power ``E/T``.

        ``workload`` must expose ``phases(size) -> list[Phase]``
        (see :class:`repro.workloads.trace.PhasedWorkload`).
        """
        if not self.is_fitted:
            raise RuntimeError("pipeline used before fit_offline()/fit_from_dataset()")
        phases = workload.phases(size)
        if not phases:
            raise ValueError(f"{workload.name} reports no phases")
        freqs = self.device.dvfs.usable_array()
        scale = self.device.arch.tdp_watts if self.power_model.reference_power_w is not None else None

        total_time = np.zeros(freqs.size)
        total_energy = np.zeros(freqs.size)
        measured_time = 0.0
        measured_energy = 0.0
        weighted_fp = 0.0
        weighted_dram = 0.0
        for phase in phases:
            fv, p_max, t_max = measure_census_at_max(
                self.device, phase.census, runs=runs, name=f"{workload.name}:{phase.name}"
            )
            p_curve = self.power_model.predict_power(fv, freqs, target_power_scale_w=scale)
            t_curve = self.time_model.predict_time(fv, freqs, time_at_max_s=t_max)
            total_time += t_curve
            total_energy += p_curve * t_curve
            measured_time += t_max
            measured_energy += p_max * t_max
            weighted_fp += fv.fp_active * t_max
            weighted_dram += fv.dram_active * t_max

        power = total_energy / total_time
        selections = {
            obj.name: select_optimal_frequency(
                freqs, total_energy, total_time, objective=obj, threshold=threshold
            )
            for obj in objectives
        }
        return OnlineResult(
            workload=workload.name,
            freqs_mhz=freqs,
            features=FeatureVector(
                weighted_fp / measured_time,
                weighted_dram / measured_time,
                self.device.arch.default_core_freq_mhz,
            ),
            measured_power_at_max_w=measured_energy / measured_time,
            measured_time_at_max_s=measured_time,
            power_w=power,
            time_s=total_time,
            energy_j=total_energy,
            selections=selections,
        )

    # ------------------------------------------------------------------
    # Validation helpers (measured ground truth for the benches)
    # ------------------------------------------------------------------
    def measure_sweep(
        self,
        workload: Workload,
        *,
        runs_per_config: int = 1,
        size: int | None = None,
        workers: int | None = None,
    ) -> DVFSDataset:
        """Measure an application across the whole design space.

        This is the expensive brute-force path the paper's method avoids;
        the benches use it as ground truth for Figures 7-10 and Tables
        3-6.  ``workers`` parallelizes the sweep deterministically, as in
        :meth:`fit_offline`.
        """
        launcher = Launcher(self.device)
        config = LaunchConfig(
            freqs_mhz=tuple(self.device.dvfs.usable_mhz),
            runs_per_config=runs_per_config,
            sizes={} if size is None else {workload.name: size},
        )
        artifacts = launcher.collect([workload], config, workers=workers)
        return build_dataset(artifacts)
