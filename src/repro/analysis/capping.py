"""Power-cap policies.

HPC sites often manage *instantaneous power* (facility limits, demand
response) rather than energy.  Given the per-clock power curve the
paper's models predict, these helpers answer the operational question:
"what is the fastest clock that stays under W watts?" — and build the
site-wide policy table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import MHz, MHzArray, Watts, WattsArray, SecondsArray

__all__ = ["clock_for_power_cap", "CapDecision", "power_cap_policy"]


@dataclass(frozen=True)
class CapDecision:
    """Outcome of applying one power cap to one application."""

    cap_w: Watts
    freq_mhz: MHz
    power_w: Watts
    #: Predicted slowdown factor vs the maximum clock (>= 1).
    slowdown: float
    #: True when even the lowest clock exceeds the cap.
    infeasible: bool


def clock_for_power_cap(
    freqs_mhz: MHzArray,
    power_w: WattsArray,
    cap_w: Watts,
) -> int:
    """Index of the fastest clock with power <= cap.

    Falls back to the lowest clock (index 0) when the cap is infeasible —
    callers can detect that case via :func:`power_cap_policy`.
    """
    freqs = np.asarray(freqs_mhz, dtype=float)
    power = np.asarray(power_w, dtype=float)
    if freqs.shape != power.shape:
        raise ValueError("freqs and power must have identical shapes")
    if freqs.size == 0:
        raise ValueError("empty design space")
    if np.any(np.diff(freqs) <= 0):
        raise ValueError("freqs must be strictly ascending")
    if cap_w <= 0:
        raise ValueError("cap_w must be positive")
    admissible = np.nonzero(power <= cap_w)[0]
    if admissible.size == 0:
        return 0
    # Power need not be perfectly monotone (noise); take the fastest
    # admissible clock.
    return int(admissible.max())


def power_cap_policy(
    freqs_mhz: MHzArray,
    power_w: WattsArray,
    time_s: SecondsArray,
    caps_w: list[Watts],
) -> list[CapDecision]:
    """Per-cap clock decisions over predicted power/time curves."""
    freqs = np.asarray(freqs_mhz, dtype=float)
    power = np.asarray(power_w, dtype=float)
    time = np.asarray(time_s, dtype=float)
    if not (freqs.shape == power.shape == time.shape):
        raise ValueError("freqs, power, and time must have identical shapes")
    decisions = []
    for cap in caps_w:
        idx = clock_for_power_cap(freqs, power, cap)
        infeasible = bool(power[idx] > cap)
        decisions.append(
            CapDecision(
                cap_w=float(cap),
                freq_mhz=float(freqs[idx]),
                power_w=float(power[idx]),
                slowdown=float(time[idx] / time[-1]),
                infeasible=infeasible,
            )
        )
    return decisions
