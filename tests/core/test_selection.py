"""Algorithm 1 (optimal frequency selection) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ED2P, EDP, select_optimal_frequency
from repro.core.selection import select_optimal_frequency_many


def synthetic_curves(n=61):
    """U-shaped energy and 1/f-ish time over an ascending grid."""
    freqs = np.linspace(510.0, 1410.0, n)
    x = freqs / freqs[-1]
    time = 1.0 / x
    # Steep (voltage-ramp-like) power curve so EDP = P/x^2 is U-shaped
    # with an interior minimum rather than pinned at f_max.
    power = 50.0 + 450.0 * x**3.5
    energy = power * time
    return freqs, energy, time


class TestUnthresholded:
    def test_selects_objective_minimiser(self):
        freqs, energy, time = synthetic_curves()
        res = select_optimal_frequency(freqs, energy, time, objective=EDP)
        scores = energy * time
        assert res.index == int(np.argmin(scores))
        assert res.freq_mhz == freqs[res.index]

    def test_ed2p_selects_at_or_above_edp(self):
        """ED2P weights delay more, so its optimum is >= EDP's."""
        freqs, energy, time = synthetic_curves()
        edp = select_optimal_frequency(freqs, energy, time, objective=EDP)
        ed2p = select_optimal_frequency(freqs, energy, time, objective=ED2P)
        assert ed2p.freq_mhz >= edp.freq_mhz

    def test_objective_name_recorded(self):
        freqs, energy, time = synthetic_curves()
        assert select_optimal_frequency(freqs, energy, time, objective=ED2P).objective_name == "ED2P"

    def test_energy_saving_and_degradation_consistent(self):
        freqs, energy, time = synthetic_curves()
        res = select_optimal_frequency(freqs, energy, time, objective=EDP)
        i = res.index
        assert res.energy_saving == pytest.approx(1.0 - energy[i] / energy[-1])
        assert res.perf_degradation == pytest.approx(1.0 - time[-1] / time[i])

    def test_flat_curves_pick_first_minimum(self):
        freqs = np.array([500.0, 600.0, 700.0])
        energy = np.array([1.0, 1.0, 1.0])
        time = np.array([1.0, 1.0, 1.0])
        res = select_optimal_frequency(freqs, energy, time)
        assert res.index == 0


class TestThresholded:
    def test_threshold_walks_to_higher_clock(self):
        freqs, energy, time = synthetic_curves()
        free = select_optimal_frequency(freqs, energy, time, objective=EDP)
        tight = select_optimal_frequency(freqs, energy, time, objective=EDP, threshold=0.01)
        assert tight.freq_mhz > free.freq_mhz
        assert tight.threshold_applied
        assert tight.perf_degradation < 0.01

    def test_loose_threshold_no_walk(self):
        freqs, energy, time = synthetic_curves()
        free = select_optimal_frequency(freqs, energy, time, objective=EDP)
        loose = select_optimal_frequency(
            freqs, energy, time, objective=EDP, threshold=free.perf_degradation + 0.5
        )
        assert loose.freq_mhz == free.freq_mhz
        assert not loose.threshold_applied

    def test_zero_threshold_selects_fmax_on_monotone_time(self):
        freqs, energy, time = synthetic_curves()
        res = select_optimal_frequency(freqs, energy, time, objective=EDP, threshold=0.0)
        assert res.freq_mhz == freqs[-1]
        assert res.perf_degradation == 0.0

    def test_first_satisfying_clock_chosen(self):
        """The walk stops at the lowest admissible clock, not f_max."""
        freqs, energy, time = synthetic_curves()
        res = select_optimal_frequency(freqs, energy, time, objective=EDP, threshold=0.10)
        # The clock just below the selected one must violate the threshold.
        below = res.index - 1
        degradation_below = 1.0 - time[-1] / time[below]
        assert degradation_below >= 0.10
        assert res.perf_degradation < 0.10

    @given(threshold=st.floats(min_value=0.001, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_threshold_always_honored(self, threshold):
        freqs, energy, time = synthetic_curves()
        res = select_optimal_frequency(freqs, energy, time, objective=EDP, threshold=threshold)
        assert res.perf_degradation < threshold


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="identical shapes"):
            select_optimal_frequency(np.zeros(3), np.zeros(2), np.zeros(3))

    def test_descending_freqs_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            select_optimal_frequency(
                np.array([2.0, 1.0]), np.array([1.0, 1.0]), np.array([1.0, 1.0])
            )

    def test_negative_threshold_rejected(self):
        freqs, energy, time = synthetic_curves(5)
        with pytest.raises(ValueError, match="threshold"):
            select_optimal_frequency(freqs, energy, time, threshold=-0.1)

    def test_empty_design_space_rejected(self):
        with pytest.raises(ValueError):
            select_optimal_frequency(np.array([]), np.array([]), np.array([]))


class TestPropertyGrid:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_selected_freq_always_in_grid(self, seed):
        rng = np.random.default_rng(seed)
        n = rng.integers(3, 40)
        freqs = np.sort(rng.uniform(100, 2000, size=n))
        freqs += np.arange(n) * 1e-3  # enforce strictly ascending
        energy = rng.uniform(10, 1000, size=n)
        time = rng.uniform(0.1, 10, size=n)
        res = select_optimal_frequency(freqs, energy, time, objective=ED2P)
        assert res.freq_mhz in freqs
        assert 0 <= res.index < n


def fuzzed_curves(seed, monotone):
    """Random (freqs, energy, time) curves, optionally DVFS-shaped.

    ``monotone`` produces the physically typical shape — time strictly
    decreasing with clock (so degradation vs f_max is non-negative and
    decreasing) and U-ish energy.  The non-monotone variant draws both
    curves freely, which is what noisy model predictions can look like.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 40))
    freqs = np.sort(rng.uniform(100, 2000, size=n)) + np.arange(n) * 1e-3
    if monotone:
        time = np.sort(rng.uniform(0.1, 10, size=n))[::-1].copy()
        x = freqs / freqs[-1]
        power = rng.uniform(20, 80) + rng.uniform(100, 500) * x ** rng.uniform(1.5, 4.0)
        energy = power * time
    else:
        time = rng.uniform(0.1, 10, size=n)
        energy = rng.uniform(10, 1000, size=n)
    return freqs, energy, time


class TestAlgorithm1Properties:
    """Invariants of the threshold walk over fuzzed curves.

    These are the Algorithm 1 contracts the serving layer (and Table 6)
    lean on: the walk only ever moves *upward* from the raw minimiser,
    it ends either under the threshold or at f_max, and the
    ``threshold_applied`` flag records exactly whether it moved.
    """

    @given(
        seed=st.integers(0, 10_000),
        monotone=st.booleans(),
        objective=st.sampled_from([EDP, ED2P]),
        threshold=st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0)),
    )
    @settings(max_examples=200, deadline=None)
    def test_walk_invariants(self, seed, monotone, objective, threshold):
        freqs, energy, time = fuzzed_curves(seed, monotone)
        res = select_optimal_frequency(
            freqs, energy, time, objective=objective, threshold=threshold
        )
        raw = int(np.argmin(objective(energy, time)))

        if threshold is None:
            assert res.index == raw
            assert not res.threshold_applied
        else:
            # The walk never moves below the raw minimiser.
            assert res.index >= raw
            # It terminates under the threshold, or at f_max when no
            # clock above the minimiser satisfies it.
            degradation = 1.0 - time[-1] / time
            if res.perf_degradation >= threshold:
                assert res.index == len(freqs) - 1
                assert not np.any(degradation[raw:] < threshold)
        # The flag records movement, exactly.
        assert res.threshold_applied == (res.index != raw)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_monotone_time_threshold_always_satisfiable(self, seed):
        """With time decreasing in clock, a positive threshold is always met."""
        freqs, energy, time = fuzzed_curves(seed, monotone=True)
        res = select_optimal_frequency(freqs, energy, time, objective=EDP, threshold=0.05)
        assert res.perf_degradation < 0.05

    def test_zero_threshold_minimiser_at_fmax_flag_clear(self):
        """threshold=0 with the minimiser already at f_max must not flag.

        Regression test: the walk loop is empty here (k == n-1) and the
        for-else used to land on f_max with ``threshold_applied=True``
        despite not moving.
        """
        freqs = np.array([500.0, 600.0, 700.0])
        time = np.array([3.0, 2.0, 1.0])
        energy = np.array([9.0, 6.0, 1.0])  # minimiser at f_max
        res = select_optimal_frequency(freqs, energy, time, objective=EDP, threshold=0.0)
        assert res.index == 2
        assert res.freq_mhz == 700.0
        assert not res.threshold_applied
        assert res.perf_degradation == 0.0


class TestSelectMany:
    @given(
        seed=st.integers(0, 2_000),
        objective=st.sampled_from([EDP, ED2P]),
        threshold=st.one_of(st.none(), st.floats(min_value=0.0, max_value=0.5)),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_per_row_calls(self, seed, objective, threshold):
        rng = np.random.default_rng(seed)
        n_apps, n_freqs = int(rng.integers(1, 8)), int(rng.integers(3, 30))
        freqs = np.sort(rng.uniform(100, 2000, size=n_freqs)) + np.arange(n_freqs) * 1e-3
        energy = rng.uniform(10, 1000, size=(n_apps, n_freqs))
        time = rng.uniform(0.1, 10, size=(n_apps, n_freqs))
        batched = select_optimal_frequency_many(
            freqs, energy, time, objective=objective, threshold=threshold
        )
        assert len(batched) == n_apps
        for i, got in enumerate(batched):
            want = select_optimal_frequency(
                freqs, energy[i], time[i], objective=objective, threshold=threshold
            )
            assert got.index == want.index
            assert got.freq_mhz == want.freq_mhz
            assert got.energy_saving == want.energy_saving
            assert got.perf_degradation == want.perf_degradation
            assert got.threshold_applied == want.threshold_applied
            assert np.array_equal(got.scores, want.scores)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="matching"):
            select_optimal_frequency_many(np.zeros(3), np.zeros((2, 3)), np.zeros((3, 3)))

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError, match="matching"):
            select_optimal_frequency_many(np.zeros(3), np.zeros(3), np.zeros(3))
