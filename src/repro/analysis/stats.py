"""Bootstrap statistics for evaluation metrics.

Accuracy numbers computed over 61 clock bins are themselves noisy; the
bootstrap CI quantifies how much, which is what a careful reproduction
should report next to every Table 3 entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["BootstrapResult", "bootstrap_ci"]


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate with a percentile confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int

    @property
    def width(self) -> float:
        """CI width (upper - lower)."""
        return self.upper - self.lower

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def bootstrap_ci(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapResult:
    """Percentile-bootstrap CI for a paired metric.

    Resamples (true, predicted) pairs with replacement and re-evaluates
    ``metric`` on each resample; the CI is the matching percentile band.
    """
    y_true = np.asarray(y_true, dtype=float).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=float).reshape(-1)
    if y_true.size != y_pred.size:
        raise ValueError(f"length mismatch: {y_true.size} vs {y_pred.size}")
    if y_true.size < 2:
        raise ValueError("need at least 2 pairs to bootstrap")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("n_resamples must be >= 10")

    rng = np.random.default_rng(seed)
    n = y_true.size
    stats = np.empty(n_resamples)
    for i in range(n_resamples):
        take = rng.integers(0, n, size=n)
        stats[i] = metric(y_true[take], y_pred[take])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(metric(y_true, y_pred)),
        lower=float(np.quantile(stats, alpha)),
        upper=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=n_resamples,
    )
