"""Fault-injection tests: node loss mid-campaign with requeue."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster import ClusterEngine, GPUNode, Job, NodeOutage, StaticClockPolicy
from repro.fleet import FleetSimulator, get_scenario
from repro.gpusim import GA100
from repro.workloads import get_workload


def make_nodes():
    return [GPUNode(i, GA100, gpus_per_node=2, seed=31) for i in range(2)]


def make_jobs(n=8):
    return [Job(job_id=i, workload=get_workload("dgemm"), arrival_s=0.0) for i in range(n)]


@pytest.fixture(scope="module")
def undisrupted():
    """Reference campaign without failures."""
    result = ClusterEngine(make_nodes(), StaticClockPolicy(900.0)).run(make_jobs())
    return {r.job_id: r for r in result.records}


@pytest.fixture(scope="module")
def outage(undisrupted):
    """An outage window guaranteed to catch node 0 mid-flight."""
    on_node0 = [r for r in undisrupted.values() if r.node_id == 0]
    victim = max(on_node0, key=lambda r: r.end_s)
    down = (victim.start_s + victim.end_s) / 2.0
    return NodeOutage(node_id=0, down_s=down, up_s=down + 60.0)


@pytest.fixture(scope="module")
def disrupted(outage):
    engine = ClusterEngine(make_nodes(), StaticClockPolicy(900.0), outages=(outage,))
    return engine.run(make_jobs())


class TestRequeue:
    def test_no_job_lost_or_duplicated(self, disrupted):
        assert sorted(r.job_id for r in disrupted.records) == list(range(8))

    def test_inflight_jobs_were_requeued(self, disrupted):
        assert disrupted.stats.requeues >= 1
        assert disrupted.stats.aborted_attempts == disrupted.stats.requeues
        retried = [r for r in disrupted.records if r.attempts > 1]
        assert len(retried) == disrupted.stats.requeues

    def test_aborted_energy_tracked_not_recorded(self, disrupted):
        # Records carry only the successful attempt's energy; the
        # aborted attempt's partial burn shows up as waste.
        assert disrupted.stats.wasted_energy_j > 0.0

    def test_no_record_overlaps_the_outage(self, disrupted, outage):
        for r in disrupted.records:
            if r.node_id == outage.node_id:
                assert r.end_s <= outage.down_s or r.start_s >= outage.up_s

    def test_requeued_jobs_keep_original_arrival(self, disrupted, undisrupted):
        for r in disrupted.records:
            assert r.arrival_s == undisrupted[r.job_id].arrival_s


class TestSLAAccounting:
    def test_disrupted_jobs_miss_tight_deadlines(self, undisrupted, outage):
        """A deadline met without the failure is missed with it."""
        jobs = [
            dataclasses.replace(j, deadline_s=undisrupted[j.job_id].end_s + 1e-6)
            for j in make_jobs()
        ]
        engine = ClusterEngine(make_nodes(), StaticClockPolicy(900.0), outages=(outage,))
        records = engine.run(jobs).records
        retried = [r for r in records if r.attempts > 1]
        assert retried
        for r in retried:
            assert r.met_deadline is False
            assert r.end_s > undisrupted[r.job_id].end_s


class TestFailureDeterminism:
    def test_same_outage_same_records(self, outage):
        runs = []
        for _ in range(2):
            engine = ClusterEngine(
                make_nodes(), StaticClockPolicy(900.0), outages=(outage,)
            )
            runs.append(engine.run(make_jobs()))
        assert runs[0].records == runs[1].records
        assert runs[0].stats.wasted_energy_j == pytest.approx(
            runs[1].stats.wasted_energy_j, rel=0.0, abs=0.0
        )

    def test_churn_scenario_deterministic_end_to_end(self):
        """Same failure seed -> bitwise-identical fleet metrics."""
        scenario = get_scenario("node-churn").scaled(duration_factor=0.25)
        first = FleetSimulator(scenario, seed=3).run()
        second = FleetSimulator(scenario, seed=3).run()
        assert first.metrics() == second.metrics()
        assert first.records == second.records
        assert first.outages_injected >= 1
