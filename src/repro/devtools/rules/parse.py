"""PARSE001: unparseable source files are findings, not crashes.

A file that fails to parse (syntax error, bad encoding, NUL bytes)
cannot be analysed by any rule, so every other check silently skips it —
the most dangerous kind of clean report.  The engine therefore converts
parse failures into PARSE001 findings itself (it is the only component
that sees the raw file); this rule class exists so the id is
registered, documented by ``--list-rules``, selectable via ``--rules``
and counted by the gate like any other rule.
"""

from __future__ import annotations

from typing import Iterable

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding
from repro.devtools.rules.base import Rule, register

__all__ = ["PARSE001Unparseable"]


@register
class PARSE001Unparseable(Rule):
    """Source file failed to parse (emitted by the engine, not per-AST)."""

    rule_id = "PARSE001"
    severity = "error"
    summary = "source file fails to parse (syntax error or undecodable bytes)"
    rationale = (
        "An unparseable file is invisible to every AST rule, so a broken "
        "file would otherwise make the tree look cleaner, not dirtier. The "
        "engine reports the parse failure at its location and keeps checking "
        "the rest of the tree instead of crashing."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        # A ModuleContext only exists for files that parsed; the engine
        # emits PARSE001 findings directly for the ones that did not.
        return []
