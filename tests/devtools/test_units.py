"""UNIT001/UNIT002 fixtures: the physical-units inference pass.

Every fixture lands in ``repro.core.*`` (one of ``UNIT_PACKAGES``) so
the rules are in scope; the out-of-scope test uses ``repro.workloads``.
Units are seeded two ways — naming conventions (``power_w``, ``time_s``,
``freq_mhz``, ``energy_j``) and :mod:`repro.units` annotations — and
both paths get positive and negative coverage.
"""

from __future__ import annotations

import textwrap

from repro.devtools import check_source


def _check(source: str, rules: list[str], module: str = "repro.core.fixture") -> list:
    return check_source(textwrap.dedent(source), module=module, rules=rules)


# ----------------------------------------------------------------------
# UNIT001 — incompatible add/subtract/compare
# ----------------------------------------------------------------------
def test_unit001_flags_add_of_watts_and_seconds():
    findings = _check(
        """
        def broken(power_w, time_s):
            return power_w + time_s
        """,
        ["UNIT001"],
    )
    assert [f.rule_id for f in findings] == ["UNIT001"]
    assert "W" in findings[0].message and "s" in findings[0].message


def test_unit001_flags_comparison_of_mhz_and_watts():
    findings = _check(
        """
        def broken(freq_mhz, power_w):
            if freq_mhz > power_w:
                return 1
            return 0
        """,
        ["UNIT001"],
    )
    assert [f.rule_id for f in findings] == ["UNIT001"]
    assert "comparison" in findings[0].message


def test_unit001_reads_repro_units_annotations():
    findings = _check(
        """
        from repro.units import Seconds, Watts

        def broken(p: Watts, t: Seconds):
            return p - t
        """,
        ["UNIT001"],
    )
    assert [f.rule_id for f in findings] == ["UNIT001"]


def test_unit001_same_unit_add_is_clean():
    findings = _check(
        """
        def fine(t_compute_s, t_memory_s):
            return t_compute_s + t_memory_s
        """,
        ["UNIT001"],
    )
    assert findings == []


def test_unit001_dimensionless_constants_mix_freely():
    findings = _check(
        """
        def fine(power_w):
            return power_w + 0.0, power_w > 0
        """,
        ["UNIT001"],
    )
    assert findings == []


def test_unit001_unknown_units_stay_silent():
    findings = _check(
        """
        def fine(a, b):
            return a + b
        """,
        ["UNIT001"],
    )
    assert findings == []


def test_unit001_units_propagate_through_locals():
    findings = _check(
        """
        def broken(power_w, time_s):
            p = power_w
            t = time_s
            return p + t
        """,
        ["UNIT001"],
    )
    assert [f.rule_id for f in findings] == ["UNIT001"]


def test_unit001_out_of_scope_package_is_silent():
    findings = _check(
        """
        def broken(power_w, time_s):
            return power_w + time_s
        """,
        ["UNIT001"],
        module="repro.workloads.fixture",
    )
    assert findings == []


# ----------------------------------------------------------------------
# UNIT002 — derived unit contradicts the declared name/annotation
# ----------------------------------------------------------------------
def test_unit002_flags_product_bound_to_wrong_suffix():
    findings = _check(
        """
        def broken(power_w, time_s):
            energy_s = power_w * time_s
            return energy_s
        """,
        ["UNIT002"],
    )
    assert [f.rule_id for f in findings] == ["UNIT002"]
    assert "'energy_s'" in findings[0].message


def test_unit002_energy_product_bound_to_energy_name_is_clean():
    findings = _check(
        """
        def fine(power_w, time_s):
            energy_j = power_w * time_s
            edp = energy_j * time_s
            ed2p = edp * time_s
            return ed2p
        """,
        ["UNIT001", "UNIT002"],
    )
    assert findings == []


def test_unit002_checks_declared_return_unit():
    findings = _check(
        """
        from repro.units import Seconds, Watts

        def broken(p: Watts, t: Seconds) -> Watts:
            return p * t
        """,
        ["UNIT002"],
    )
    assert [f.rule_id for f in findings] == ["UNIT002"]
    assert "return of broken()" in findings[0].message


def test_unit002_ratio_of_same_units_is_dimensionless_and_clean():
    findings = _check(
        """
        def fine(t_fast_s, t_slow_s):
            slowdown = t_slow_s / t_fast_s
            return slowdown
        """,
        ["UNIT001", "UNIT002"],
    )
    assert findings == []


def test_unit002_sees_through_float_and_asarray_wrappers():
    findings = _check(
        """
        import numpy as np

        def broken(power_w, time_s):
            energy_w = float(np.asarray(power_w * time_s))
            return energy_w
        """,
        ["UNIT002"],
    )
    assert [f.rule_id for f in findings] == ["UNIT002"]


def test_unit002_respects_inline_suppression():
    findings = _check(
        """
        def grandfathered(power_w, time_s):
            energy_s = power_w * time_s  # repro: noqa[UNIT002]
            return energy_s
        """,
        ["UNIT002"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# Interprocedural: units cross resolved call edges
# ----------------------------------------------------------------------
def _check_with_helper(helper: str) -> list:
    return check_source(
        textwrap.dedent(
            """
            from repro.core.helpers import measured

            def maybe_broken(time_s):
                return measured() + time_s
            """
        ),
        module="repro.core.fixture",
        rules=["UNIT001"],
        extra_sources={"repro.core.helpers": textwrap.dedent(helper)},
    )


def test_units_flow_through_annotated_call_returns():
    findings = _check_with_helper(
        """
        from repro.units import Watts

        def measured() -> Watts:
            return 250.0
        """
    )
    assert [f.rule_id for f in findings] == ["UNIT001"]


def test_units_unannotated_helper_return_stays_silent():
    findings = _check_with_helper(
        """
        def measured():
            return 250.0
        """
    )
    # helper has no declared unit -> nothing provable, stays silent
    assert findings == []
