"""Power model: idle power plus activity-weighted ``C_eff * V^2 * f`` terms.

Instantaneous board power is modelled as

``P = P_idle + (c_fp * fp_active + c_dram * dram_active + c_sm * sm_active)
        * dpf(f)``

where ``dpf(f) = V(f)^2 f / (V_max^2 f_max)`` is the normalized dynamic
power factor from the voltage curve and the ``c_*`` coefficients are
per-architecture watts contributed by each unit at full activity and
maximum clock.

The coefficients are **calibrated**, not hand-tuned: given the anchor
behaviour the paper measures in Fig. 1 (a)/(e) — a compute-bound kernel
draws ~100 % of TDP at f_max while a memory-bound kernel draws ~50 % —
:meth:`PowerCoefficients.calibrate` solves the 2x2 linear system exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.timing import TimingBreakdown
from repro.gpusim.voltage import VoltageCurve
from repro.units import MHz, MHzArray, Watts, WattsArray

__all__ = ["PowerCoefficients", "PowerModel"]

#: Activity signature (fp_active, dram_active, sm_active) of the canonical
#: compute-bound anchor (DGEMM-like) used for calibration.  The fp level
#: reflects DGEMM's ~0.9 achieved efficiency (pipe-active cycles), not 1.0.
_COMPUTE_ANCHOR = (0.87, 0.30, 0.97)
#: ... and of the memory-bound anchor (STREAM-like).
_MEMORY_ANCHOR = (0.08, 0.87, 0.85)


@dataclass(frozen=True)
class PowerCoefficients:
    """Watts contributed per unit at full activity and maximum clock."""

    c_fp_watts: Watts
    c_dram_watts: Watts
    c_sm_watts: Watts

    def __post_init__(self) -> None:
        for name in ("c_fp_watts", "c_dram_watts", "c_sm_watts"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def calibrate(
        cls,
        arch: GPUArchitecture,
        *,
        compute_power_fraction: float = 1.0,
        memory_power_fraction: float = 0.50,
        sm_base_fraction: float = 0.05,
    ) -> "PowerCoefficients":
        """Solve for coefficients from the Fig. 1 anchor behaviour.

        Parameters
        ----------
        compute_power_fraction:
            Board power of a compute-bound kernel at f_max, as a fraction
            of TDP (paper: ~1.0).
        memory_power_fraction:
            Board power of a memory-bound kernel at f_max (paper: ~0.5).
        sm_base_fraction:
            Baseline SM overhead (scheduling, caches) at full activity,
            fixed as a fraction of TDP; the remaining two coefficients are
            then determined exactly by the two anchors.
        """
        if not 0 < memory_power_fraction < compute_power_fraction <= 1.0:
            raise ValueError("need 0 < memory fraction < compute fraction <= 1")
        c_sm = sm_base_fraction * arch.tdp_watts
        idle = arch.idle_power_watts
        # Dynamic watts each anchor must contribute at f_max (dpf == 1).
        rhs = np.array(
            [
                compute_power_fraction * arch.tdp_watts - idle - _COMPUTE_ANCHOR[2] * c_sm,
                memory_power_fraction * arch.tdp_watts - idle - _MEMORY_ANCHOR[2] * c_sm,
            ]
        )
        mat = np.array(
            [
                [_COMPUTE_ANCHOR[0], _COMPUTE_ANCHOR[1]],
                [_MEMORY_ANCHOR[0], _MEMORY_ANCHOR[1]],
            ]
        )
        c_fp, c_dram = np.linalg.solve(mat, rhs)
        if c_fp <= 0 or c_dram <= 0:
            raise ValueError(
                "calibration produced non-positive coefficients; anchors "
                f"inconsistent with idle power (c_fp={c_fp:.1f}, c_dram={c_dram:.1f})"
            )
        return cls(c_fp_watts=float(c_fp), c_dram_watts=float(c_dram), c_sm_watts=float(c_sm))


class PowerModel:
    """Board power as a function of unit activity and SM clock."""

    def __init__(
        self,
        arch: GPUArchitecture,
        voltage: VoltageCurve | None = None,
        coefficients: PowerCoefficients | None = None,
    ) -> None:
        self.arch = arch
        self.voltage = voltage if voltage is not None else VoltageCurve(arch)
        if self.voltage.arch is not arch:
            raise ValueError("voltage curve belongs to a different architecture")
        self.coefficients = coefficients if coefficients is not None else PowerCoefficients.calibrate(arch)

    def power(
        self,
        freq_mhz: MHz | MHzArray,
        *,
        fp_active: float | np.ndarray,
        dram_active: float | np.ndarray,
        sm_active: float | np.ndarray,
        mem_ratio: float = 1.0,
    ) -> WattsArray | Watts:
        """Board power in watts, clamped to the TDP power cap.

        Accepts scalars or broadcastable arrays, so a full DVFS sweep is a
        single vectorized call.  ``mem_ratio`` (applied memory clock over
        the default) scales both the memory share of idle power and the
        DRAM dynamic term.
        """
        if mem_ratio <= 0:
            raise ValueError("mem_ratio must be positive")
        fp = np.clip(np.asarray(fp_active, dtype=float), 0.0, 1.0)
        dram = np.clip(np.asarray(dram_active, dtype=float), 0.0, 1.0)
        sm = np.clip(np.asarray(sm_active, dtype=float), 0.0, 1.0)
        dpf = np.asarray(self.voltage.dynamic_power_factor(freq_mhz), dtype=float)
        c = self.coefficients
        dyn = (c.c_fp_watts * fp + c.c_dram_watts * dram * mem_ratio + c.c_sm_watts * sm) * dpf
        share = self.arch.memory_idle_power_share
        idle = self.arch.idle_power_watts * ((1.0 - share) + share * mem_ratio)
        total = np.minimum(idle + dyn, self.arch.tdp_watts)
        return float(total) if total.ndim == 0 else total

    def power_from_breakdown(self, breakdown: TimingBreakdown, *, mem_ratio: float = 1.0) -> Watts:
        """Board power for one timing breakdown (activities read from it)."""
        return float(
            self.power(
                breakdown.freq_mhz,
                fp_active=breakdown.fp_active,
                dram_active=breakdown.dram_active,
                sm_active=breakdown.sm_active,
                mem_ratio=mem_ratio,
            )
        )

    def idle_power(self) -> Watts:
        """Power with no work resident (static + uncore)."""
        return self.arch.idle_power_watts
