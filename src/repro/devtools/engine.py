"""Check engine: discover sources, run rules, apply noqa + baseline.

The engine is deliberately boring: parse every file under
``<root>/repro`` once, hand each :class:`ModuleContext` to every rule,
subtract inline suppressions, partition the rest against the baseline.
The full ~100-file tree checks in well under a second (the tier-1 gate
asserts < 5 s), so it runs on every ``pytest`` invocation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro.devtools.baseline import Baseline, BaselineEntry
from repro.devtools.context import ModuleContext, build_context, context_from_source
from repro.devtools.findings import Finding
from repro.devtools.rules import Rule, all_rules, get_rule

__all__ = [
    "CheckReport",
    "check_source",
    "default_baseline_path",
    "default_root",
    "render_github",
    "render_stats",
    "render_text",
    "run_check",
]

_REPORT_SCHEMA = 1


def default_root() -> Path:
    """The directory containing the importable ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


def default_baseline_path(root: Path | None = None) -> Path:
    """The committed baseline shipped inside the package."""
    root = default_root() if root is None else Path(root)
    return root / "repro" / "devtools" / "baseline.json"


def iter_source_files(root: Path) -> list[Path]:
    """Every checked source file under ``root/repro``, deterministic order."""
    package_dir = root / "repro"
    if not package_dir.is_dir():
        raise FileNotFoundError(f"no 'repro' package under {root}")
    return sorted(
        p for p in package_dir.rglob("*.py") if "__pycache__" not in p.parts
    )


@dataclass
class CheckReport:
    """Outcome of one full check run."""

    findings: list[Finding]
    baselined: list[Finding]
    stale_baseline: list[BaselineEntry]
    suppressed: int
    files_checked: int
    rules_run: tuple[str, ...]
    duration_s: float
    root: str = ""
    parse_errors: list[Finding] = field(default_factory=list)
    #: Wall time per phase/rule: ``"parse"``, ``"project-index"``, and one
    #: entry per rule id (summed across modules).  Rendered by ``--stats``.
    timings: dict[str, float] = field(default_factory=dict)
    jobs: int = 1

    @property
    def ok(self) -> bool:
        """Whether the tree is clean (live findings gate the exit code)."""
        return not self.findings and not self.parse_errors

    @property
    def all_current(self) -> list[Finding]:
        """Live + baselined findings — what ``--update-baseline`` records."""
        return sorted(self.findings + self.baselined)

    def to_dict(self) -> dict:
        return {
            "schema": _REPORT_SCHEMA,
            "ok": self.ok,
            "root": self.root,
            "files_checked": self.files_checked,
            "rules": [
                {
                    "id": rule.rule_id,
                    "severity": rule.severity,
                    "summary": rule.summary,
                }
                for rule in all_rules()
                if rule.rule_id in self.rules_run
            ],
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": [entry.to_dict() for entry in self.stale_baseline],
            "parse_errors": [f.to_dict() for f in self.parse_errors],
            "suppressed": self.suppressed,
            "duration_s": self.duration_s,
            "timings": {k: round(v, 6) for k, v in sorted(self.timings.items())},
            "jobs": self.jobs,
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def _resolve_rules(rules: list[str] | tuple[str, ...] | None) -> list[Rule]:
    if rules is None:
        return all_rules()
    return [get_rule(rule_id.strip().upper()) for rule_id in rules if rule_id.strip()]


def _check_context(
    ctx: ModuleContext,
    active: list[Rule],
    timings: dict[str, float] | None = None,
) -> tuple[list[Finding], int]:
    """(unsuppressed findings, suppressed count) for one module."""
    kept: list[Finding] = []
    suppressed = 0
    for rule in active:
        t0 = perf_counter()
        for finding in rule.check(ctx):
            if ctx.suppressed(finding):
                suppressed += 1
            else:
                kept.append(finding)
        if timings is not None:
            timings[rule.rule_id] = timings.get(rule.rule_id, 0.0) + perf_counter() - t0
    return kept, suppressed


def _parse_worker(args: tuple[str, str]) -> tuple[str, "ModuleContext | None", tuple | None]:
    """Parse one file (process-pool worker; must stay module-level picklable).

    Returns ``(rel_path, context, error)`` where ``error`` is
    ``(line, col, message)`` when the file does not parse.
    """
    path_s, root_s = args
    path, root = Path(path_s), Path(root_s)
    rel = path.relative_to(root).as_posix()
    try:
        return rel, build_context(path, root), None
    except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = getattr(exc, "offset", None) or 0
        msg = getattr(exc, "msg", None) or str(exc)
        return rel, None, (line, col, msg)


def check_source(
    source: str,
    *,
    module: str = "repro._fixture",
    rules: list[str] | tuple[str, ...] | None = None,
    extra_sources: dict[str, str] | None = None,
) -> list[Finding]:
    """Run rules over an in-memory source string (noqa applied, no baseline).

    ``module`` places the fixture for package-scoped rules — e.g. use
    ``"repro.gpusim.fixture"`` to land inside DET001's seeded set.
    ``extra_sources`` maps additional dotted module names to source text;
    they are indexed (for interprocedural rules) but not checked.
    """
    active = _resolve_rules(rules)
    ctx = context_from_source(source, module=module)
    if any(rule.needs_project for rule in active):
        from repro.devtools.graph import ProjectIndex

        contexts = [ctx]
        for extra_module, text in (extra_sources or {}).items():
            contexts.append(context_from_source(text, module=extra_module))
        index = ProjectIndex.from_contexts(contexts)
        for c in contexts:
            c.project = index
    kept, _ = _check_context(ctx, active)
    return sorted(kept)


def run_check(
    root: Path | str | None = None,
    *,
    rules: list[str] | tuple[str, ...] | None = None,
    baseline: Baseline | None = None,
    jobs: int = 1,
) -> CheckReport:
    """Check every source file under ``root/repro`` (default: the installed tree).

    ``baseline=None`` loads the committed ``baseline.json`` next to this
    package; pass an empty :class:`Baseline` to check without one.
    ``jobs > 1`` parses files on a process pool (the findings are
    identical — ``jobs=1`` stays the fully sequential default).
    """
    root = default_root() if root is None else Path(root)
    if baseline is None:
        baseline = Baseline.load(default_baseline_path(root))
    active = _resolve_rules(rules)
    t0 = perf_counter()
    timings: dict[str, float] = {}
    findings: list[Finding] = []
    parse_errors: list[Finding] = []
    suppressed = 0
    files = iter_source_files(root)
    # Phase 1: parse everything.  Unparseable files become PARSE001
    # findings (the rest of the tree still gets checked).  With jobs > 1
    # the parse fans out on a process pool; results come back in file
    # order either way, so the report is byte-identical.
    contexts: list[ModuleContext] = []
    work = [(str(p), str(root)) for p in files]
    if jobs > 1 and len(work) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            parsed = list(pool.map(_parse_worker, work, chunksize=8))
    else:
        parsed = [_parse_worker(item) for item in work]
    for rel, ctx, error in parsed:
        if ctx is not None:
            contexts.append(ctx)
        else:
            line, col, msg = error
            parse_errors.append(
                Finding(
                    path=rel,
                    line=line,
                    col=col,
                    rule_id="PARSE001",
                    severity="error",
                    message=f"file does not parse: {msg}",
                )
            )
    timings["parse"] = perf_counter() - t0
    # Phase 2: interprocedural rules get one shared project index.
    if any(rule.needs_project for rule in active):
        from repro.devtools.graph import ProjectIndex

        t_index = perf_counter()
        index = ProjectIndex.from_contexts(contexts)
        for ctx in contexts:
            ctx.project = index
        timings["project-index"] = perf_counter() - t_index
    # Phase 3: run the rules per module.
    for ctx in contexts:
        kept, n_suppressed = _check_context(ctx, active, timings)
        findings.extend(kept)
        suppressed += n_suppressed
    live, baselined, stale = baseline.partition(sorted(findings))
    return CheckReport(
        findings=live,
        baselined=baselined,
        stale_baseline=stale,
        suppressed=suppressed,
        files_checked=len(files),
        rules_run=tuple(rule.rule_id for rule in active),
        duration_s=perf_counter() - t0,
        root=str(root),
        parse_errors=parse_errors,
        timings=timings,
        jobs=jobs,
    )


def render_text(report: CheckReport) -> str:
    """Human-readable report (editor-clickable locations, summary line)."""
    lines: list[str] = []
    for finding in report.parse_errors + report.findings:
        lines.append(finding.render())
    if report.stale_baseline:
        lines.append("")
        lines.append("stale baseline entries (no longer match anything — remove them):")
        for entry in report.stale_baseline:
            lines.append(f"  {entry.path}: {entry.rule} {entry.message!r}")
    summary = (
        f"checked {report.files_checked} files with {len(report.rules_run)} rules "
        f"in {report.duration_s:.2f}s: "
    )
    if report.ok:
        summary += "no violations"
        extras = []
        if report.baselined:
            extras.append(f"{len(report.baselined)} baselined")
        if report.suppressed:
            extras.append(f"{report.suppressed} suppressed inline")
        if extras:
            summary += f" ({', '.join(extras)})"
    else:
        n = len(report.findings) + len(report.parse_errors)
        summary += (
            f"{n} violation{'s' if n != 1 else ''} "
            f"({len(report.baselined)} baselined, {report.suppressed} suppressed inline)"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_stats(report: CheckReport) -> str:
    """Per-phase / per-rule wall-time table (``repro check --stats``)."""
    rows = sorted(report.timings.items(), key=lambda kv: (-kv[1], kv[0]))
    width = max((len(name) for name, _ in rows), default=4)
    lines = [f"{'rule':<{width}}  {'wall':>9}  share"]
    total = report.duration_s or 1e-12
    for name, seconds in rows:
        lines.append(f"{name:<{width}}  {seconds * 1e3:>7.1f}ms  {seconds / total:>5.1%}")
    lines.append(
        f"{'total':<{width}}  {report.duration_s * 1e3:>7.1f}ms  "
        f"(jobs={report.jobs}, {report.files_checked} files)"
    )
    return "\n".join(lines)


def render_github(report: CheckReport, *, baseline: Baseline | None = None) -> str:
    """GitHub Actions workflow annotations — exactly one per finding.

    Live findings and parse errors annotate at ``::error`` /
    ``::warning`` with the rule id in the ``title`` field (that is what
    makes annotations filterable in the Checks UI).  When a ``baseline``
    is supplied, grandfathered findings are surfaced too, as ``::notice``
    annotations carrying their recorded justification — the CI log then
    shows *what* is muted and *why* without failing the job.

    Paths are emitted relative to the current working directory when the
    scan root lives under it (so annotations land on the right files in
    a checkout); otherwise the in-repo relative path is used as-is.
    """
    root = Path(report.root) if report.root else None
    try:
        prefix = root.resolve().relative_to(Path.cwd().resolve()).as_posix() if root else ""
    except ValueError:
        prefix = ""

    def escape(text: str) -> str:
        return text.replace("%", "%25").replace("\n", "%0A")

    def annotate(finding: Finding, level: str, message: str) -> str:
        path = f"{prefix}/{finding.path}" if prefix and prefix != "." else finding.path
        return (
            f"::{level} file={path},line={finding.line},col={finding.col + 1},"
            f"title={finding.rule_id}::{escape(message)}"
        )

    lines: list[str] = []
    for finding in report.parse_errors + report.findings:
        level = "error" if finding.severity == "error" else "warning"
        lines.append(annotate(finding, level, finding.message))
    n_live = len(lines)
    if baseline is not None:
        for finding in report.baselined:
            justification = baseline.justification_for(finding) or "no justification recorded"
            lines.append(
                annotate(finding, "notice", f"baselined: {finding.message} — {justification}")
            )
    if not n_live:
        lines.append(
            f"::notice title=repro check::checked {report.files_checked} files with "
            f"{len(report.rules_run)} rules: no violations"
        )
    return "\n".join(lines)
