"""Multi-GPU nodes."""

from __future__ import annotations

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.device import SimulatedGPU

__all__ = ["GPUNode"]


class GPUNode:
    """One host with ``gpus_per_node`` independent simulated GPUs.

    Each GPU gets its own seeded RNG stream so node-level results are
    reproducible but boards are not artificially correlated.  An integer
    ``seed`` derives per-board seeds arithmetically (the historical
    behaviour); a :class:`numpy.random.SeedSequence` seed spawns one
    child per board, plugging the node into a fleet-wide seed lineage
    (the ``telemetry.parallel`` pattern at node granularity).
    """

    def __init__(
        self,
        node_id: int,
        arch: GPUArchitecture,
        *,
        gpus_per_node: int = 4,
        seed: int | np.random.SeedSequence = 0,
        max_samples_per_run: int = 8,
    ) -> None:
        if node_id < 0:
            raise ValueError("node_id must be non-negative")
        if gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        self.node_id = node_id
        self.arch = arch
        if isinstance(seed, np.random.SeedSequence):
            board_seeds: list[int | np.random.SeedSequence] = list(seed.spawn(gpus_per_node))
        else:
            board_seeds = [seed * 1000 + node_id * 100 + i for i in range(gpus_per_node)]
        self.gpus = [
            SimulatedGPU(arch, seed=board_seed, max_samples_per_run=max_samples_per_run)
            for board_seed in board_seeds
        ]

    def __len__(self) -> int:
        return len(self.gpus)

    def gpu(self, index: int) -> SimulatedGPU:
        """Board accessor with bounds checking."""
        if not 0 <= index < len(self.gpus):
            raise IndexError(f"node {self.node_id} has {len(self.gpus)} GPUs, asked for {index}")
        return self.gpus[index]

    @property
    def idle_power_w(self) -> float:
        """Node GPU idle power (all boards parked)."""
        return sum(g.power.idle_power() for g in self.gpus)
