"""Ablation: activation functions (the paper's nine-way sweep).

Shape assertion: SELU lands in the top tier on unseen applications —
the reason the paper selected it (Section 4.3).
"""

import numpy as np
import pytest

from repro.experiments.ablations import render_ablation, run_activation_ablation


@pytest.fixture(scope="module")
def rows(ctx, suite):
    return run_activation_ablation(ctx, suite=suite)


def test_activation_ablation_report(benchmark, rows, report):
    benchmark(render_ablation, "Ablation: activations (power model)", rows)
    report("Ablation - activation functions", render_ablation("Ablation: activations (power model)", rows))


def test_all_nine_variants(rows):
    assert len(rows) == 9


def test_selu_top_tier(rows):
    accs = {r.variant: r.eval_accuracy for r in rows}
    best = max(accs.values())
    assert accs["selu"] >= best - 3.0


def test_softmax_clearly_worst(rows):
    """Softmax's simplex constraint cannot express a regression surface."""
    accs = {r.variant: r.eval_accuracy for r in rows}
    assert accs["selu"] >= accs["softmax"] + 5.0


def test_smooth_activations_cluster_tightly(rows):
    """Apart from softmax, the sweep is a near-tie — consistent with the
    paper picking SELU on robustness rather than raw accuracy."""
    accs = {r.variant: r.eval_accuracy for r in rows if r.variant != "softmax"}
    assert max(accs.values()) - min(accs.values()) < 8.0
