"""Coordinated facility power capping.

The :class:`PowerCapController` is the fleet's admission control: it
tracks the *predicted* power of every in-flight job (the model curves
attached to each :class:`~repro.cluster.policy.ClockDecision`) and
holds the sum under a facility budget, optionally modulated by a
price/carbon signal.  Placement-time mechanics:

1. headroom = cap x signal(t) - reserved power,
2. :func:`repro.analysis.capping.clock_for_power_cap` finds the fastest
   clock on the job's predicted power curve that fits the headroom,
3. a job that does not fit even at the lowest clock is deferred —
   unless the fleet is idle, in which case it is admitted at the lowest
   clock so an over-tight cap degrades throughput instead of
   deadlocking the queue.

The controller reserves by *prediction*, not simulated truth — exactly
the information a real facility controller would have — so the realised
power series can exceed the cap by the model error; the golden metrics
expose both.
"""

from __future__ import annotations

from repro.analysis.capping import clock_for_power_cap
from repro.cluster.engine import AdmissionControl
from repro.cluster.job import Job
from repro.cluster.policy import ClockDecision
from repro.fleet.scenario import SignalSpec
from repro.fleet.signals import signal_factor

__all__ = ["PowerCapController"]


class PowerCapController(AdmissionControl):
    """Admission control holding predicted fleet power under a budget."""

    def __init__(self, cap_w: float, *, signal: SignalSpec | None = None) -> None:
        if cap_w <= 0:
            raise ValueError("cap_w must be positive")
        self.cap_w = float(cap_w)
        self.signal = signal
        self._reserved_by: dict[int, float] = {}
        self._reserved_w = 0.0
        #: Decisions the controller lowered below the policy's clock.
        self.capped_jobs = 0
        #: Jobs admitted at the floor clock while the fleet was idle
        #: even though the (modulated) cap was infeasible for them.
        self.forced_admissions = 0

    def effective_cap_w(self, now_s: float) -> float:
        """Signal-modulated budget at ``now_s``."""
        return self.cap_w * signal_factor(self.signal, now_s)

    @property
    def reserved_w(self) -> float:
        """Predicted power currently committed to in-flight jobs."""
        return self._reserved_w

    def admit(self, now_s: float, job: Job, decision: ClockDecision) -> ClockDecision | None:
        headroom = self.effective_cap_w(now_s) - self._reserved_w
        if decision.freqs_mhz is None or decision.power_curve_w is None:
            # Curveless policy: nothing to throttle, admit as-is (the
            # reservation falls back to the decision's point prediction,
            # 0 W when absent).
            return decision
        fleet_idle = not self._reserved_by
        if headroom <= 0 and not fleet_idle:
            return None
        floor = max(headroom, float(decision.power_curve_w[0]))
        idx = clock_for_power_cap(decision.freqs_mhz, decision.power_curve_w, floor)
        fits = float(decision.power_curve_w[idx]) <= headroom
        if not fits:
            if not fleet_idle:
                return None
            self.forced_admissions += 1
        clock = float(decision.freqs_mhz[idx])
        if clock < decision.clock_mhz:
            self.capped_jobs += 1
            return decision.at_clock(clock, capped=True)
        return decision

    def on_start(self, now_s: float, job: Job, decision: ClockDecision) -> None:
        amount = decision.predicted_power_w if decision.predicted_power_w is not None else 0.0
        self._reserved_by[job.job_id] = amount
        self._reserved_w += amount

    def on_finish(self, now_s: float, job: Job, decision: ClockDecision) -> None:
        amount = self._reserved_by.pop(job.job_id, 0.0)
        self._reserved_w -= amount
        if not self._reserved_by:
            # Snap accumulated float drift to a clean zero whenever the
            # fleet empties, keeping headroom exact over long campaigns.
            self._reserved_w = 0.0
