"""Determinism rules: every random draw flows from a seeded Generator.

The whole reproduction hangs on ``SeedSequence``-derived randomness:
the simulator's noise, the DNN weight init, the parallel campaign's
per-cell child RNGs.  One ambient draw (``np.random.rand``, stdlib
``random``, a wall clock used as data) silently breaks worker-count
invariance and every golden file downstream.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding
from repro.devtools.rules.base import Rule, register

__all__ = ["DET001AmbientEntropy", "DET002GeneratorThreading"]

#: Packages whose outputs feed golden files / accuracy tables.
SEEDED_PACKAGES = ("repro.gpusim", "repro.nn", "repro.telemetry", "repro.core", "repro.serving")

#: The approved construction APIs — policed separately by DET002.
RNG_FACTORIES = frozenset(
    {"numpy.random.default_rng", "numpy.random.Generator", "numpy.random.SeedSequence"}
)

_ALLOWED_NUMPY_RANDOM = RNG_FACTORIES | frozenset(
    {
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.MT19937",
        "numpy.random.SFC64",
        "numpy.random.BitGenerator",
    }
)

_BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_BANNED_PREFIXES = ("random.", "secrets.")


@register
class DET001AmbientEntropy(Rule):
    """No ambient entropy or wall clocks inside seeded packages."""

    rule_id = "DET001"
    severity = "error"
    summary = "ambient entropy (np.random.*, random.*, wall clock) in a seeded code path"
    rationale = (
        "Values produced inside "
        + ", ".join(SEEDED_PACKAGES)
        + " feed golden files and the paper's accuracy tables; every draw must "
        "come from a SeedSequence-derived Generator threaded in by the caller. "
        "Module-level np.random, stdlib random, time.time()/datetime.now() and "
        "os.urandom all smuggle process state into the data."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package(*SEEDED_PACKAGES):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.resolve(node.func)
            if qualified is None:
                continue
            if qualified in _BANNED_CALLS or qualified.startswith(_BANNED_PREFIXES):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"call to {qualified} in seeded package {ctx.module.rsplit('.', 1)[0]} — "
                        "thread a SeedSequence-derived Generator (or obs timing) instead",
                    )
                )
            elif (
                qualified.startswith("numpy.random.") and qualified not in _ALLOWED_NUMPY_RANDOM
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"call to {qualified} uses the module-level numpy RNG — "
                        "draw from a Generator passed in by the caller",
                    )
                )
        return findings


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = fn.args
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        params.append(args.vararg.arg)
    if args.kwarg is not None:
        params.append(args.kwarg.arg)
    return params


class _OwnCalls(ast.NodeVisitor):
    """Call nodes of one function body, not descending into nested defs."""

    def __init__(self) -> None:
        self.calls: list[ast.Call] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # don't descend
        pass

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:  # don't descend
        pass

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)


def _references_any(node: ast.Call, names: set[str]) -> bool:
    """Whether any argument subtree of the call mentions one of ``names``."""
    for arg in list(node.args) + [kw.value for kw in node.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Name) and sub.id in names:
                return True
    return False


def _mentions(tree: ast.AST, names: set[str]) -> bool:
    return any(isinstance(sub, ast.Name) and sub.id in names for sub in ast.walk(tree))


def _none_guarded_calls(fn: ast.AST, names: set[str]) -> set[ast.Call]:
    """Calls in a branch selected by testing an rng param (the None-fallback idiom).

    Covers both ``rng if rng is not None else default_rng(0)`` and the
    statement form ``if rng is None: rng = default_rng(0)``.
    """
    guarded: set[ast.Call] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.IfExp) and _mentions(node.test, names):
            branches: list[ast.AST] = [node.body, node.orelse]
        elif isinstance(node, ast.If) and _mentions(node.test, names):
            branches = list(node.body) + list(node.orelse)
        else:
            continue
        for branch in branches:
            guarded.update(sub for sub in ast.walk(branch) if isinstance(sub, ast.Call))
    return guarded


@register
class DET002GeneratorThreading(Rule):
    """Thread the caller's rng/seed; never construct fresh unseeded generators."""

    rule_id = "DET002"
    severity = "error"
    summary = "fresh Generator constructed instead of threading the rng/seed parameter"
    rationale = (
        "A function that accepts an rng parameter is part of a seed-derivation "
        "chain; constructing its own default_rng() forks the stream and makes "
        "results depend on call order. Zero-argument default_rng()/SeedSequence() "
        "draws OS entropy, which is never reproducible. Deriving a child from "
        "the threaded rng (e.g. default_rng(rng.integers(2**63))) is the "
        "approved idiom."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package("repro"):
            return []
        findings: list[Finding] = []
        # (a) zero-argument factory calls anywhere: OS entropy.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.resolve(node.func)
            if qualified in RNG_FACTORIES and not node.args and not node.keywords:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{qualified}() with no seed draws OS entropy — pass a seed, "
                        "a SeedSequence, or the caller's Generator",
                    )
                )
        # (b) rng-parameterised functions must thread the rng, not re-seed.
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            rng_params = {p for p in _param_names(fn) if p == "rng" or p.endswith("_rng")}
            if not rng_params:
                continue
            collector = _OwnCalls()
            for stmt in fn.body:
                collector.visit(stmt)
            guarded = _none_guarded_calls(fn, rng_params)
            for call in collector.calls:
                qualified = ctx.resolve(call.func)
                if qualified not in RNG_FACTORIES:
                    continue
                if not call.args and not call.keywords:
                    continue  # already flagged by (a)
                if _references_any(call, rng_params):
                    continue  # child derivation from the threaded rng — fine
                if call in guarded:
                    continue  # seeded fallback behind an `rng is None` guard
                findings.append(
                    self.finding(
                        ctx,
                        call,
                        f"function {fn.name}() takes {sorted(rng_params)[0]!r} but builds a "
                        f"fresh generator via {qualified}(...) — thread the rng (or derive a "
                        "child from it) instead",
                    )
                )
        return findings
