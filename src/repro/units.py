"""Physical-unit annotation vocabulary for the selection chain.

The paper's whole contribution is a chain of physical quantities —
power (W) x time (s) -> energy (J), EDP (J·s), ED²P (J·s²), clocks in
MHz — flowing from :mod:`repro.gpusim` through :mod:`repro.core` into
:mod:`repro.serving`.  This module gives those quantities *declarable*
types: ``Annotated`` aliases that are plain ``float``/``ndarray`` at
runtime (zero behavioural impact; every consumer file uses
``from __future__ import annotations`` so they are never even
evaluated) but that the static units checker
(:mod:`repro.devtools.units`, rules UNIT001/UNIT002) reads as unit
declarations and propagates across call edges.

Declaring a new unit:

1. add a :class:`UnitTag` constant and an ``Annotated`` alias here;
2. teach :data:`repro.devtools.units.ALIAS_UNITS` the alias name and,
   if the unit has a naming convention (e.g. a ``_mhz`` suffix), add it
   to ``SUFFIX_UNITS``/``EXACT_UNITS`` there;
3. annotate the producing/consuming signatures with the alias.

See DESIGN.md §12 for the conventions table.
"""

from __future__ import annotations

from typing import Annotated

import numpy as np

__all__ = [
    "UnitTag",
    "MHz",
    "MHzArray",
    "Watts",
    "WattsArray",
    "Seconds",
    "SecondsArray",
    "Joules",
    "JoulesArray",
    "EDPScore",
    "EDPArray",
    "ED2PScore",
    "ED2PArray",
    "Fraction",
    "FractionArray",
]


class UnitTag(str):
    """Marker string placed inside ``Annotated[...]`` to declare a unit.

    Subclassing ``str`` keeps the tag introspectable at runtime
    (``typing.get_type_hints(..., include_extras=True)``) while staying
    trivially serialisable.
    """

    __slots__ = ()


#: Core SM clock in megahertz (dimension: Hz).
MHz = Annotated[float, UnitTag("MHz")]
MHzArray = Annotated[np.ndarray, UnitTag("MHz")]

#: Board power in watts (dimension: W).
Watts = Annotated[float, UnitTag("W")]
WattsArray = Annotated[np.ndarray, UnitTag("W")]

#: Wall-clock / component time in seconds (dimension: s).
Seconds = Annotated[float, UnitTag("s")]
SecondsArray = Annotated[np.ndarray, UnitTag("s")]

#: Energy in joules (dimension: W·s) — paper Eq. 8.
Joules = Annotated[float, UnitTag("J")]
JoulesArray = Annotated[np.ndarray, UnitTag("J")]

#: Energy-delay product (dimension: W·s²; paper Section 4.4).
EDPScore = Annotated[float, UnitTag("J*s")]
EDPArray = Annotated[np.ndarray, UnitTag("J*s")]

#: Energy-delay-squared product (dimension: W·s³).
ED2PScore = Annotated[float, UnitTag("J*s^2")]
ED2PArray = Annotated[np.ndarray, UnitTag("J*s^2")]

#: Dimensionless ratio/fraction (activity levels, degradation bounds).
Fraction = Annotated[float, UnitTag("1")]
FractionArray = Annotated[np.ndarray, UnitTag("1")]
