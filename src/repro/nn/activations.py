"""Activation functions (the nine the paper swept, Section 4.3).

Each activation implements the forward map and its derivative with
respect to the pre-activation input.  Derivatives are expressed in terms
of the *input* ``x`` (not the output), which keeps SELU/ELU exact.

SELU uses the paper's stated constants (alpha = 1.67326324,
scale = 1.05070098) from Klambauer et al., self-normalizing networks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Activation",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "ELU",
    "SELU",
    "Sigmoid",
    "Tanh",
    "Softplus",
    "Softsign",
    "Softmax",
    "get_activation",
]


class Activation(ABC):
    """Elementwise nonlinearity with an analytic derivative."""

    name: str = "abstract"

    @abstractmethod
    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Forward map, elementwise."""

    @abstractmethod
    def derivative(self, x: np.ndarray) -> np.ndarray:
        """d(activation)/dx evaluated at the pre-activation ``x``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class Linear(Activation):
    """Identity — used on regression output layers."""

    name = "linear"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return np.ones_like(x)


class ReLU(Activation):
    """Rectified linear unit ``max(0, x)``."""

    name = "relu"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return (x > 0.0).astype(x.dtype)


class LeakyReLU(Activation):
    """ReLU with a small negative-side slope."""

    name = "leaky_relu"

    def __init__(self, negative_slope: float = 0.01) -> None:
        if negative_slope < 0:
            raise ValueError("negative_slope must be non-negative")
        self.negative_slope = float(negative_slope)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0.0, x, self.negative_slope * x)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0.0, 1.0, self.negative_slope).astype(x.dtype)


class ELU(Activation):
    """Exponential linear unit."""

    name = "elu"

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = float(alpha)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0.0, x, self.alpha * np.expm1(np.minimum(x, 0.0)))

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0.0, 1.0, self.alpha * np.exp(np.minimum(x, 0.0)))


class SELU(Activation):
    """Scaled ELU with the self-normalizing constants (paper Eq. 2)."""

    name = "selu"

    ALPHA = 1.67326324
    SCALE = 1.05070098

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.SCALE * np.where(x > 0.0, x, self.ALPHA * np.expm1(np.minimum(x, 0.0)))

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return self.SCALE * np.where(x > 0.0, 1.0, self.ALPHA * np.exp(np.minimum(x, 0.0)))


class Sigmoid(Activation):
    """Logistic sigmoid, computed stably for large |x|."""

    name = "sigmoid"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x, dtype=float)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def derivative(self, x: np.ndarray) -> np.ndarray:
        s = self(x)
        return s * (1.0 - s)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        t = np.tanh(x)
        return 1.0 - t * t


class Softplus(Activation):
    """``log(1 + e^x)``, computed stably."""

    name = "softplus"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.logaddexp(0.0, x)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return Sigmoid()(x)


class Softsign(Activation):
    """``x / (1 + |x|)``."""

    name = "softsign"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x / (1.0 + np.abs(x))

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.abs(x)) ** 2


class Softmax(Activation):
    """Row-wise softmax.

    Included because the paper's sweep lists it; for the elementwise
    backprop path used by :class:`~repro.nn.layers.Dense` we expose the
    diagonal of the Jacobian, which is the exact gradient only when
    downstream losses treat outputs independently (as MSE does).
    """

    name = "softmax"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        ex = np.exp(shifted)
        return ex / ex.sum(axis=-1, keepdims=True)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        s = self(x)
        return s * (1.0 - s)


_REGISTRY: dict[str, type[Activation]] = {
    cls.name: cls  # type: ignore[misc]
    for cls in (Linear, ReLU, LeakyReLU, ELU, SELU, Sigmoid, Tanh, Softplus, Softsign, Softmax)
}


def get_activation(name: str) -> Activation:
    """Instantiate an activation by name (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise KeyError(f"unknown activation {name!r}; known: {sorted(_REGISTRY)}") from None
