"""Analytical GPU DVFS simulator.

This package replaces the physical NVIDIA A100 (GA100) and V100 (GV100)
nodes used in the paper.  It models, per DVFS configuration:

* **voltage** — a realistic voltage/frequency curve (flat floor, then a
  linear ramp to the maximum boost voltage),
* **power** — idle/static power plus activity-weighted dynamic power
  following the classic ``P_dyn proportional to C_eff * V^2 * f`` law, with
  per-architecture coefficients calibrated so compute-bound work reaches
  ~TDP and memory-bound work ~50 % TDP at the maximum clock (paper Fig. 1),
* **timing** — a latency-aware roofline with a memory-bandwidth knee at
  roughly 64 % of the maximum core clock (paper Fig. 1 (h)) and a
  frequency-insensitive serial fraction per workload,
* **sensors** — the 12 DCGM utilization metrics the paper collects,
  with seedable measurement noise.

The public entry point is :class:`~repro.gpusim.device.SimulatedGPU`.
"""

from repro.gpusim.arch import (
    GA100,
    GV100,
    GPUArchitecture,
    get_architecture,
    list_architectures,
    register_architecture,
)
from repro.gpusim.dvfs import DVFSConfigSpace
from repro.gpusim.kernel import KernelCensus
from repro.gpusim.noise import NoiseModel
from repro.gpusim.power import PowerCoefficients, PowerModel
from repro.gpusim.thermal import ThermalModel
from repro.gpusim.timing import TimingBreakdown, TimingModel
from repro.gpusim.voltage import VoltageCurve
from repro.gpusim.device import RunRecord, SampleRecord, SimulatedGPU

__all__ = [
    "GA100",
    "GV100",
    "GPUArchitecture",
    "get_architecture",
    "list_architectures",
    "register_architecture",
    "DVFSConfigSpace",
    "KernelCensus",
    "NoiseModel",
    "PowerCoefficients",
    "PowerModel",
    "ThermalModel",
    "TimingBreakdown",
    "TimingModel",
    "VoltageCurve",
    "RunRecord",
    "SampleRecord",
    "SimulatedGPU",
]
