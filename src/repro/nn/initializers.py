"""Weight initialisation schemes.

SELU networks require LeCun-normal initialisation for the
self-normalizing property to hold (Klambauer et al.), so that is the
default the network builder picks for SELU hidden layers; He-normal suits
ReLU-family activations and Glorot-uniform the saturating ones.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lecun_normal", "he_normal", "glorot_uniform", "for_activation"]


def lecun_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """N(0, 1/fan_in) — the SELU-compatible initialiser."""
    return rng.normal(0.0, np.sqrt(1.0 / fan_in), size=(fan_in, fan_out))


def he_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """N(0, 2/fan_in) — for ReLU-family activations."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """U(-limit, limit) with limit = sqrt(6 / (fan_in + fan_out))."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def for_activation(activation_name: str):
    """The conventional initialiser for a given activation."""
    if activation_name in ("selu", "elu"):
        return lecun_normal
    if activation_name in ("relu", "leaky_relu", "softplus"):
        return he_normal
    return glorot_uniform
