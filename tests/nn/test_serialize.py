"""Network serialisation tests."""

import numpy as np
import pytest

from repro.nn import FeedForwardNetwork, load_network, save_network


class TestRoundtrip:
    def test_predictions_identical_after_reload(self, tmp_path):
        net = FeedForwardNetwork.build(3, (16, 8), 1, activation="selu", seed=0)
        x = np.random.default_rng(0).standard_normal((10, 3))
        path = save_network(net, tmp_path / "model.npz")
        loaded = load_network(path)
        assert np.array_equal(net.predict(x), loaded.predict(x))

    def test_architecture_preserved(self, tmp_path):
        net = FeedForwardNetwork.build(5, (7, 3), 2, activation="tanh", seed=0)
        loaded = load_network(save_network(net, tmp_path / "m.npz"))
        assert loaded.input_dim == 5
        assert loaded.output_dim == 2
        assert [l.activation.name for l in loaded.layers] == ["tanh", "tanh", "linear"]

    def test_suffix_appended(self, tmp_path):
        net = FeedForwardNetwork.build(2, (4,), 1, seed=0)
        path = save_network(net, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_parent_dirs_created(self, tmp_path):
        net = FeedForwardNetwork.build(2, (4,), 1, seed=0)
        path = save_network(net, tmp_path / "a" / "b" / "model.npz")
        assert path.exists()

    def test_bad_version_rejected(self, tmp_path):
        import json

        net = FeedForwardNetwork.build(2, (4,), 1, seed=0)
        path = save_network(net, tmp_path / "m.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        spec = json.loads(bytes(arrays["spec"]).decode())
        spec["version"] = 999
        arrays["spec"] = np.frombuffer(json.dumps(spec).encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_network(path)
