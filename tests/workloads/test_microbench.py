"""DGEMM/STREAM census math and reference-kernel validation."""

import numpy as np
import pytest

from repro.workloads.microbench import DGEMM, STREAM


class TestDGEMMCensus:
    def test_flop_count_is_2n3_per_rep(self):
        w = DGEMM(repetitions=1)
        c = w.census(1024)
        assert c.flops_fp64 == pytest.approx(2.0 * 1024**3)

    def test_repetitions_scale_device_work_not_pcie(self):
        one = DGEMM(repetitions=1).census(1024)
        ten = DGEMM(repetitions=10).census(1024)
        assert ten.flops_fp64 == pytest.approx(10.0 * one.flops_fp64)
        assert ten.pcie_rx_bytes == pytest.approx(one.pcie_rx_bytes)

    def test_compute_bound_intensity(self):
        c = DGEMM().census()
        assert c.arithmetic_intensity > 20.0

    def test_fp64_only(self):
        c = DGEMM().census()
        assert c.flops_fp32 == 0.0

    def test_default_size(self):
        assert DGEMM().default_size == 8192

    def test_size_bounds_enforced(self):
        with pytest.raises(ValueError, match="size"):
            DGEMM().census(1)

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError, match="repetitions"):
            DGEMM(repetitions=0)

    def test_reference_kernel_checksum_reproducible(self, rng):
        w = DGEMM()
        a = w.run_reference(64, np.random.default_rng(5))
        b = w.run_reference(64, np.random.default_rng(5))
        assert a["checksum"] == b["checksum"]

    def test_reference_kernel_flops_match_census_per_rep(self):
        w = DGEMM(repetitions=1)
        ref = w.run_reference(128, np.random.default_rng(0))
        assert ref["flops"] == pytest.approx(w.census(128).flops_fp64)


class TestSTREAMCensus:
    def test_triad_bytes_per_element(self):
        c = STREAM(repetitions=1).census(2048)
        assert c.dram_bytes == pytest.approx(24.0 * 2048)

    def test_triad_flops_per_element(self):
        c = STREAM(repetitions=1).census(2048)
        assert c.flops_fp64 == pytest.approx(2.0 * 2048)

    def test_memory_bound_intensity(self):
        c = STREAM().census()
        assert c.arithmetic_intensity < 0.5

    def test_reference_triad_correct(self, rng):
        w = STREAM()
        n = 4096
        out = w.run_reference(n, np.random.default_rng(1))
        # Recompute with the same seed to validate checksum definition.
        g = np.random.default_rng(1)
        b, c = g.standard_normal(n), g.standard_normal(n)
        assert out["checksum"] == pytest.approx(float((b + 3.0 * c).sum()))

    def test_has_reference_kernel_flag(self):
        assert STREAM().has_reference_kernel
        assert DGEMM().has_reference_kernel


class TestCharacterContrast:
    """DGEMM and STREAM must anchor opposite ends of the intensity axis."""

    def test_intensity_ordering(self):
        assert DGEMM().census().arithmetic_intensity > 100 * STREAM().census().arithmetic_intensity

    def test_on_device_activities(self, quiet_ga100):
        bd_d = quiet_ga100.timing.evaluate(DGEMM().census(), 1410.0)
        bd_s = quiet_ga100.timing.evaluate(STREAM().census(), 1410.0)
        assert bd_d.fp_active > 0.75 and bd_d.dram_active < 0.45
        assert bd_s.dram_active > 0.7 and bd_s.fp_active < 0.1

    def test_on_device_power_contrast(self, quiet_ga100):
        """Paper Fig. 1: DGEMM ~TDP, STREAM ~half TDP at f_max."""
        p_d = quiet_ga100.true_power(DGEMM().census(), 1410.0)
        p_s = quiet_ga100.true_power(STREAM().census(), 1410.0)
        assert p_d > 0.9 * 500.0
        assert 0.35 * 500.0 < p_s < 0.6 * 500.0
