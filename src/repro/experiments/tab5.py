"""Table 5: energy/time changes per method — shares Figure 10's data."""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import EvaluationSuite
from repro.experiments.fig10 import Fig10Result, render_fig10, run_fig10

__all__ = ["Tab5Result", "run_tab5", "render_tab5"]

#: Table 5 is the tabular form of Figure 10.
Tab5Result = Fig10Result


def run_tab5(ctx: ExperimentContext, *, suite: EvaluationSuite | None = None) -> Tab5Result:
    """Realised energy/time changes for every app and method on GA100."""
    return run_fig10(ctx, suite=suite)


def render_tab5(result: Tab5Result) -> str:
    """Table 5 layout (same matrix as Figure 10)."""
    return render_fig10(result).replace("Figure 10 / Table 5", "Table 5")
