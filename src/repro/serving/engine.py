"""Fused packed-weight inference engine for the serving hot path.

The service's predict stage used to route every flush through the
generic model path: build a ``(n * f, 3)`` grid, standardise it, run
``predict_blocked``, inverse-transform, exp, clip — twice (power and
time), each stage allocating fresh multi-megabyte arrays.  At realistic
flush sizes the hot loop was allocation/page-fault bound, not FLOP
bound.  This module packs both networks once per model fingerprint and
executes the whole stack through preallocated arenas:

* **Exact mode** (``fast=False``, the default) replays the reference
  pipeline operation for operation — same gemm blocking, same ufunc
  sequence — into reused buffers, so results stay *bitwise identical*
  to ``predict_power_many`` / ``predict_unit_time_many`` while the
  steady state allocates nothing but the output matrices.
* **Fast mode** (``fast=True``) folds the x-scaler affine into layer 0
  and the y-scaler inverse into the last layer (DESIGN.md §13 derives
  why both compose), decomposes the first layer over the replicated
  grid as ``z0[i, j] = u_i + v_j`` (the frequency column is shared by
  every request, so its contribution is a pack-time constant), and runs
  the remaining gemms over L2-resident request tiles with a single-pass
  SELU blend.  Fast mode is gated by a 1e-9 rtol equivalence suite, not
  the bitwise bar.

Optionally a :class:`ShardPool` fans request rows out to worker
processes that map the packed weights via
``multiprocessing.shared_memory`` — multi-core scale-out behind a flag,
off by default.

Thread-safety: engines reuse arenas across calls and are *not* locked
internally; the owning :class:`~repro.serving.service.SelectionService`
serializes flushes, which is the intended usage.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory

import numpy as np

from repro.core.models import InferenceSpec
from repro.nn.activations import SELU, get_activation
from repro.units import FractionArray, MHzArray, Watts, WattsArray

try:  # BLAS ``y += a*x`` keeps the fast-path SELU blend single-pass,
    # and gemm-with-beta folds the bias add into the matmul call.
    from scipy.linalg.blas import daxpy as _daxpy
    from scipy.linalg.blas import dgemm as _dgemm
except ImportError:  # pragma: no cover - scipy is a baked-in dependency
    _daxpy = None
    _dgemm = None

__all__ = ["FusedInferenceEngine", "PackedModel", "ShardPool"]

_ALPHA = SELU.ALPHA
_SCALE = SELU.SCALE
#: log2(e): SELU-layer weights are pre-scaled by this so the blend can
#: use ``exp2`` (measurably cheaper than ``exp`` here); the inverse
#: scale folds into the consumer layer, see ``_pack_fast``.
_LOG2E = 1.4426950408889634
#: axpy coefficient of the exp2 blend (ALPHA * LOG2E, see _activate_fast).
_BLEND_A = _ALPHA * _LOG2E

#: Requests per fast-path tile.  One tile's working set (two ping-pong
#: gemm buffers plus the activation scratch, each tile * n_freqs rows x
#: 64 columns) must stay inside L2 so the layer walk runs cache-resident
#: instead of DRAM-bound; 12 requests x 61 clocks ~ 3 x 0.35 MiB of
#: float64, the measured sweet spot on a 2 MiB L2.
_TILE_REQS = 12

#: Requests per exact-path chunk.  The exact path keeps the reference
#: ufunc sequence (6 elementwise passes per SELU layer), so bounding the
#: chunk keeps those passes in cache; boundaries fall on whole requests,
#: which preserves the per-curve gemm blocking and hence bitwiseness.
_CHUNK_REQS = 32

#: Smallest time value the reference pipeline allows (models.py clip).
_TIME_FLOOR = 1e-12


class _Arena:
    """Named scratch buffers that grow to a high-water mark and persist.

    ``take`` returns a leading-rows view of a kept buffer, allocating
    only when a request is larger than anything seen before — a
    saturated service's steady state allocates nothing here.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def take(self, name: str, rows: int, cols: int, dtype: type = np.float64) -> np.ndarray:
        buf = self._buffers.get(name)
        if buf is None or buf.shape[0] < rows or buf.shape[1] != cols or buf.dtype != dtype:
            keep = rows if buf is None or buf.shape[1] != cols or buf.dtype != dtype else buf.shape[0]
            buf = np.empty((max(rows, keep), cols), dtype=dtype)
            self._buffers[name] = buf
        return buf[:rows]


def _finalize_power(curves: np.ndarray, power_scale_w: float | None) -> None:
    """In-place TDP rescale + clip, mirroring ``predict_power_many``."""
    if power_scale_w is not None:
        np.multiply(curves, power_scale_w, out=curves)
    np.maximum(curves, 0.0, out=curves)


def _finalize_unit_time(curves: np.ndarray) -> None:
    """In-place floor clip, mirroring ``predict_unit_time_many``."""
    np.maximum(curves, _TIME_FLOOR, out=curves)


class PackedModel:
    """One regression model packed for repeated batched inference.

    Built from an :class:`~repro.core.models.InferenceSpec` snapshot and
    a fixed clock grid; :meth:`forward_into` then evaluates the full
    curve matrix for a column of (fp_active, dram_active) profiles.  The
    output is the *curve* in model units (after the y-inverse transform
    and the log-target exp) — power rescale/clip and the time floor are
    the engine's job, matching where they live in ``core.models``.
    """

    def __init__(
        self,
        spec: InferenceSpec,
        freqs_mhz: MHzArray,
        *,
        fast: bool = False,
        tile_reqs: int = _TILE_REQS,
        chunk_reqs: int = _CHUNK_REQS,
    ) -> None:
        if tile_reqs < 1 or chunk_reqs < 1:
            raise ValueError("tile_reqs and chunk_reqs must be >= 1")
        if not spec.layers:
            raise ValueError("inference spec has no layers")
        if spec.layers[0][0].shape[0] != 3:
            raise ValueError("packed inference expects the paper's 3-feature input")
        self.fingerprint = spec.fingerprint
        self.log_target = spec.log_target
        self.fast = fast
        self.tile_reqs = tile_reqs
        self.chunk_reqs = chunk_reqs
        self._freqs = np.ascontiguousarray(freqs_mhz, dtype=float)
        if self._freqs.ndim != 1 or self._freqs.size < 1:
            raise ValueError("freqs_mhz must be a non-empty 1-D grid")
        self._arena = _Arena()
        if fast:
            self._pack_fast(spec)
        else:
            self._pack_exact(spec)

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------
    def _pack_exact(self, spec: InferenceSpec) -> None:
        # Verbatim copies: the exact path replays the reference ufunc
        # sequence, so the parameters must be untouched.
        self._x_mean = spec.x_mean
        self._x_scale = spec.x_scale
        self._y_mean = spec.y_mean
        self._y_scale = spec.y_scale
        self._layers = list(spec.layers)

    def _pack_fast(self, spec: InferenceSpec) -> None:
        acts = [act for _, _, act in spec.layers]
        unsupported = sorted(set(acts) - {"selu", "relu", "linear"})
        if unsupported:
            raise ValueError(
                f"fast mode folds selu/relu/linear stacks only, got {unsupported}; "
                "use the exact mode for other activations"
            )
        w0, b0, act0 = spec.layers[0]
        # Fold the x-standardisation into layer 0:
        #   ((x - m) / s) @ W0 + b0  ==  x @ (W0 / s[:, None]) + (b0 - (m / s) @ W0)
        w0_folded = w0 / spec.x_scale[:, None]
        b0_folded = b0 - (spec.x_mean / spec.x_scale) @ w0

        # Every remaining rewrite is one affine bookkeeping exercise: the
        # packed network carries ``computed = a * true + s`` (scalar a, s)
        # between layers, where ``true`` is the reference activation
        # output, and each consumer's weights/bias compensate:
        #   W' = (a_pre / a) * W        b' = a_pre * b - s * colsum(W')
        # with ``a_pre`` the scale the *next* stage wants on its input.
        # Three folds ride on this single recurrence:
        #   * SELU's outer SCALE (a picks up 1/SCALE after each selu);
        #   * the exp2 blend — a selu layer wants its pre-activation
        #     times LOG2E so that exp2(min(z', 0)) == exp(min(z, 0)),
        #     ``exp2`` being the cheaper ufunc (a_pre = LOG2E), and the
        #     blend emits LOG2E * (inner + ALPHA), i.e. a = LOG2E/SCALE
        #     relative to the true selu output with drift s = LOG2E*ALPHA
        #     (the +ALPHA because the negative branch uses plain exp
        #     instead of expm1 — exp is the ~2x-throughput ufunc);
        #   * the y-inverse affine, folded into the final linear layer
        #     (a_pre = y_scale, plus y_mean on the bias) or left as a
        #     scalar out-affine when the output activation is nonlinear.
        def act_state(act: str) -> tuple[float, float]:
            if act == "selu":
                return _LOG2E / _SCALE, _LOG2E * _ALPHA
            return 1.0, 0.0

        a_pre0 = _LOG2E if act0 == "selu" else 1.0
        self._u_w = np.ascontiguousarray(a_pre0 * w0_folded[:2])
        self._u_b = np.ascontiguousarray(a_pre0 * b0_folded)
        # The grid row for request i at clock j is (fp_i, dram_i, f_j), so
        # layer 0's pre-activation splits as u_i + v_j; v is a pack-time
        # constant of the clock grid — the first gemm disappears entirely.
        self._v = np.ascontiguousarray(self._freqs[:, None] * (a_pre0 * w0_folded[2]))
        self._act0 = act0

        a, s = act_state(act0)
        y_scale = float(spec.y_scale[0])
        y_mean = float(spec.y_mean[0])
        n_hidden = len(spec.layers) - 1
        stack: list[tuple[np.ndarray, np.ndarray, str]] = []
        self._out_affine: tuple[float, float] | None = None
        for idx, (w, b, act) in enumerate(spec.layers[1:]):
            if idx == n_hidden - 1 and act == "linear":
                wp = np.ascontiguousarray((y_scale / a) * w)
                bp = y_scale * b - s * wp.sum(axis=0) + y_mean
                a, s = 1.0, 0.0
            else:
                a_pre = _LOG2E if act == "selu" else 1.0
                wp = np.ascontiguousarray((a_pre / a) * w)
                bp = a_pre * b - s * wp.sum(axis=0)
                a, s = act_state(act)
            stack.append((wp, np.ascontiguousarray(bp), act))
        if not (stack and stack[-1][2] == "linear"):
            self._out_affine = (y_scale / a, y_mean - s * (y_scale / a))
        self._stack = stack
        # The (h, 1) output layer can gemm straight into the caller's
        # out-matrix view — one tile copy less per flush.
        self._direct_out = bool(stack) and stack[-1][0].shape[1] == 1
        # Bias templates for gemm-beta fusion: dgemm(..., beta=1) lands
        # ``x @ W + b`` in one BLAS call when the output buffer is
        # pre-filled with the broadcast bias (a memcpy, cheaper than a
        # separate broadcast add pass).
        rows_max = self.tile_reqs * self._freqs.size
        self._btiles: list[np.ndarray | None] = [
            np.ascontiguousarray(np.broadcast_to(b, (rows_max, w.shape[1])))
            if _dgemm is not None and w.shape[1] > 1
            else None
            for w, b, _ in stack
        ]

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def forward_into(
        self,
        fp_active: FractionArray,
        dram_active: FractionArray,
        out: np.ndarray,
        finalize=None,
    ) -> None:
        """Fill ``out`` (n, n_freqs) with the model curve per profile.

        ``finalize`` (optional) is an in-place callable applied to each
        tile/chunk view of ``out`` while it is still cache-resident —
        the engine passes its rescale/clip stage here so those passes
        never re-stream the full matrix from DRAM.  Its ops must be
        elementwise for the chunked application to match a whole-matrix
        pass bitwise (the engine's are: scalar multiply and clips).
        """
        n = fp_active.shape[0]
        f = self._freqs.size
        if out.shape != (n, f):
            raise ValueError(f"out must have shape ({n}, {f}), got {out.shape}")
        if self.fast and self._direct_out and not out.flags.c_contiguous:
            raise ValueError("fast-path out matrix must be C-contiguous")
        if n == 0:
            return
        if self.fast:
            self._forward_fast(fp_active, dram_active, out, finalize)
        else:
            self._forward_exact(fp_active, dram_active, out, finalize)

    def _forward_exact(self, fp: np.ndarray, dram: np.ndarray, out: np.ndarray, finalize=None) -> None:
        """Reference pipeline replay into arenas (bitwise-identical).

        Chunk boundaries fall on whole requests and the gemm runs per
        f-row block exactly as ``predict_blocked`` does, so every BLAS
        call sees the same operand shapes as the reference path; all
        other stages are elementwise ufuncs in the reference order,
        which chunking and ``out=`` placement cannot perturb.
        """
        n = fp.shape[0]
        f = self._freqs.size
        arena = self._arena
        for c0 in range(0, n, self.chunk_reqs):
            c1 = min(c0 + self.chunk_reqs, n)
            t = c1 - c0
            rows = t * f
            x = arena.take("x", rows, 3)
            x[:, 0] = np.repeat(fp[c0:c1], f)
            x[:, 1] = np.repeat(dram[c0:c1], f)
            x[:, 2] = np.tile(self._freqs, t)
            np.subtract(x, self._x_mean, out=x)
            np.divide(x, self._x_scale, out=x)
            cur = x
            for li, (w, b, act) in enumerate(self._layers):
                z = arena.take(f"z{li}", rows, w.shape[1])
                for s in range(0, rows, f):
                    z[s : s + f] = cur[s : s + f] @ w
                np.add(z, b, out=z)
                cur = self._activate_exact(act, z, li)
            np.multiply(cur, self._y_scale, out=cur)
            np.add(cur, self._y_mean, out=cur)
            if self.log_target:
                np.exp(cur, out=cur)
            out[c0:c1] = cur.reshape(t, f)
            if finalize is not None:
                finalize(out[c0:c1])

    def _activate_exact(self, act: str, z: np.ndarray, li: int) -> np.ndarray:
        if act == "linear":
            return z
        if act == "relu":
            np.maximum(z, 0.0, out=z)
            return z
        if act == "selu":
            # Same per-element operation sequence as activations.SELU:
            # SCALE * where(z > 0, z, ALPHA * expm1(minimum(z, 0))).
            rows, cols = z.shape
            t = self._arena.take(f"t{li}", rows, cols)
            mask = self._arena.take(f"m{li}", rows, cols, dtype=np.bool_)
            np.minimum(z, 0.0, out=t)
            np.expm1(t, out=t)
            np.multiply(_ALPHA, t, out=t)
            np.greater(z, 0.0, out=mask)
            np.copyto(t, z, where=mask)
            np.multiply(_SCALE, t, out=t)
            return t
        # Exotic sweep activations: fall back to the reference callable
        # (allocates, but stays bitwise by construction).
        return get_activation(act)(z)

    def _forward_fast(self, fp: np.ndarray, dram: np.ndarray, out: np.ndarray, finalize=None) -> None:
        # Tile working set is deliberately three buffers — two ping-pong
        # gemm operands plus one activation scratch (~1.5 MiB at the
        # default tile) — so a whole tile's layer walk stays L2-resident;
        # a buffer per layer was measured L2-thrashing at 64-wide stacks.
        n = fp.shape[0]
        f = self._freqs.size
        arena = self._arena
        h0 = self._u_b.size
        last = len(self._stack) - 1
        xin = arena.take("xin", n, 2)
        xin[:, 0] = fp
        xin[:, 1] = dram
        u = arena.take("u", n, h0)
        np.dot(xin, self._u_w, out=u)
        np.add(u, self._u_b, out=u)
        for c0 in range(0, n, self.tile_reqs):
            c1 = min(c0 + self.tile_reqs, n)
            t = c1 - c0
            rows = t * f
            view = out[c0:c1]
            z = arena.take("za", rows, h0)
            np.add(u[c0:c1, None, :], self._v, out=z.reshape(t, f, h0))
            cur = self._activate_fast(self._act0, z)
            flip = 1
            for li, (w, b, act) in enumerate(self._stack):
                if li == last and self._direct_out:
                    zz = view.reshape(rows, 1)
                else:
                    zz = arena.take("zb" if flip else "za", rows, w.shape[1])
                    flip ^= 1
                btile = self._btiles[li]
                if btile is not None:
                    # One BLAS call for x @ W + b: pre-fill with the bias
                    # (memcpy) and accumulate the product via beta=1.  A
                    # C-order matmul is the F-order matmul of the
                    # transposes, which is what the raw dgemm wants.
                    np.copyto(zz, btile[:rows])
                    _dgemm(1.0, w.T, cur.T, beta=1.0, c=zz.T, overwrite_c=1)
                else:
                    np.dot(cur, w, out=zz)
                    np.add(zz, b, out=zz)
                cur = self._activate_fast(act, zz)
            if self._out_affine is not None:
                a, c = self._out_affine
                np.multiply(cur, a, out=cur)
                np.add(cur, c, out=cur)
            if not self._direct_out:
                view[...] = cur.reshape(t, f)
            if self.log_target:
                np.exp(view, out=view)
            if finalize is not None:
                finalize(view)

    def _activate_fast(self, act: str, z: np.ndarray) -> np.ndarray:
        if act == "linear":
            return z
        if act == "relu":
            np.maximum(z, 0.0, out=z)
            return z
        # SELU blend on the LOG2E-scaled pre-activation z = LOG2E * z_true
        # (see _pack_fast):  max(z, 0) + ALPHA*LOG2E * exp2(min(z, 0))
        #                 == LOG2E * (selu_inner(z_true) + ALPHA),
        # an affine of the true output that the consumer layer undoes.
        # ``z - min(z, 0)`` IS max(z, 0) exactly (z>0: z-0; z<=0: z-z),
        # and a BLAS axpy runs that subtraction cheaper than a second
        # ufunc pass.  Ufunc `where=` kwargs drop to scalar loops — keep
        # every pass full-SIMD instead.
        rows, cols = z.shape
        t = self._arena.take(f"t{cols}", rows, cols)
        np.minimum(z, 0.0, out=t)
        if _daxpy is not None:
            zf = z.reshape(-1)
            tf = t.reshape(-1)
            _daxpy(tf, zf, a=-1.0)
            np.exp2(t, out=t)
            _daxpy(tf, zf, a=_BLEND_A)
        else:
            np.subtract(z, t, out=z)
            np.exp2(t, out=t)
            np.multiply(t, _BLEND_A, out=t)
            np.add(z, t, out=z)
        return z


class FusedInferenceEngine:
    """Both serving DNNs packed behind one :meth:`infer` call.

    Construct once per (power, time) fingerprint pair — the service
    rebuilds it from :meth:`~repro.core.models._RegressionModel.inference_spec`
    whenever :meth:`~repro.serving.service.SelectionService.refresh_models`
    detects new weights.  ``power_scale_w`` carries the TDP rescale the
    service would otherwise pass to ``predict_power_many`` (None for
    absolute-watt models).  ``shards > 1`` routes fast-path flushes
    through a :class:`ShardPool`.
    """

    def __init__(
        self,
        power_spec: InferenceSpec,
        time_spec: InferenceSpec,
        freqs_mhz: MHzArray,
        *,
        power_scale_w: Watts | None = None,
        fast: bool = False,
        shards: int = 1,
        tile_reqs: int = _TILE_REQS,
        chunk_reqs: int = _CHUNK_REQS,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.freqs_mhz = np.ascontiguousarray(freqs_mhz, dtype=float)
        self.fast = fast
        self.shards = shards
        self.power_scale_w = None if power_scale_w is None else float(power_scale_w)
        self.fingerprints = (power_spec.fingerprint, time_spec.fingerprint)
        self._power = PackedModel(
            power_spec, self.freqs_mhz, fast=fast, tile_reqs=tile_reqs, chunk_reqs=chunk_reqs
        )
        self._time = PackedModel(
            time_spec, self.freqs_mhz, fast=fast, tile_reqs=tile_reqs, chunk_reqs=chunk_reqs
        )
        self._pool: ShardPool | None = None
        if shards > 1:
            self._pool = ShardPool(
                power_spec,
                time_spec,
                self.freqs_mhz,
                power_scale_w=self.power_scale_w,
                n_shards=shards,
                fast=fast,
            )

    @property
    def mode(self) -> str:
        """Human-readable engine configuration for stats/CLI output."""
        base = "fused" if self.fast else "exact"
        return f"{base}x{self.shards}" if self.shards > 1 else base

    def infer(
        self, fp_active: FractionArray, dram_active: FractionArray
    ) -> tuple[WattsArray, np.ndarray]:
        """Power (W) and unit-time curve matrices for a profile column.

        Returns two fresh ``(n, n_freqs)`` arrays the caller owns —
        cache entries must outlive the engine's reusable arenas, so the
        outputs are never arena views.
        """
        fp = np.ascontiguousarray(fp_active, dtype=float)
        dram = np.ascontiguousarray(dram_active, dtype=float)
        if fp.ndim != 1 or fp.shape != dram.shape:
            raise ValueError("fp_active and dram_active must be matching 1-D columns")
        n = fp.size
        f = self.freqs_mhz.size
        if self._pool is not None and n >= self._pool.n_shards:
            sharded = self._pool.infer(fp, dram)
            if sharded is not None:
                return sharded
        power = np.empty((n, f))
        unit_time = np.empty((n, f))
        scale = self.power_scale_w
        self._power.forward_into(fp, dram, power, finalize=lambda v: _finalize_power(v, scale))
        self._time.forward_into(fp, dram, unit_time, finalize=_finalize_unit_time)
        return power, unit_time

    def close(self) -> None:
        """Stop the shard pool (no-op for single-shard engines)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "FusedInferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Multiprocess shard pool
# ----------------------------------------------------------------------
def _spec_arrays(spec: InferenceSpec) -> list[np.ndarray]:
    """Canonical array order used by the shared-memory weight layout."""
    arrays = [spec.x_mean, spec.x_scale, spec.y_mean, spec.y_scale]
    for w, b, _ in spec.layers:
        arrays.append(w)
        arrays.append(b)
    return arrays


def _rebuild_spec(base: np.ndarray, manifest: list[tuple[int, tuple[int, ...]]], meta: dict) -> InferenceSpec:
    """Reconstruct an :class:`InferenceSpec` from shared-memory views."""
    views = [base[off : off + int(np.prod(shape, dtype=int))].reshape(shape) for off, shape in manifest]
    layers = tuple(
        (views[4 + 2 * i], views[5 + 2 * i], act) for i, act in enumerate(meta["acts"])
    )
    return InferenceSpec(
        x_mean=views[0],
        x_scale=views[1],
        y_mean=views[2],
        y_scale=views[3],
        log_target=meta["log_target"],
        layers=layers,
        fingerprint=meta["fingerprint"],
    )


def _shard_worker(
    conn,
    weights_name: str,
    io_name: str,
    manifests: tuple[list, list],
    metas: tuple[dict, dict],
    freqs: np.ndarray,
    power_scale_w: float | None,
    fast: bool,
    capacity: int,
) -> None:  # pragma: no cover - exercised in a child process
    weights_shm = shared_memory.SharedMemory(name=weights_name)
    try:
        # The io attach can itself fail — nested try/finally so the
        # weights mapping never outlives this worker on any path.
        io_shm = shared_memory.SharedMemory(name=io_name)
        try:
            total = weights_shm.size // 8
            base = np.ndarray((total,), dtype=np.float64, buffer=weights_shm.buf)
            power_model = PackedModel(_rebuild_spec(base, manifests[0], metas[0]), freqs, fast=fast)
            time_model = PackedModel(_rebuild_spec(base, manifests[1], metas[1]), freqs, fast=fast)
            f = freqs.size
            io = np.ndarray((2 * capacity + 2 * capacity * f,), dtype=np.float64, buffer=io_shm.buf)
            fp_col = io[:capacity]
            dram_col = io[capacity : 2 * capacity]
            power_out = io[2 * capacity : 2 * capacity + capacity * f].reshape(capacity, f)
            unit_out = io[2 * capacity + capacity * f :].reshape(capacity, f)
            conn.send("ready")
            while True:
                message = conn.recv()
                if message is None:
                    return
                start, stop = message
                try:
                    power_model.forward_into(
                        fp_col[start:stop],
                        dram_col[start:stop],
                        power_out[start:stop],
                        finalize=lambda v: _finalize_power(v, power_scale_w),
                    )
                    time_model.forward_into(
                        fp_col[start:stop], dram_col[start:stop], unit_out[start:stop], finalize=_finalize_unit_time
                    )
                    conn.send(True)
                except Exception as exc:  # defensive: surface worker faults to the parent
                    conn.send(exc)
        finally:
            io_shm.close()
    finally:
        weights_shm.close()


class ShardPool:
    """Row-sharded inference across worker processes.

    The packed weights are written *once* into a shared-memory block;
    each worker maps it read-only and rebuilds its own
    :class:`PackedModel` pair over the mapped views, so forking N shards
    costs no weight copies.  Per flush, the parent writes the input
    columns into a shared I/O block, hands each worker a contiguous row
    range, and reads the results back — whole requests per shard, so
    exact-mode shards preserve the per-curve gemm blocking (and hence
    bitwiseness) too.

    Flushes larger than ``capacity`` rows fall back to in-process
    inference (:meth:`infer` returns None).  Single-flight use is the
    owner's responsibility — the service's flush lock provides it.
    """

    def __init__(
        self,
        power_spec: InferenceSpec,
        time_spec: InferenceSpec,
        freqs_mhz: MHzArray,
        *,
        power_scale_w: Watts | None = None,
        n_shards: int = 2,
        fast: bool = True,
        capacity: int = 8192,
    ) -> None:
        if n_shards < 2:
            raise ValueError("a shard pool needs n_shards >= 2")
        if capacity < n_shards:
            raise ValueError("capacity must be >= n_shards")
        self.n_shards = n_shards
        self.capacity = capacity
        self._closed = False
        freqs = np.ascontiguousarray(freqs_mhz, dtype=float)
        f = freqs.size

        arrays = [_spec_arrays(power_spec), _spec_arrays(time_spec)]
        manifests: list[list[tuple[int, tuple[int, ...]]]] = [[], []]
        offset = 0
        for which, group in enumerate(arrays):
            for arr in group:
                manifests[which].append((offset, arr.shape))
                offset += arr.size
        self._weights_shm = shared_memory.SharedMemory(create=True, size=max(offset, 1) * 8)
        # Everything past the first block's creation runs under the
        # cleanup guard: a failed io-block allocation or worker spawn must
        # not leak the already-created /dev/shm segments.
        self._workers = []
        self._conns = []
        try:
            base = np.ndarray((offset,), dtype=np.float64, buffer=self._weights_shm.buf)
            cursor = 0
            for group in arrays:
                for arr in group:
                    flat = np.ascontiguousarray(arr, dtype=np.float64).reshape(-1)
                    base[cursor : cursor + flat.size] = flat
                    cursor += flat.size
            metas = (
                {
                    "log_target": power_spec.log_target,
                    "fingerprint": power_spec.fingerprint,
                    "acts": [act for _, _, act in power_spec.layers],
                },
                {
                    "log_target": time_spec.log_target,
                    "fingerprint": time_spec.fingerprint,
                    "acts": [act for _, _, act in time_spec.layers],
                },
            )

            io_elems = 2 * capacity + 2 * capacity * f
            self._io_shm = shared_memory.SharedMemory(create=True, size=io_elems * 8)
            io = np.ndarray((io_elems,), dtype=np.float64, buffer=self._io_shm.buf)
            self._fp_col = io[:capacity]
            self._dram_col = io[capacity : 2 * capacity]
            self._power_out = io[2 * capacity : 2 * capacity + capacity * f].reshape(capacity, f)
            self._unit_out = io[2 * capacity + capacity * f :].reshape(capacity, f)

            # fork shares the parent's page cache with zero pickling; fall
            # back to the platform default (spawn) where fork is unavailable.
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                ctx = multiprocessing.get_context()
            for _ in range(n_shards):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(
                        child_conn,
                        self._weights_shm.name,
                        self._io_shm.name,
                        tuple(manifests),
                        metas,
                        freqs,
                        None if power_scale_w is None else float(power_scale_w),
                        fast,
                        capacity,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._workers.append(proc)
                self._conns.append(parent_conn)
            for conn in self._conns:
                if conn.recv() != "ready":  # pragma: no cover - handshake guard
                    raise RuntimeError("shard worker failed to initialise")
        except BaseException:
            self.close()
            raise

    def infer(self, fp_active: np.ndarray, dram_active: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
        """Sharded curve matrices, or None when the flush exceeds capacity."""
        if self._closed:
            raise RuntimeError("shard pool is closed")
        n = fp_active.size
        if n > self.capacity:
            return None
        self._fp_col[:n] = fp_active
        self._dram_col[:n] = dram_active
        active = []
        for i, conn in enumerate(self._conns):
            start = i * n // self.n_shards
            stop = (i + 1) * n // self.n_shards
            if stop > start:
                conn.send((start, stop))
                active.append(conn)
        failure: Exception | None = None
        for conn in active:
            result = conn.recv()
            if isinstance(result, Exception) and failure is None:
                failure = result
        if failure is not None:
            raise failure
        return np.array(self._power_out[:n]), np.array(self._unit_out[:n])

    def close(self) -> None:
        """Stop the workers and release the shared-memory blocks."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._workers:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        for conn in self._conns:
            conn.close()
        # _io_shm does not exist yet when construction fails between the
        # two allocations — the cleanup guard still routes through here.
        for shm in (self._weights_shm, getattr(self, "_io_shm", None)):
            if shm is None:
                continue
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
