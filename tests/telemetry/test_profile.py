"""Profiler tests."""

import pytest

from repro.telemetry import Profiler
from repro.telemetry.fields import FIELDS
from repro.workloads import get_workload


class TestProfile:
    def test_profile_runs_at_current_clock(self, ga100):
        profiler = Profiler(ga100)
        ga100.set_sm_clock(900.0)
        record = profiler.profile(get_workload("stream"))
        assert record.freq_mhz == 900.0
        assert record.workload == "stream"

    def test_profile_with_size_override(self, ga100):
        profiler = Profiler(ga100)
        small = profiler.profile(get_workload("stream"), size=2048)
        large = profiler.profile(get_workload("stream"))
        assert small.exec_time_s < large.exec_time_s

    def test_rows_have_all_fields_plus_timestamp(self, ga100):
        profiler = Profiler(ga100)
        record = profiler.profile(get_workload("stream"))
        rows = profiler.samples_as_rows(record)
        assert len(rows) == len(record.samples)
        expected = {"timestamp_s", *(f.name for f in FIELDS)}
        assert set(rows[0]) == expected

    def test_timestamps_increase(self, ga100):
        profiler = Profiler(ga100)
        rows = profiler.samples_as_rows(profiler.profile(get_workload("stream")))
        stamps = [r["timestamp_s"] for r in rows]
        assert stamps == sorted(stamps)
        assert stamps[0] == pytest.approx(ga100.sampling_interval_s)

    def test_aggregate_matches_record_metrics(self, ga100):
        profiler = Profiler(ga100)
        record = profiler.profile(get_workload("stream"))
        assert profiler.aggregate(record) == record.metrics()
