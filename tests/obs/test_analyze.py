"""Trace analytics: tree reconstruction, attribution, flamegraphs, diffs.

Unit tests drive :mod:`repro.obs.analyze` on hand-built event lists
(where every expected number is exact) and on a *golden serving trace*:
a real traced flush of the tiny pipeline, whose reconstructed tree,
flamegraph export and run-diff must reflect the serving stage structure
pinned by the instrumentation (flush -> measure/lookup/predict/select).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.analyze import (
    attribution,
    build_span_forest,
    critical_path,
    diff_attribution,
    forest_from_file,
    render_attribution,
    render_critical_path,
    render_diff,
    to_collapsed,
    write_collapsed,
)

from tests.golden.tiny_pipeline import make_tiny_pipeline, train_tiny_models


def _span(name, span_id, parent_id, dur, *, ts=0.0, thread="MainThread", attrs=None):
    return {
        "type": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "thread": thread,
        "ts": ts,
        "dur_s": dur,
        "attrs": attrs or {},
    }


def _event(name, span_id, parent_id, *, thread="MainThread"):
    return {
        "type": "event",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "thread": thread,
        "ts": 0.0,
        "attrs": {},
    }


#: root(1.0s) -> a(0.6) -> leaf(0.2); root -> b(0.1); children close
#: before parents, exactly as the tracer emits them.
def _sample_events():
    return [
        _span("leaf", 3, 2, 0.2),
        _span("a", 2, 1, 0.6),
        _span("b", 4, 1, 0.1),
        _event("tick", 5, 1),
        _span("root", 1, None, 1.0),
    ]


class TestBuildForest:
    def test_reconstructs_nesting_despite_close_order(self):
        roots = build_span_forest(_sample_events())
        assert [r.name for r in roots] == ["root"]
        root = roots[0]
        assert [c.name for c in root.children] == ["a", "b", "tick"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_children_sorted_by_start_order(self):
        roots = build_span_forest(_sample_events())
        ids = [c.span_id for c in roots[0].children]
        assert ids == sorted(ids)

    def test_self_time_subtracts_span_children_only(self):
        root = build_span_forest(_sample_events())[0]
        # 1.0 - (0.6 + 0.1); the instant event owns no time.
        assert root.self_s == pytest.approx(0.3)
        a = root.children[0]
        assert a.self_s == pytest.approx(0.4)
        assert a.children[0].self_s == pytest.approx(0.2)

    def test_self_times_sum_to_root_cumulative(self):
        root = build_span_forest(_sample_events())[0]
        assert sum(n.self_s for n in root.walk()) == pytest.approx(root.dur_s, abs=1e-12)

    def test_orphaned_parent_promotes_to_root(self):
        # Ring eviction dropped span 1: its children must still analyze.
        events = [_span("leaf", 3, 2, 0.2), _span("a", 2, 1, 0.6)]
        roots = build_span_forest(events)
        assert [r.name for r in roots] == ["a"]
        assert [c.name for c in roots[0].children] == ["leaf"]

    def test_multiple_roots_ordered(self):
        events = [_span("x", 1, None, 0.1), _span("y", 2, None, 0.2)]
        assert [r.name for r in build_span_forest(events)] == ["x", "y"]

    def test_event_only_stream(self):
        roots = build_span_forest([_event("tick", 1, None)])
        assert roots[0].kind == "event"
        assert critical_path(roots) == []


class TestAttribution:
    def test_counts_and_totals(self):
        rows = attribution(build_span_forest(_sample_events()))
        assert rows["root"] == {
            "count": 1,
            "cum_s": pytest.approx(1.0),
            "self_s": pytest.approx(0.3),
            "max_cum_s": pytest.approx(1.0),
        }
        assert "tick" not in rows  # events own no time

    def test_repeated_names_aggregate(self):
        events = [
            _span("work", 2, 1, 0.25),
            _span("outer", 1, None, 0.5),
            _span("work", 4, 3, 0.75),
            _span("outer", 3, None, 1.0),
        ]
        rows = attribution(build_span_forest(events))
        assert rows["work"]["count"] == 2
        assert rows["work"]["cum_s"] == pytest.approx(1.0)
        assert rows["outer"]["self_s"] == pytest.approx(0.5)

    def test_render_ranks_by_self_time(self):
        text = render_attribution(build_span_forest(_sample_events()))
        assert text.index("a") < text.index("root") or text.index("leaf") < text.index("b")
        assert "self" in text.splitlines()[0]


class TestCriticalPath:
    def test_follows_heaviest_child(self):
        path = critical_path(build_span_forest(_sample_events()))
        assert [n.name for n in path] == ["root", "a", "leaf"]

    def test_picks_heaviest_root(self):
        events = [_span("small", 1, None, 0.1), _span("big", 2, None, 5.0)]
        assert [n.name for n in critical_path(build_span_forest(events))] == ["big"]

    def test_render_mentions_every_hop(self):
        text = render_critical_path(build_span_forest(_sample_events()))
        for name in ("root", "a", "leaf"):
            assert name in text


class TestCollapsed:
    def test_stacks_weighted_by_self_nanoseconds(self):
        lines = to_collapsed(build_span_forest(_sample_events())).splitlines()
        table = dict(line.rsplit(" ", 1) for line in lines)
        assert table["root"] == str(round(0.3 * 1e9))
        assert table["root;a"] == str(round(0.4 * 1e9))
        assert table["root;a;leaf"] == str(round(0.2 * 1e9))
        assert table["root;b"] == str(round(0.1 * 1e9))

    def test_identical_stacks_summed(self):
        events = [
            _span("work", 2, 1, 0.25),
            _span("work", 3, 1, 0.25),
            _span("outer", 1, None, 1.0),
        ]
        lines = to_collapsed(build_span_forest(events)).splitlines()
        table = dict(line.rsplit(" ", 1) for line in lines)
        assert table["outer;work"] == str(round(0.5 * 1e9))

    def test_negative_self_clamped_to_zero(self):
        # Timer granularity can make children sum past the parent.
        events = [_span("c", 2, 1, 0.6), _span("p", 1, None, 0.5)]
        table = dict(
            line.rsplit(" ", 1)
            for line in to_collapsed(build_span_forest(events)).splitlines()
        )
        assert table["p"] == "0"

    def test_write_collapsed_round_trips(self, tmp_path):
        out = write_collapsed(build_span_forest(_sample_events()), tmp_path / "fg.collapsed")
        assert out.read_text().strip().splitlines() == to_collapsed(
            build_span_forest(_sample_events())
        ).splitlines()


class TestDiff:
    def test_delta_table_sorted_by_self_movement(self):
        a = [_span("fast", 1, None, 0.1), _span("slow", 2, None, 1.0)]
        b = [_span("fast", 1, None, 0.1), _span("slow", 2, None, 3.0)]
        rows = diff_attribution(a, b)
        assert rows[0].name == "slow"
        assert rows[0].delta_self_s == pytest.approx(2.0)
        assert rows[0].cum_ratio == pytest.approx(3.0)
        assert rows[1].delta_self_s == pytest.approx(0.0)

    def test_span_only_in_one_run(self):
        rows = diff_attribution([], [_span("new", 1, None, 0.5)])
        assert rows[0].count_a == 0 and rows[0].count_b == 1
        assert rows[0].cum_ratio is None

    def test_render_text_and_markdown(self):
        a = [_span("phase", 1, None, 1.0)]
        b = [_span("phase", 1, None, 2.0)]
        rows = diff_attribution(a, b)
        assert "phase" in render_diff(rows)
        md = render_diff(rows, fmt="markdown")
        assert md.splitlines()[0].startswith("| span |")
        assert "`phase`" in md


# ----------------------------------------------------------------------
# Golden serving trace: a real traced flush analyzes end to end.
# ----------------------------------------------------------------------
_STAGES = ("serving.measure", "serving.lookup", "serving.predict", "serving.select")


@pytest.fixture(scope="module")
def pipeline():
    return make_tiny_pipeline(train_tiny_models())


def _traced_flush(pipeline, requests):
    from repro.serving import SelectionService

    tracer = obs.configure(ring_size=65536)
    try:
        SelectionService(pipeline, max_batch_size=64).select_many(requests)
        return tracer.events()
    finally:
        obs.disable()


def _feature_requests(n, seed):
    import numpy as np

    from repro.core.dataset import FeatureVector
    from repro.serving import SelectionRequest

    rng = np.random.default_rng(seed)
    return [
        SelectionRequest.from_features(
            FeatureVector(float(rng.uniform(0.1, 0.9)), float(rng.uniform(0.1, 0.9)), 1410.0),
            float(rng.uniform(0.5, 10.0)),
            name=f"app-{i}",
        )
        for i in range(n)
    ]


class TestGoldenServingTrace:
    def test_flush_tree_has_stage_children_with_attrs(self, pipeline):
        events = _traced_flush(pipeline, _feature_requests(8, seed=7))
        roots = build_span_forest(events)
        flushes = [r for r in roots if r.name == "serving.flush"]
        assert len(flushes) == 1
        flush = flushes[0]
        assert [c.name for c in flush.children] == list(_STAGES)
        assert flush.attrs["batch"] == 8
        assert flush.attrs["engine"] == "exact"
        assert flush.attrs["unique"] == flush.attrs["hits"] + flush.attrs["curves_computed"]
        predict = flush.children[2]
        assert predict.attrs["misses"] == flush.attrs["curves_computed"]
        # Stage times nest inside the flush: self + children == cum.
        assert sum(n.self_s for n in flush.walk()) == pytest.approx(flush.dur_s, abs=1e-9)

    def test_flamegraph_export_contains_stage_stacks(self, pipeline, tmp_path):
        events = _traced_flush(pipeline, _feature_requests(8, seed=7))
        out = write_collapsed(build_span_forest(events), tmp_path / "serving.collapsed")
        stacks = {line.rsplit(" ", 1)[0] for line in out.read_text().splitlines() if line}
        for stage in _STAGES:
            assert f"serving.flush;{stage}" in stacks
        # Every weight is a non-negative integer (flamegraph.pl contract).
        for line in out.read_text().splitlines():
            if line:
                assert int(line.rsplit(" ", 1)[1]) >= 0

    def test_diff_of_cold_vs_hot_flush_shows_predict_drop(self, pipeline):
        cold = _traced_flush(pipeline, _feature_requests(8, seed=7))
        # Same service would be hot; a fresh one re-run on *repeated*
        # requests dedups to one curve, so predict work collapses.
        hot = _traced_flush(pipeline, _feature_requests(1, seed=7) * 8)
        rows = {r.name: r for r in diff_attribution(cold, hot)}
        assert rows["serving.flush"].count_a == rows["serving.flush"].count_b == 1
        cold_misses = rows["serving.predict"]
        assert cold_misses.count_a == cold_misses.count_b == 1

    def test_cli_trace_file_round_trip(self, pipeline, tmp_path):
        from repro.serving import SelectionService

        trace = tmp_path / "t.jsonl"
        obs.configure(trace)
        try:
            SelectionService(pipeline, max_batch_size=64).select_many(
                _feature_requests(4, seed=3)
            )
        finally:
            obs.disable()
        forest = forest_from_file(trace)
        assert [n.name for n in critical_path(forest)][0] == "serving.flush"
