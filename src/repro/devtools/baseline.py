"""Committed baseline of grandfathered findings.

A baseline entry matches findings on ``(rule, path, message)`` — never
the line number, so unrelated edits that shift code do not invalidate
it.  Matching is multiset-style: two identical entries grandfather two
identical findings, a third one is live.  Entries that no longer match
anything are reported as *stale* so the file shrinks over time instead
of accreting.

Every entry carries a ``justification``; the gate test refuses entries
without one, which is what makes the baseline a reviewed decision record
rather than a mute button.  A top-level ``rule_justifications`` map can
supply a shared justification for every entry of one rule (e.g. a
blanket rationale for grandfathering THR002 in a legacy package) so the
per-entry field only has to be written when an entry needs its own
story.
"""

from __future__ import annotations

import json
from collections import Counter as _Counter
from dataclasses import dataclass
from pathlib import Path

from repro.devtools.findings import Finding

__all__ = ["Baseline", "BaselineEntry"]

_SCHEMA = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding with its review justification."""

    rule: str
    path: str
    message: str
    #: Line at the time the entry was written; informational only.
    line: int = 0
    justification: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "justification": self.justification,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BaselineEntry":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            message=str(payload["message"]),
            line=int(payload.get("line", 0)),
            justification=str(payload.get("justification", "")),
        )

    @classmethod
    def from_finding(cls, finding: Finding, justification: str = "") -> "BaselineEntry":
        return cls(
            rule=finding.rule_id,
            path=finding.path,
            message=finding.message,
            line=finding.line,
            justification=justification,
        )


class Baseline:
    """Ordered collection of :class:`BaselineEntry` with multiset matching."""

    def __init__(
        self,
        entries: list[BaselineEntry] | tuple[BaselineEntry, ...] = (),
        rule_justifications: dict[str, str] | None = None,
    ) -> None:
        self.entries = list(entries)
        #: Rule-id -> shared justification, used when an entry's own
        #: ``justification`` field is blank.
        self.rule_justifications = dict(rule_justifications or {})

    def __len__(self) -> int:
        return len(self.entries)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Baseline)
            and self.entries == other.entries
            and self.rule_justifications == other.rule_justifications
        )

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Baseline from disk; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema") != _SCHEMA:
            raise ValueError(f"unsupported baseline schema: {payload.get('schema')!r}")
        rule_justifications = {
            str(rule): str(text)
            for rule, text in payload.get("rule_justifications", {}).items()
        }
        return cls(
            [BaselineEntry.from_dict(entry) for entry in payload.get("entries", [])],
            rule_justifications=rule_justifications,
        )

    def save(self, path: Path | str) -> None:
        """Write the baseline (stable ordering, trailing newline)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        ordered = sorted(self.entries, key=lambda e: (e.path, e.rule, e.line, e.message))
        payload: dict = {"schema": _SCHEMA, "entries": [entry.to_dict() for entry in ordered]}
        if self.rule_justifications:
            payload["rule_justifications"] = dict(sorted(self.rule_justifications.items()))
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # ------------------------------------------------------------------
    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split findings into (live, baselined); also return stale entries.

        Each entry grandfathers at most one finding with the same
        ``(rule, path, message)``; leftovers on either side stay live /
        go stale respectively.
        """
        budget = _Counter(entry.key() for entry in self.entries)
        live: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = finding.key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                live.append(finding)
        stale: list[BaselineEntry] = []
        remaining = dict(budget)
        for entry in self.entries:
            key = entry.key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                stale.append(entry)
        return live, baselined, stale

    @classmethod
    def from_findings(
        cls, findings: list[Finding], *, justification: str = "grandfathered"
    ) -> "Baseline":
        """Baseline covering exactly ``findings`` (for ``--update-baseline``)."""
        return cls([BaselineEntry.from_finding(f, justification) for f in findings])

    def justification_for(self, finding: Finding) -> str | None:
        """Justification text of the first entry matching ``finding``.

        Falls back to the rule-level justification when the matching
        entry does not carry its own.
        """
        for entry in self.entries:
            if entry.key() == finding.key():
                return self.effective_justification(entry)
        return None

    def effective_justification(self, entry: BaselineEntry) -> str:
        """Entry's own justification, or its rule's shared one."""
        if entry.justification.strip():
            return entry.justification
        return self.rule_justifications.get(entry.rule, "")
