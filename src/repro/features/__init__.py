"""Feature characterisation: mutual information, ranking, scaling.

Implements the paper's Section 4.2 pipeline: a Kraskov-Stögbauer-
Grassberger k-NN mutual-information estimator (the same estimator family
scikit-learn's ``mutual_info_regression`` uses, per the paper's citations
[22, 35]), feature ranking against the two predictands, and the scalers
the models train with.
"""

from repro.features.mutual_info import mutual_information, mutual_information_matrix
from repro.features.scaling import MinMaxScaler, StandardScaler
from repro.features.selection import FeatureRanking, rank_features, select_top_k

__all__ = [
    "mutual_information",
    "mutual_information_matrix",
    "StandardScaler",
    "MinMaxScaler",
    "FeatureRanking",
    "rank_features",
    "select_top_k",
]
