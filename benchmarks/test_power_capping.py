"""Power-cap study bench.

Shape assertions: predicted under-cap clock picks honour the cap on the
*measured* power curves within sensor-noise tolerance; tighter caps give
monotonically lower clocks and larger slowdowns.
"""

import pytest

from repro.experiments.capping_study import CAP_FRACTIONS, render_capping_study, run_capping_study


@pytest.fixture(scope="module")
def study(ctx, suite):
    return run_capping_study(ctx, suite=suite)


def test_capping_report(benchmark, study, report):
    benchmark(render_capping_study, study)
    report("Power-cap study", render_capping_study(study))


def test_caps_honoured_on_measured_power(study):
    """With the 10% guard band, measured draw must stay at or under the
    raw cap up to residual model error (bounded at 5% of the cap)."""
    for row in study.rows:
        assert row.cap_violation_w <= 0.05 * row.cap_w, (row.app, row.cap_w)


def test_tighter_caps_lower_clocks(study):
    apps = {r.app for r in study.rows}
    caps = sorted({r.cap_w for r in study.rows}, reverse=True)
    for app in apps:
        freqs = [next(r.freq_mhz for r in study.rows if r.app == app and r.cap_w == c) for c in caps]
        assert freqs == sorted(freqs, reverse=True), app


def test_three_cap_levels(study):
    assert len({r.cap_w for r in study.rows}) == len(CAP_FRACTIONS)
