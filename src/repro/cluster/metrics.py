"""Schedule accounting: makespan, energy, power series."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.job import JobRecord

__all__ = ["ClusterReport", "summarize", "power_series"]


@dataclass(frozen=True)
class ClusterReport:
    """Aggregate metrics of one completed schedule."""

    policy: str
    n_jobs: int
    makespan_s: float
    total_energy_j: float
    mean_job_wait_s: float
    #: Time-averaged busy power across the schedule (total energy over
    #: makespan; idle draw excluded — it is policy-independent).
    avg_power_w: float
    peak_power_w: float

    def energy_saving_vs(self, baseline: "ClusterReport") -> float:
        """Fractional energy saving relative to a baseline report."""
        if baseline.total_energy_j <= 0:
            raise ValueError("baseline has no energy")
        return 1.0 - self.total_energy_j / baseline.total_energy_j

    def makespan_change_vs(self, baseline: "ClusterReport") -> float:
        """Fractional makespan change (positive = slower) vs a baseline."""
        if baseline.makespan_s <= 0:
            raise ValueError("baseline has no makespan")
        return self.makespan_s / baseline.makespan_s - 1.0


def power_series(
    records: list[JobRecord], *, resolution_s: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """(timestamps, aggregate busy power) sampled on a fixed grid.

    Bin ``i`` covers ``[t[i], t[i] + resolution_s)`` and reports the
    mean power the facility meter would integrate over that window:
    each job deposits ``energy_j × overlap/duration`` into every bin it
    overlaps, so the series integral (``sum(p) * resolution_s``) equals
    total job energy regardless of how jobs straddle bin boundaries.
    Zero-duration jobs deposit their whole energy as an impulse into
    the bin containing their start.  An empty record list yields two
    empty arrays.
    """
    if resolution_s <= 0:
        raise ValueError("resolution_s must be positive")
    if not records:
        return np.zeros(0), np.zeros(0)
    end = max(r.end_s for r in records)
    t = np.arange(0.0, end + resolution_s, resolution_s)
    p = np.zeros_like(t)
    last = len(t) - 1
    for r in records:
        duration = r.end_s - r.start_s
        first_bin = min(last, max(0, int(r.start_s / resolution_s)))
        if duration <= 0:
            p[first_bin] += r.energy_j / resolution_s
            continue
        last_bin = min(last, max(0, int(np.ceil(r.end_s / resolution_s)) - 1))
        for b in range(first_bin, last_bin + 1):
            lo = b * resolution_s
            overlap = min(r.end_s, lo + resolution_s) - max(r.start_s, lo)
            if overlap > 0:
                p[b] += r.energy_j * (overlap / duration) / resolution_s
    return t, p


def summarize(policy_name: str, records: list[JobRecord]) -> ClusterReport:
    """Build the aggregate report for one schedule.

    An empty record list summarises to an all-zero report (a campaign
    that scheduled nothing), so callers can aggregate per-window or
    per-node slices without special-casing quiet slices.
    """
    if not records:
        return ClusterReport(
            policy=policy_name,
            n_jobs=0,
            makespan_s=0.0,
            total_energy_j=0.0,
            mean_job_wait_s=0.0,
            avg_power_w=0.0,
            peak_power_w=0.0,
        )
    makespan = max(r.end_s for r in records)
    energy = sum(r.energy_j for r in records)
    _, series = power_series(records)
    return ClusterReport(
        policy=policy_name,
        n_jobs=len(records),
        makespan_s=makespan,
        total_energy_j=energy,
        mean_job_wait_s=float(np.mean([r.wait_s for r in records])),
        avg_power_w=energy / makespan if makespan > 0 else 0.0,
        peak_power_w=float(series.max()) if series.size else 0.0,
    )
