"""Power/time model wrapper tests (paper hyper-parameters, scaling, IO)."""

import numpy as np
import pytest

from repro.core import FeatureVector, PowerModel, TimeModel, build_dataset
from repro.telemetry import LaunchConfig, Launcher
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def small_dataset():
    from repro.gpusim import GA100, SimulatedGPU

    dev = SimulatedGPU(GA100, seed=5, max_samples_per_run=4)
    launcher = Launcher(dev)
    freqs = tuple(dev.dvfs.usable_array()[::6])
    config = LaunchConfig(freqs_mhz=freqs, runs_per_config=1)
    workloads = [get_workload(n) for n in ("dgemm", "stream", "spmv", "lud", "fft")]
    artifacts = launcher.collect(workloads, config)
    return build_dataset(artifacts, per_sample=True)


class TestPaperHyperparameters:
    def test_power_model_epochs_100(self):
        assert PowerModel.epochs == 100

    def test_time_model_epochs_25(self):
        assert TimeModel.epochs == 25

    def test_hidden_architecture(self, small_dataset):
        m = PowerModel(seed=0)
        m.fit(small_dataset, epochs=1)
        assert [l.out_features for l in m.network.layers] == [64, 64, 64, 1]
        assert all(l.activation.name == "selu" for l in m.network.layers[:-1])


class TestPowerModel:
    def test_fit_and_predict_positive(self, small_dataset):
        m = PowerModel(seed=0)
        m.fit(small_dataset, epochs=30)
        pred = m.predict_power(FeatureVector(0.8, 0.3, 1410.0), np.array([510.0, 1410.0]))
        assert np.all(pred > 0)

    def test_power_increases_with_clock(self, small_dataset):
        m = PowerModel(seed=0)
        m.fit(small_dataset, epochs=60)
        freqs = np.linspace(510.0, 1410.0, 10)
        pred = m.predict_power(FeatureVector(0.85, 0.3, 1410.0), freqs)
        assert pred[-1] > pred[0]

    def test_training_fit_quality(self, small_dataset):
        from repro.core import mape

        m = PowerModel(seed=0)
        m.fit(small_dataset)
        pred = m.predict_raw(small_dataset.x)
        assert mape(small_dataset.y_power, pred) < 10.0

    def test_tdp_normalised_rescaling(self, small_dataset):
        m = PowerModel(reference_power_w=500.0, seed=0)
        m.fit(small_dataset, epochs=20)
        fv = FeatureVector(0.8, 0.3, 1410.0)
        freqs = np.array([1005.0])
        native = m.predict_power(fv, freqs)
        rescaled = m.predict_power(fv, freqs, target_power_scale_w=250.0)
        assert rescaled[0] == pytest.approx(0.5 * native[0])

    def test_absolute_model_rejects_rescale(self, small_dataset):
        m = PowerModel(seed=0)
        m.fit(small_dataset, epochs=5)
        with pytest.raises(ValueError, match="absolute watts"):
            m.predict_power(FeatureVector(0.8, 0.3, 1410.0), np.array([1005.0]), target_power_scale_w=250.0)

    def test_invalid_reference_rejected(self):
        with pytest.raises(ValueError, match="reference_power_w"):
            PowerModel(reference_power_w=0.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            PowerModel().predict_raw(np.zeros((1, 3)))


class TestTimeModel:
    def test_relative_target_needs_time_at_max(self, small_dataset):
        m = TimeModel(seed=0)
        m.fit(small_dataset, epochs=5)
        with pytest.raises(ValueError, match="time_at_max_s"):
            m.predict_time(FeatureVector(0.8, 0.3, 1410.0), np.array([1005.0]))

    def test_relative_prediction_scales(self, small_dataset):
        m = TimeModel(seed=0)
        m.fit(small_dataset, epochs=25)
        fv = FeatureVector(0.85, 0.3, 1410.0)
        freqs = np.array([510.0, 1410.0])
        t10 = m.predict_time(fv, freqs, time_at_max_s=10.0)
        t20 = m.predict_time(fv, freqs, time_at_max_s=20.0)
        assert np.allclose(t20, 2.0 * t10)

    def test_slowdown_near_unity_at_fmax(self, small_dataset):
        m = TimeModel(seed=0)
        m.fit(small_dataset)
        slow = m.predict_slowdown(FeatureVector(0.85, 0.3, 1410.0), np.array([1410.0]))
        assert slow[0] == pytest.approx(1.0, abs=0.12)

    def test_time_increases_at_low_clock(self, small_dataset):
        m = TimeModel(seed=0)
        m.fit(small_dataset)
        slow = m.predict_slowdown(FeatureVector(0.85, 0.3, 1410.0), np.array([510.0, 1410.0]))
        assert slow[0] > slow[1]

    def test_absolute_target_mode(self, small_dataset):
        m = TimeModel(target="absolute", seed=0)
        m.fit(small_dataset, epochs=10)
        t = m.predict_time(FeatureVector(0.85, 0.3, 1410.0), np.array([1005.0]))
        assert t[0] > 0

    def test_absolute_mode_rejects_slowdown(self, small_dataset):
        m = TimeModel(target="absolute", seed=0)
        m.fit(small_dataset, epochs=5)
        with pytest.raises(RuntimeError, match="relative"):
            m.predict_slowdown(FeatureVector(0.8, 0.3, 1410.0), np.array([1005.0]))

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            TimeModel(target="bogus")


class TestSerialisation:
    def test_save_load_roundtrip(self, small_dataset, tmp_path):
        m = PowerModel(reference_power_w=500.0, seed=0)
        m.fit(small_dataset, epochs=10)
        fv = FeatureVector(0.8, 0.3, 1410.0)
        freqs = np.linspace(510, 1410, 7)
        expected = m.predict_power(fv, freqs)
        path = m.save(tmp_path / "power.npz")

        loaded = PowerModel(reference_power_w=500.0)
        loaded.load(path)
        assert np.allclose(loaded.predict_power(fv, freqs), expected)

    def test_save_before_fit_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="save"):
            PowerModel().save(tmp_path / "x.npz")
