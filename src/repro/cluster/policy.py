"""Per-job clock policies.

A policy maps (job, device) to the SM clock the job should run at.  The
three built-ins cover the operational spectrum:

* :class:`DefaultClockPolicy` — boost clock, the status quo,
* :class:`StaticClockPolicy` — one site-wide cap (the blunt instrument),
* :class:`ModelDrivenPolicy` — the paper's method: per-job ED2P/EDP
  selection from the trained DNNs, with decisions memoised per workload
  (an application's clock is decided once, as a site would),
* :class:`ServiceDrivenPolicy` — the same decisions asked of a shared
  :class:`~repro.serving.service.SelectionService`: the scheduler's
  ``prepare`` hook batches every distinct application into one service
  flush instead of running one pipeline prediction per first-job.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.energy import ED2P, ObjectiveFunction
from repro.core.pipeline import FrequencySelectionPipeline
from repro.cluster.job import Job
from repro.gpusim.device import SimulatedGPU
from repro.units import MHz, MHzArray, Seconds, SecondsArray, Watts, WattsArray

__all__ = [
    "ClockDecision",
    "ClockPolicy",
    "DefaultClockPolicy",
    "StaticClockPolicy",
    "ModelDrivenPolicy",
    "ServiceDrivenPolicy",
]


@dataclass(frozen=True)
class ClockDecision:
    """One placement decision, optionally with its predicted curves.

    ``clock_mhz`` is all a plain policy produces.  Model-backed policies
    additionally expose the predicted power/time curves over the design
    space so admission control (facility power capping) can re-derive a
    slower admissible clock without another model inference.
    """

    clock_mhz: MHz
    freqs_mhz: MHzArray | None = None
    power_curve_w: WattsArray | None = None
    time_curve_s: SecondsArray | None = None
    #: Predicted board power / exec time at ``clock_mhz`` (None when the
    #: policy has no model behind it).
    predicted_power_w: Watts | None = None
    predicted_time_s: Seconds | None = None
    #: True when an admission controller lowered the policy's clock.
    capped: bool = False

    def at_clock(self, clock_mhz: float, *, capped: bool = False) -> "ClockDecision":
        """This decision re-pinned to another clock on the same curves."""
        power = time = None
        if self.freqs_mhz is not None:
            idx = int(np.argmin(np.abs(np.asarray(self.freqs_mhz) - clock_mhz)))
            if self.power_curve_w is not None:
                power = float(np.asarray(self.power_curve_w)[idx])
            if self.time_curve_s is not None:
                time = float(np.asarray(self.time_curve_s)[idx])
        return ClockDecision(
            clock_mhz=clock_mhz,
            freqs_mhz=self.freqs_mhz,
            power_curve_w=self.power_curve_w,
            time_curve_s=self.time_curve_s,
            predicted_power_w=power,
            predicted_time_s=time,
            capped=capped,
        )


class ClockPolicy(ABC):
    """Chooses the SM clock a job runs at."""

    name: str = "abstract"

    def prepare(self, jobs: list[Job]) -> None:
        """Optional batch warm-up before placement starts.

        The scheduler calls this once with the jobs in placement order;
        policies that can decide many applications at once (the serving
        layer) override it.  The default is a no-op.
        """

    @abstractmethod
    def clock_for(self, job: Job, device: SimulatedGPU) -> float:
        """SM clock (MHz) for ``job`` on ``device``."""

    def decide(self, job: Job, device: SimulatedGPU) -> ClockDecision:
        """Full placement decision for ``job`` on ``device``.

        The default wraps :meth:`clock_for`; model-backed policies
        override it to attach predicted curves for admission control.
        """
        return ClockDecision(clock_mhz=self.clock_for(job, device))


class DefaultClockPolicy(ClockPolicy):
    """Run everything at the boost clock (the no-DVFS baseline)."""

    name = "default-clock"

    def clock_for(self, job: Job, device: SimulatedGPU) -> float:
        return device.arch.default_core_freq_mhz


class StaticClockPolicy(ClockPolicy):
    """One fixed clock for every job (a site-wide static cap)."""

    name = "static-cap"

    def __init__(self, clock_mhz: float) -> None:
        if clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        self.clock_mhz = float(clock_mhz)

    def clock_for(self, job: Job, device: SimulatedGPU) -> float:
        return device.dvfs.snap(self.clock_mhz)


class ModelDrivenPolicy(ClockPolicy):
    """The paper's method as a scheduler policy.

    The first job of each workload triggers one online-phase prediction
    on the pipeline's device; the selected clock is memoised so later
    jobs of the same application reuse it (profiles are per-application,
    not per-job — exactly how a site would deploy this).
    """

    name = "model-driven"

    def __init__(
        self,
        pipeline: FrequencySelectionPipeline,
        *,
        objective: ObjectiveFunction = ED2P,
        threshold: float | None = None,
    ) -> None:
        if not pipeline.is_fitted:
            raise ValueError("pipeline must be fitted before building a policy")
        self.pipeline = pipeline
        self.objective = objective
        self.threshold = threshold
        self._decisions: dict[str, float] = {}

    def clock_for(self, job: Job, device: SimulatedGPU) -> float:
        key = job.workload.name
        if key not in self._decisions:
            result = self.pipeline.run_online(
                job.workload,
                objectives=(self.objective,),
                threshold=self.threshold,
                size=job.size,
            )
            self._decisions[key] = result.selection(self.objective.name).freq_mhz
        return device.dvfs.snap(self._decisions[key])

    @property
    def decisions(self) -> dict[str, float]:
        """Memoised per-application clock decisions (MHz)."""
        return dict(self._decisions)


class ServiceDrivenPolicy(ClockPolicy):
    """Clock decisions served by a shared :class:`SelectionService`.

    Operationally identical to :class:`ModelDrivenPolicy` — one decision
    per application, memoised — but the decision path goes through the
    serving layer: :meth:`prepare` profiles every distinct application
    in placement order and predicts all of them in one batched flush,
    and any application first seen mid-run falls back to a single-request
    flush.  Several schedulers (or nodes) can share one service and its
    warm curve cache.
    """

    name = "service-driven"

    def __init__(
        self,
        service,
        *,
        objective: ObjectiveFunction = ED2P,
        threshold: float | None = None,
    ) -> None:
        self.service = service
        self.objective = objective
        self.threshold = threshold
        self._decisions: dict[str, float] = {}
        self._responses: dict[str, object] = {}

    def _request_for(self, job: Job):
        from repro.serving.service import SelectionRequest

        return SelectionRequest.from_workload(job.workload, size=job.size)

    def _record(self, name: str, response) -> None:
        self._decisions[name] = response.selection(self.objective.name).freq_mhz
        self._responses[name] = response

    def prepare(self, jobs: list[Job]) -> None:
        """Batch-decide every distinct application before placement.

        Uses each application's *first* job (mirroring
        :class:`ModelDrivenPolicy`, which decides on first arrival), so
        measurement order on the service's device — and therefore every
        decision — matches the sequential policy exactly.
        """
        first_jobs: dict[str, Job] = {}
        for job in jobs:
            first_jobs.setdefault(job.workload.name, job)
        pending = [job for name, job in first_jobs.items() if name not in self._decisions]
        if not pending:
            return
        responses = self.service.select_many(
            [self._request_for(job) for job in pending],
            objectives=(self.objective,),
            threshold=self.threshold,
        )
        for job, response in zip(pending, responses):
            self._record(job.workload.name, response)

    def clock_for(self, job: Job, device: SimulatedGPU) -> float:
        key = job.workload.name
        if key not in self._decisions:
            response = self.service.select_one(
                self._request_for(job),
                objectives=(self.objective,),
                threshold=self.threshold,
            )
            self._record(key, response)
        return device.dvfs.snap(self._decisions[key])

    def decide(self, job: Job, device: SimulatedGPU) -> ClockDecision:
        """Decision with the predicted curves attached (for capping)."""
        clock = self.clock_for(job, device)
        response = self._responses[job.workload.name]
        return ClockDecision(
            clock_mhz=clock,
            freqs_mhz=response.freqs_mhz,
            power_curve_w=response.power_w,
            time_curve_s=response.time_s,
        ).at_clock(clock)

    @property
    def decisions(self) -> dict[str, float]:
        """Memoised per-application clock decisions (MHz)."""
        return dict(self._decisions)
