"""Serving-layer throughput benchmark.

Times flushes of ``N_REQUESTS`` selection requests through
:class:`repro.serving.SelectionService` against the pre-PR path — a
sequential per-request predict+select loop (what ``run_online`` does per
application) — and records per-scenario throughput in
``BENCH_serving.json`` at the repo root.

Scenarios (every service is long-lived; "cold" means an empty curve
cache via :meth:`~repro.serving.SelectionService.clear_cache`, not a
fresh process):

* **cold** — 2048 distinct profiles, empty cache, fused engine: the
  packed fast path doing 2048 * 2 full DNN curves per flush.  Carries
  the PR's >= 3x acceptance bar against the sequential loop.
* **cold_exact** — same flush through the default bitwise-exact engine.
* **hot / hot_d64 / hot_d256** — 2048 requests with 8 / 64 / 256
  distinct applications, cache cleared per flush: intra-flush dedup
  computes only the distinct curves.  ``hot`` (8 distinct, the
  realistic datacenter mix — most submissions are re-runs) carries the
  >= 60k selections/s acceptance bar.
* **cached** — the hot mix again on a warm LRU: no DNN forward at all.
* **fused** — engine-only microbench: one
  :meth:`~repro.serving.engine.FusedInferenceEngine.infer` pass over
  2048 distinct profiles (both models), no service stages around it.

Each scenario keeps a ``best`` record (highest selections/s ever
committed for the current config) next to ``current``;
``repro report --gate`` fails CI when a committed ``current`` drops
more than 10% below its ``best``.  Throughput numbers are
machine-dependent; the in-test ``REGRESSION_FACTOR`` guard is
deliberately looser so the benchmark stays runnable on slower hosts.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:  # tests.golden holds the tiny-pipeline config
    sys.path.insert(0, str(_REPO_ROOT))

import numpy as np
import pytest

from repro.core.energy import ED2P, EDP, energy_from_power_time
from repro.core.dataset import FeatureVector
from repro.core.selection import select_optimal_frequency
from repro.serving import SelectionRequest, SelectionService

from tests.golden.tiny_pipeline import make_tiny_pipeline, train_tiny_models

BENCH_PATH = _REPO_ROOT / "BENCH_serving.json"

N_REQUESTS = 2048
N_DISTINCT_HOT = 8
HOT_SWEEP = (64, 256)
#: Acceptance bars: fused cold flush vs the sequential loop, and
#: absolute hot-mix throughput.
COLD_SPEEDUP_BAR = 3.0
HOT_SELECTIONS_PER_S_BAR = 60_000.0
SPEEDUP_BAR = 5.0
#: Fail when throughput drops more than this factor below the best record.
REGRESSION_FACTOR = 3.0


@pytest.fixture(scope="module")
def pipeline():
    return make_tiny_pipeline(train_tiny_models())


def _profiles(n_distinct: int) -> list[SelectionRequest]:
    """Deterministic pre-profiled requests spread over the feature plane."""
    rng = np.random.default_rng(42)
    requests = []
    for i in range(n_distinct):
        fv = FeatureVector(
            float(rng.uniform(0.05, 0.95)), float(rng.uniform(0.05, 0.95)), 1410.0
        )
        requests.append(
            SelectionRequest.from_features(
                fv, float(rng.uniform(0.5, 20.0)), name=f"app-{i}"
            )
        )
    return requests


def _mix(n_distinct: int) -> list[SelectionRequest]:
    """N_REQUESTS requests drawn from ``n_distinct`` distinct profiles."""
    distinct = _profiles(n_distinct)
    return (distinct * (N_REQUESTS // n_distinct + 1))[:N_REQUESTS]


def _sequential_select(pipeline, requests) -> list[dict]:
    """The pre-PR path: run_online's predict+select stages, one at a time."""
    freqs = pipeline.device.dvfs.usable_array()
    scale = pipeline.device.arch.tdp_watts
    out = []
    for req in requests:
        power = pipeline.power_model.predict_power(
            req.features, freqs, target_power_scale_w=scale
        )
        time_s = pipeline.time_model.predict_time(
            req.features, freqs, time_at_max_s=req.time_at_max_s
        )
        energy = energy_from_power_time(power, time_s)
        out.append(
            {
                obj.name: select_optimal_frequency(freqs, energy, time_s, objective=obj)
                for obj in (EDP, ED2P)
            }
        )
    return out


def _best_of(fn, repeats: int = 5) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _throughput(seconds: float) -> float:
    return round(N_REQUESTS / seconds, 1)


def _measure_all(pipeline) -> dict:
    cold_requests = _profiles(N_REQUESTS)
    hot_requests = _mix(N_DISTINCT_HOT)

    seq_s = _best_of(lambda: _sequential_select(pipeline, hot_requests), repeats=3)

    fused_svc = SelectionService(pipeline, max_batch_size=N_REQUESTS, fused=True)
    exact_svc = SelectionService(pipeline, max_batch_size=N_REQUESTS)

    def timed_flush(svc, requests):
        def run():
            svc.clear_cache()
            svc.select_many(requests)

        return _best_of(run)

    elapsed = {
        "cold": timed_flush(fused_svc, cold_requests),
        "cold_exact": timed_flush(exact_svc, cold_requests),
        "hot": timed_flush(fused_svc, hot_requests),
    }
    for n_distinct in HOT_SWEEP:
        elapsed[f"hot_d{n_distinct}"] = timed_flush(fused_svc, _mix(n_distinct))

    fused_svc.clear_cache()
    fused_svc.select_many(hot_requests)  # prime the LRU
    elapsed["cached"] = _best_of(lambda: fused_svc.select_many(hot_requests))

    # Engine-only: both packed DNNs over 2048 distinct profiles, no
    # service stages (lookup/select/response construction) around them.
    engine = fused_svc._engine
    fp = np.array([r.features.fp_active for r in cold_requests])
    dram = np.array([r.features.dram_active for r in cold_requests])
    elapsed["fused"] = _best_of(lambda: engine.infer(fp, dram))

    sequential = {"seconds": round(seq_s, 6), "selections_per_s": _throughput(seq_s)}
    scenarios = {}
    for name, secs in elapsed.items():
        scenarios[name] = {
            "seconds": round(secs, 6),
            "selections_per_s": _throughput(secs),
            "speedup_vs_sequential": round(seq_s / secs, 2),
        }
    return {"sequential": sequential, "scenarios": scenarios}


def test_serving_throughput_tracked(pipeline):
    """Record the serving perf trajectory and enforce the acceptance bars."""
    # Correctness sanity before timing: the batched flush must agree with
    # the sequential loop decision-for-decision (the full bitwise and
    # 1e-9 fused contracts are asserted in tests/serving).
    hot_requests = _mix(N_DISTINCT_HOT)
    expected = _sequential_select(pipeline, hot_requests)
    responses = SelectionService(pipeline, max_batch_size=N_REQUESTS).select_many(
        hot_requests
    )
    for response, want in zip(responses, expected):
        for obj_name, sel in want.items():
            assert response.selection(obj_name).freq_mhz == sel.freq_mhz
            assert response.selection(obj_name).index == sel.index

    previous = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    config = {
        "n_requests": N_REQUESTS,
        "n_distinct_hot": N_DISTINCT_HOT,
        "hot_sweep": list(HOT_SWEEP),
        "objectives": ["EDP", "ED2P"],
        "cold_speedup_bar": COLD_SPEEDUP_BAR,
        "hot_selections_per_s_bar": HOT_SELECTIONS_PER_S_BAR,
    }
    # Best records only carry forward within one benchmark config — a
    # changed flush size/mix resets the trajectory.
    same_config = previous.get("config") == config
    previous_scenarios = previous.get("scenarios", {}) if same_config else {}

    measured = _measure_all(pipeline)
    scenarios = {}
    for name, current in measured["scenarios"].items():
        best = previous_scenarios.get(name, {}).get("best")
        if best is None or current["selections_per_s"] > best["selections_per_s"]:
            best = {k: current[k] for k in ("seconds", "selections_per_s")}
        scenarios[name] = {**current, "best": best}

    payload = {
        "bench": "serving-batch-throughput",
        "config": config,
        # The pre-PR path is the sequential per-request loop itself.
        "pre_pr_baseline": (previous.get("pre_pr_baseline") if same_config else None)
        or measured["sequential"],
        "sequential": measured["sequential"],
        "scenarios": scenarios,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    cold = scenarios["cold"]
    assert cold["speedup_vs_sequential"] >= COLD_SPEEDUP_BAR, (
        f"fused cold-flush speedup {cold['speedup_vs_sequential']:.2f}x is below the "
        f"{COLD_SPEEDUP_BAR:.0f}x acceptance bar (sequential "
        f"{measured['sequential']['selections_per_s']:.0f} vs cold "
        f"{cold['selections_per_s']:.0f} selections/s)"
    )
    hot = scenarios["hot"]
    assert hot["selections_per_s"] >= HOT_SELECTIONS_PER_S_BAR, (
        f"hot-mix throughput {hot['selections_per_s']:.0f} selections/s is below "
        f"the {HOT_SELECTIONS_PER_S_BAR:.0f}/s acceptance bar"
    )
    assert hot["speedup_vs_sequential"] >= SPEEDUP_BAR

    for name, record in scenarios.items():
        floor = record["best"]["selections_per_s"] / REGRESSION_FACTOR
        assert record["selections_per_s"] >= floor, (
            f"{name} throughput regressed: {record['selections_per_s']:.0f} "
            f"selections/s is below the {floor:.0f} floor ({REGRESSION_FACTOR}x "
            f"under the best recorded {record['best']['selections_per_s']:.0f})"
        )


def test_cached_flush_is_fastest_path(pipeline):
    """A warm LRU must beat (or match) recomputing the same flush."""
    recorded = json.loads(BENCH_PATH.read_text())
    scenarios = recorded["scenarios"]
    assert scenarios["cached"]["selections_per_s"] >= scenarios["cold"]["selections_per_s"]
