"""Trace-file analysis: per-span-name counts and latency percentiles.

``repro obs summarize trace.jsonl`` renders what this module computes:
every span name seen in a trace, how often it ran, and where its
latency mass sits (total / mean / p50 / p90 / p95 / p99 / max), plus
instant events (early stops, cache clears) by name.  The summary dict
is JSON-ready; ``repro obs summarize --format json`` prints it
verbatim for machine consumers.  Works on any JSONL trace
written by :class:`repro.obs.trace.Tracer` — including one produced by
several instrumented phases in a single process (collection, training,
serving, cluster scheduling).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = ["load_events", "summarize_events", "summarize_file", "render_summary"]


def load_events(path: str | Path) -> list[dict]:
    """Parse a JSONL trace; tolerates a truncated final line (crash tail)."""
    events: list[dict] = []
    text = Path(path).read_text(encoding="utf-8")
    lines = text.splitlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # interrupted mid-write; everything before is good
            raise
    return events


def summarize_events(events: list[dict]) -> dict:
    """Aggregate span durations and event counts by name."""
    durations: dict[str, list[float]] = {}
    event_counts: dict[str, int] = {}
    threads: set[str] = set()
    for record in events:
        threads.add(record.get("thread", "?"))
        name = record.get("name", "?")
        if record.get("type") == "span":
            durations.setdefault(name, []).append(float(record.get("dur_s", 0.0)))
        else:
            event_counts[name] = event_counts.get(name, 0) + 1

    spans: dict[str, dict] = {}
    for name, durs in durations.items():
        arr = np.asarray(durs)
        spans[name] = {
            "count": int(arr.size),
            "total_s": float(arr.sum()),
            "mean_s": float(arr.mean()),
            "p50_s": float(np.percentile(arr, 50)),
            "p90_s": float(np.percentile(arr, 90)),
            "p95_s": float(np.percentile(arr, 95)),
            "p99_s": float(np.percentile(arr, 99)),
            "max_s": float(arr.max()),
        }
    return {
        "records": len(events),
        "threads": len(threads),
        "spans": spans,
        "events": event_counts,
    }


def summarize_file(path: str | Path) -> dict:
    """Load + summarize in one call."""
    return summarize_events(load_events(path))


def _fmt_s(seconds: float) -> str:
    """Human latency: µs under 1 ms, ms under 1 s, else seconds."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f}ms"
    return f"{seconds:8.3f}s "


def render_summary(summary: dict, *, top: int | None = None) -> str:
    """Fixed-width table, spans sorted by total time descending."""
    lines = [
        f"{summary['records']} records across {summary['threads']} thread(s)",
        "",
        f"{'span':32s} {'count':>7s} {'total':>10s} {'mean':>10s} "
        f"{'p50':>10s} {'p90':>10s} {'p95':>10s} {'p99':>10s} {'max':>10s}",
    ]
    ranked = sorted(summary["spans"].items(), key=lambda kv: -kv[1]["total_s"])
    if top is not None:
        ranked = ranked[:top]
    for name, row in ranked:
        # Traces written before the p95 column default to p90 so old
        # files still render.
        p95 = row.get("p95_s", row["p90_s"])
        lines.append(
            f"{name:32s} {row['count']:7d} {_fmt_s(row['total_s'])} "
            f"{_fmt_s(row['mean_s'])} {_fmt_s(row['p50_s'])} "
            f"{_fmt_s(row['p90_s'])} {_fmt_s(p95)} {_fmt_s(row['p99_s'])} {_fmt_s(row['max_s'])}"
        )
    if summary["events"]:
        lines.append("")
        lines.append("events:")
        for name in sorted(summary["events"]):
            lines.append(f"  {name:30s} x{summary['events'][name]}")
    return "\n".join(lines)
