"""Property tests: arbitrary span nestings close LIFO with sane timings."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.obs.trace import Tracer

#: Arbitrary span trees: each node is a list of children, up to depth ~5.
span_trees = st.recursive(
    st.just([]), lambda children: st.lists(children, max_size=3), max_leaves=12
)


def _run_tree(tree: list, prefix: str = "s") -> None:
    for i, child in enumerate(tree):
        with obs.span(f"{prefix}.{i}", depth=prefix.count(".")):
            _run_tree(child, f"{prefix}.{i}")


@given(tree=st.lists(span_trees, max_size=3))
def test_nested_spans_close_lifo_with_nonnegative_durations(tree):
    tracer = obs.configure()
    try:
        _run_tree(tree)
        events = tracer.events()
        by_id = {e["span_id"]: e for e in events}
        order = {e["span_id"]: i for i, e in enumerate(events)}
        for event in events:
            # Durations come from a monotonic clock.
            assert event["dur_s"] >= 0.0
            parent_id = event["parent_id"]
            if parent_id is None:
                continue
            parent = by_id[parent_id]
            # LIFO closing: every child's record is emitted before its
            # parent's, and its interval nests inside the parent's.
            assert order[event["span_id"]] < order[parent_id]
            assert parent["dur_s"] >= event["dur_s"]
            # Span ids are assigned at entry, so children are newer.
            assert event["span_id"] > parent_id
        # Every span opened was closed: the thread-local stack is empty.
        assert tracer.active_depth() == 0
    finally:
        obs.disable()


@given(tree=st.lists(span_trees, max_size=3), data=st.data())
def test_exceptions_anywhere_keep_stack_consistent(tree, data):
    """Aborting the walk at an arbitrary span still unwinds cleanly."""
    flat_count = [0]

    def count(nodes):
        for child in nodes:
            flat_count[0] += 1
            count(child)

    count(tree)
    if flat_count[0] == 0:
        return
    boom_at = data.draw(st.integers(min_value=0, max_value=flat_count[0] - 1))

    tracer = Tracer()
    seen = [0]

    class Abort(Exception):
        pass

    def run(nodes, prefix="s"):
        for i, child in enumerate(nodes):
            with tracer.span(f"{prefix}.{i}"):
                if seen[0] == boom_at:
                    seen[0] += 1
                    raise Abort()
                seen[0] += 1
                run(child, f"{prefix}.{i}")

    try:
        run(tree)
    except Abort:
        pass
    # Unwinding closed every opened span, in LIFO order.
    assert tracer.active_depth() == 0
    for event in tracer.events():
        assert event["dur_s"] >= 0.0


# ----------------------------------------------------------------------
# Round trip: emission -> flat stream -> analyzer reconstruction
# ----------------------------------------------------------------------
def _expected_shape(tree: list, prefix: str = "s") -> list[tuple[str, list]]:
    """The (name, children) forest an emission of ``tree`` must rebuild."""
    return [
        (f"{prefix}.{i}", _expected_shape(child, f"{prefix}.{i}"))
        for i, child in enumerate(tree)
    ]


def _shape_of(nodes) -> list[tuple[str, list]]:
    return [(n.name, _shape_of(n.children)) for n in nodes]


def _depths(shape, depth=0):
    for name, children in shape:
        yield name, depth
        yield from _depths(children, depth + 1)


@given(tree=st.lists(span_trees, max_size=3))
def test_any_emission_sequence_round_trips_through_the_analyzer(tree):
    """Reconstruction inverts emission: depths/nesting match the LIFO
    run exactly, and self-times sum to the roots' cumulative time."""
    from repro.obs.analyze import build_span_forest

    tracer = obs.configure()
    try:
        _run_tree(tree)
        events = tracer.events()
    finally:
        obs.disable()

    forest = build_span_forest(events)
    expected = _expected_shape(tree)
    # Exact structural match: same names, same nesting, same sibling
    # order (span ids are assigned at entry, so order is start order).
    assert _shape_of(forest) == expected
    # Every span's reconstructed depth equals the depth it was emitted
    # at (the tracer recorded it as an attr during the walk).
    by_name = {
        node.name: node for root in forest for node in root.walk()
    }
    for name, depth in _depths(expected):
        assert by_name[name].attrs["depth"] == depth
    # Self-time conservation: the analyzer never invents or loses time —
    # per tree, self-times sum to the root's cumulative time.
    for root in forest:
        total_self = sum(node.self_s for node in root.walk())
        assert abs(total_self - root.dur_s) <= 1e-9
