"""Every figure experiment runs end-to-end (fast profile) with the
paper's qualitative shapes asserted."""

import numpy as np
import pytest

from repro.experiments.fig1 import render_fig1, run_fig1
from repro.experiments.fig3 import CANDIDATE_FEATURES, render_fig3, run_fig3
from repro.experiments.fig4 import relative_spread, render_fig4, run_fig4
from repro.experiments.fig5 import render_fig5, run_fig5
from repro.experiments.fig6 import render_fig6, run_fig6
from repro.experiments.fig7 import render_fig7, run_fig7
from repro.experiments.fig8 import render_fig8, run_fig8
from repro.experiments.fig9 import METHODS, render_fig9, run_fig9
from repro.experiments.fig10 import render_fig10, run_fig10
from repro.experiments.fig11 import render_fig11, run_fig11


@pytest.fixture(scope="module")
def fig1(fast_ctx):
    return run_fig1(fast_ctx)


class TestFig1:
    def test_power_increases_with_clock(self, fig1):
        for sweep in (fig1.dgemm, fig1.stream):
            assert sweep.power_w[-1] > 1.5 * sweep.power_w[0]

    def test_time_decreases_with_clock(self, fig1):
        for sweep in (fig1.dgemm, fig1.stream):
            assert sweep.time_s[0] > sweep.time_s[-1]

    def test_energy_u_shaped(self, fig1):
        """Optimal energy strictly inside the clock range (paper Fig. 1 c/g)."""
        for sweep in (fig1.dgemm, fig1.stream):
            opt = sweep.energy_optimal_mhz
            assert 510.0 < opt < 1410.0

    def test_dgemm_energy_optimum_above_streams(self, fig1):
        assert fig1.dgemm.energy_optimal_mhz > fig1.stream.energy_optimal_mhz

    def test_dgemm_optimum_near_1080(self, fig1):
        """Paper: DGEMM optimal energy at 1080 MHz."""
        assert 945.0 <= fig1.dgemm.energy_optimal_mhz <= 1185.0

    def test_flops_roughly_linear(self, fig1):
        f = fig1.dgemm
        ratio = (f.flops_per_s[-1] / f.flops_per_s[0]) / (f.freqs_mhz[-1] / f.freqs_mhz[0])
        assert 0.8 < ratio < 1.25

    def test_stream_bandwidth_flattens(self, fig1):
        s = fig1.stream
        idx_900 = int(np.argmin(np.abs(s.freqs_mhz - 900.0)))
        gain_above = s.bandwidth_bytes_per_s[-1] / s.bandwidth_bytes_per_s[idx_900]
        assert gain_above < 1.15

    def test_time_optimal_near_max_clock(self, fig1):
        # Measurement noise can shuffle the near-flat top of the curve.
        assert fig1.dgemm.time_optimal_mhz >= 1200.0

    def test_render(self, fig1):
        text = render_fig1(fig1)
        assert "DGEMM" in text and "STREAM" in text and "(h)" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def fig3(self, fast_ctx):
        return run_fig3(fast_ctx, mi_subsample=1200)

    def test_selected_triple_matches_paper(self, fig3):
        """Paper selects fp_active, sm_app_clock, dram_active."""
        assert set(fig3.selected) == {"fp64_active", "sm_app_clock", "dram_active"}

    def test_clock_strongest_for_both_targets(self, fig3):
        assert fig3.power_ranking.top_k(1) == ["sm_app_clock"]

    def test_ten_candidates(self, fig3):
        assert len(CANDIDATE_FEATURES) == 10
        assert len(fig3.power_ranking.scores) == 10

    def test_render(self, fig3):
        assert "Selected top-3" in render_fig3(fig3)


class TestFig4:
    @pytest.fixture(scope="class")
    def fig4(self, fast_ctx):
        return run_fig4(fast_ctx)

    def test_fp_activity_nearly_invariant(self, fig4):
        assert relative_spread(fig4.dgemm.fp_active) < 0.15
        assert relative_spread(fig4.stream.fp_active) < 0.5  # tiny absolute values

    def test_dram_activity_bounded_variation(self, fig4):
        assert relative_spread(fig4.stream.dram_active) < 0.30

    def test_full_grid(self, fig4):
        assert fig4.dgemm.freqs_mhz.size == 61

    def test_render(self, fig4):
        assert "spread" in render_fig4(fig4)


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5(self, fast_ctx):
        return run_fig5(fast_ctx)

    def test_size_invariance(self, fig5):
        assert relative_spread(fig5.dgemm.fp_active) < 0.15
        assert relative_spread(fig5.stream.dram_active) < 0.15

    def test_five_sizes_each(self, fig5):
        assert fig5.dgemm.sizes.size == 5
        assert fig5.stream.sizes.size == 5

    def test_render(self, fig5):
        assert "input size" in render_fig5(fig5)


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6(self, fast_ctx):
        return run_fig6(fast_ctx)

    def test_paper_epoch_counts(self, fig6):
        assert fig6.power_history.epochs_run == 100
        assert fig6.time_history.epochs_run == 25

    def test_losses_fall(self, fig6):
        assert fig6.power_history.train_loss[-1] < 0.5 * fig6.power_history.train_loss[0]
        assert fig6.time_history.train_loss[-1] < 0.5 * fig6.time_history.train_loss[0]

    def test_validation_tracks_training(self, fig6):
        """No divergence at the chosen epoch counts (paper Fig. 6)."""
        h = fig6.power_history
        assert h.val_loss[-1] < 3.0 * h.train_loss[-1] + 0.05

    def test_render(self, fig6):
        assert "epochs" in render_fig6(fig6)


class TestFig7And8:
    def test_fig7_power_accuracy_floor(self, fast_ctx, fast_suite):
        result = run_fig7(fast_ctx, suite=fast_suite)
        assert len(result.evaluations) == 6
        for ev in result.evaluations:
            assert ev.power_accuracy > 75.0, ev.app

    def test_fig7_curves_full_grid(self, fast_ctx, fast_suite):
        for ev in run_fig7(fast_ctx, suite=fast_suite).evaluations:
            assert ev.freqs_mhz.size == 61

    def test_fig8_time_accuracy_floor(self, fast_ctx, fast_suite):
        result = run_fig8(fast_ctx, suite=fast_suite)
        for ev in result.evaluations:
            assert ev.time_accuracy > 70.0, ev.app

    def test_fig8_normalized_at_unity(self, fast_ctx, fast_suite):
        result = run_fig8(fast_ctx, suite=fast_suite)
        freqs, meas, pred = result.normalized("lammps")
        assert meas[-1] == pytest.approx(1.0)
        assert pred[-1] == pytest.approx(1.0)

    def test_fig8_unknown_app_raises(self, fast_ctx, fast_suite):
        with pytest.raises(KeyError):
            run_fig8(fast_ctx, suite=fast_suite).normalized("doom")

    def test_renders(self, fast_ctx, fast_suite):
        assert "accuracy" in render_fig7(run_fig7(fast_ctx, suite=fast_suite))
        assert "normalized" in render_fig8(run_fig8(fast_ctx, suite=fast_suite)).lower()


class TestFig9:
    @pytest.fixture(scope="class")
    def fig9(self, fast_ctx, fast_suite):
        return run_fig9(fast_ctx, suite=fast_suite)

    def test_four_methods_per_app(self, fig9):
        for ev in fig9.evaluations:
            assert set(ev.selections) == set(METHODS)

    def test_selections_on_grid(self, fig9):
        for ev in fig9.evaluations:
            for method in METHODS:
                assert ev.selections[method].freq_mhz in ev.freqs_mhz

    def test_most_optima_below_max(self, fig9):
        """Paper: 'optimal frequencies ... were less than the maximum'."""
        below = sum(
            1
            for ev in fig9.evaluations
            for m in ("M-EDP", "M-ED2P")
            if ev.selections[m].freq_mhz < 1410.0
        )
        assert below >= 10  # out of 12 measured selections

    def test_ed2p_at_or_above_edp_on_measured(self, fig9):
        for ev in fig9.evaluations:
            assert ev.selections["M-ED2P"].freq_mhz >= ev.selections["M-EDP"].freq_mhz - 1e-9

    def test_lstm_selects_lowest_measured_clock(self, fig9):
        """Paper Section 7: low-utilization LSTM saves the most."""
        freqs = {ev.app: ev.selections["M-ED2P"].freq_mhz for ev in fig9.evaluations}
        assert freqs["lstm"] == min(freqs.values())

    def test_render(self, fig9):
        assert "optimal frequencies" in render_fig9(fig9)


class TestFig10:
    @pytest.fixture(scope="class")
    def fig10(self, fast_ctx, fast_suite):
        return run_fig10(fast_ctx, suite=fast_suite)

    def test_energy_savings_positive_on_average(self, fig10):
        e_avg, _ = fig10.average("M-ED2P")
        assert e_avg > 15.0

    def test_ed2p_time_loss_smaller_than_edp(self, fig10):
        """Paper Section 7: ED2P improves performance vs EDP."""
        _, t_ed2p = fig10.average("M-ED2P")
        _, t_edp = fig10.average("M-EDP")
        assert t_ed2p >= t_edp

    def test_gromacs_time_roughly_flat(self, fig10):
        row = next(r for r in fig10.rows if r.app == "gromacs")
        assert abs(row.time_pct["M-ED2P"]) < 8.0

    def test_predicted_close_to_measured_energy(self, fig10):
        e_m, _ = fig10.average("M-ED2P")
        e_p, _ = fig10.average("P-ED2P")
        assert abs(e_m - e_p) < 15.0

    def test_render_has_average_row(self, fig10):
        assert "average" in render_fig10(fig10)


class TestFig11:
    @pytest.fixture(scope="class")
    def fig11(self, fast_ctx, fast_suite):
        return run_fig11(fast_ctx, suite=fast_suite)

    def test_all_five_learners_scored(self, fig11):
        assert {s.learner for s in fig11.scores} == {"RFR", "XGBR", "SVR", "MLR", "DNN"}

    def test_each_learner_scores_all_apps(self, fig11):
        for s in fig11.scores:
            assert len(s.per_app) == 6

    def test_dnn_beats_mlr_and_svr(self, fig11):
        """Fig. 11's core claim: the DNN outperforms the weaker learners."""
        dnn = fig11.score("DNN").mean_accuracy
        assert dnn > fig11.score("MLR").mean_accuracy
        assert dnn > fig11.score("SVR").mean_accuracy

    def test_unknown_learner_raises(self, fig11):
        with pytest.raises(KeyError):
            fig11.score("CNN")

    def test_render(self, fig11):
        out = render_fig11(fig11)
        assert "DNN" in out and "mean" in out
