"""collect -> persist -> reload -> train loop tests."""

import numpy as np
import pytest

from repro.core import build_dataset, dataset_from_csv_dir
from repro.core.models import PowerModel
from repro.telemetry import LaunchConfig, Launcher
from repro.workloads import get_workload


@pytest.fixture()
def campaign_dir(ga100, tmp_path):
    launcher = Launcher(ga100)
    config = LaunchConfig(
        freqs_mhz=(600.0, 1005.0, 1410.0), runs_per_config=2, output_dir=tmp_path
    )
    artifacts = launcher.collect([get_workload("stream"), get_workload("dgemm")], config)
    return tmp_path, artifacts


class TestReload:
    def test_per_sample_row_counts_match(self, campaign_dir):
        root, artifacts = campaign_dir
        reloaded = dataset_from_csv_dir(root, per_sample=True)
        expected = sum(len(a.record.samples) for a in artifacts)
        assert len(reloaded) == expected

    def test_aggregate_row_counts_match(self, campaign_dir):
        root, artifacts = campaign_dir
        reloaded = dataset_from_csv_dir(root, per_sample=False)
        assert len(reloaded) == len(artifacts)

    def test_reloaded_matches_in_memory_dataset(self, campaign_dir):
        root, artifacts = campaign_dir
        direct = build_dataset(artifacts, per_sample=True)
        reloaded = dataset_from_csv_dir(root, per_sample=True)
        # Same power values and clock columns up to ordering by workload.
        assert sorted(direct.y_power.tolist()) == pytest.approx(sorted(reloaded.y_power.tolist()))
        assert sorted(direct.x[:, 2].tolist()) == sorted(reloaded.x[:, 2].tolist())

    def test_slowdown_references_recomputed(self, campaign_dir):
        root, _ = campaign_dir
        reloaded = dataset_from_csv_dir(root, per_sample=False)
        at_max = [s.slowdown for s in reloaded.samples if s.features.sm_app_clock == 1410.0]
        assert np.mean(at_max) == pytest.approx(1.0, rel=0.05)

    def test_workload_names_from_directories(self, campaign_dir):
        root, _ = campaign_dir
        assert dataset_from_csv_dir(root).workload_names == ["dgemm", "stream"]

    def test_trainable_after_reload(self, campaign_dir):
        root, _ = campaign_dir
        model = PowerModel(seed=0)
        history = model.fit(dataset_from_csv_dir(root), epochs=3)
        assert history.epochs_run == 3


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            dataset_from_csv_dir(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(ValueError, match="no run CSVs"):
            dataset_from_csv_dir(tmp_path)

    def test_missing_reference_clock(self, ga100, tmp_path):
        launcher = Launcher(ga100)
        # Two workloads collected at different single clocks: the one
        # without a run at the top clock must be rejected.
        launcher.collect(
            [get_workload("stream")],
            LaunchConfig(freqs_mhz=(600.0,), runs_per_config=1, output_dir=tmp_path),
        )
        launcher.collect(
            [get_workload("dgemm")],
            LaunchConfig(freqs_mhz=(1410.0,), runs_per_config=1, output_dir=tmp_path),
        )
        with pytest.raises(ValueError, match="reference clock"):
            dataset_from_csv_dir(tmp_path)
