"""The simulated GPU device: clock control, kernel execution, sensors.

:class:`SimulatedGPU` is the stand-in for one physical A100/V100 board.
It owns a DVFS config space, a timing model, a power model, and a noise
model, and exposes the two operations the paper's data-collection
framework performs:

* ``set_sm_clock`` — apply an application clock (snapped to a supported
  state, as the real driver does), and
* ``run`` — execute a workload (described by its :class:`KernelCensus`)
  at the current clock, sampling the 12 DCGM metrics of paper Section 4.1
  on a fixed interval for the duration of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.dvfs import DVFSConfigSpace
from repro.gpusim.kernel import KernelCensus
from repro.gpusim.noise import NoiseModel
from repro.gpusim.power import PowerModel
from repro.gpusim.thermal import ThermalModel
from repro.gpusim.timing import TimingModel
from repro.gpusim.voltage import VoltageCurve

__all__ = ["SampleRecord", "RunRecord", "SimulatedGPU"]

#: The 12 utilization metrics collected in paper Section 4.1, in the
#: order the paper lists them.
METRIC_NAMES: tuple[str, ...] = (
    "fp64_active",
    "fp32_active",
    "sm_app_clock",
    "dram_active",
    "gr_engine_active",
    "gpu_utilization",
    "power_usage",
    "sm_active",
    "sm_occupancy",
    "pcie_tx_bytes",
    "pcie_rx_bytes",
    "exec_time",
)


@dataclass(frozen=True)
class SampleRecord:
    """One periodic sensor sample (one CSV row of the paper's framework)."""

    timestamp_s: float
    fp64_active: float
    fp32_active: float
    sm_app_clock: float
    dram_active: float
    gr_engine_active: float
    gpu_utilization: float
    power_usage: float
    sm_active: float
    sm_occupancy: float
    pcie_tx_bytes: float
    pcie_rx_bytes: float
    exec_time: float

    def as_dict(self) -> dict[str, float]:
        """Metric name -> value, excluding the timestamp."""
        return {name: getattr(self, name) for name in METRIC_NAMES}


@dataclass(frozen=True)
class RunRecord:
    """Aggregate result of one application execution on the device."""

    workload: str
    arch: str
    freq_mhz: float
    exec_time_s: float
    mean_power_w: float
    samples: tuple[SampleRecord, ...] = field(repr=False)
    #: Whether hardware thermal throttling engaged during the run.
    throttled: bool = False
    #: Junction temperature at the end of the run (None without a
    #: thermal model).
    final_temperature_c: float | None = None

    @property
    def energy_j(self) -> float:
        """Measured energy = mean power x wall time."""
        return self.mean_power_w * self.exec_time_s

    def metrics(self) -> dict[str, float]:
        """Run-level means of the 12 collected metrics.

        ``pcie_*_bytes`` are summed (they are traffic totals), everything
        else is averaged; ``exec_time`` is the wall time of the run.
        """
        out: dict[str, float] = {}
        for name in METRIC_NAMES:
            values = np.array([getattr(s, name) for s in self.samples])
            if name.startswith("pcie_"):
                out[name] = float(values.sum())
            elif name == "exec_time":
                out[name] = self.exec_time_s
            elif name == "power_usage":
                out[name] = self.mean_power_w
            else:
                out[name] = float(values.mean())
        return out


class SimulatedGPU:
    """One simulated GPU board with controllable application clocks."""

    def __init__(
        self,
        arch: GPUArchitecture,
        *,
        seed: int = 0,
        noise: NoiseModel | None = None,
        timing: TimingModel | None = None,
        power: PowerModel | None = None,
        voltage: VoltageCurve | None = None,
        thermal: ThermalModel | None = None,
        sampling_interval_s: float = 0.020,
        max_samples_per_run: int = 512,
    ) -> None:
        if sampling_interval_s <= 0:
            raise ValueError("sampling_interval_s must be positive")
        if max_samples_per_run < 1:
            raise ValueError("max_samples_per_run must be >= 1")
        self.arch = arch
        self.dvfs = DVFSConfigSpace.for_architecture(arch)
        self.noise = noise if noise is not None else NoiseModel()
        self.voltage = voltage if voltage is not None else VoltageCurve(arch)
        self.timing = timing if timing is not None else TimingModel(arch)
        self.power = power if power is not None else PowerModel(arch, self.voltage)
        self.thermal = thermal
        self._temperature_c = thermal.ambient_c if thermal is not None else None
        self.sampling_interval_s = float(sampling_interval_s)
        self.max_samples_per_run = int(max_samples_per_run)
        self._rng = np.random.default_rng(seed)
        self._sm_clock = arch.default_core_freq_mhz
        self._mem_clock = arch.memory_freq_mhz

    # ------------------------------------------------------------------
    # Clock control (the paper's "control module" talks to this)
    # ------------------------------------------------------------------
    @property
    def current_sm_clock(self) -> float:
        """The applied SM application clock, MHz."""
        return self._sm_clock

    @property
    def current_mem_clock(self) -> float:
        """The applied memory clock, MHz."""
        return self._mem_clock

    @property
    def mem_ratio(self) -> float:
        """Applied memory clock relative to the default."""
        return self._mem_clock / self.arch.memory_freq_mhz

    def set_sm_clock(self, freq_mhz: float) -> float:
        """Apply an application clock; returns the snapped actual clock."""
        if freq_mhz <= 0:
            raise ValueError("freq_mhz must be positive")
        self._sm_clock = self.dvfs.snap(freq_mhz)
        return self._sm_clock

    def set_mem_clock(self, freq_mhz: float) -> float:
        """Apply a memory clock; snaps to the nearest supported state.

        Datacenter GPUs expose only a handful of memory clocks (the
        performance state plus idle states), so requests snap to
        ``arch.memory_clocks`` exactly as SM requests snap to their grid.
        """
        if freq_mhz <= 0:
            raise ValueError("freq_mhz must be positive")
        clocks = np.asarray(self.arch.memory_clocks)
        self._mem_clock = float(clocks[np.argmin(np.abs(clocks - freq_mhz))])
        return self._mem_clock

    def reset_clocks(self) -> float:
        """Restore default core and memory clocks (``nvidia-smi -rac``)."""
        self._sm_clock = self.arch.default_core_freq_mhz
        self._mem_clock = self.arch.memory_freq_mhz
        return self._sm_clock

    # ------------------------------------------------------------------
    # Execution + sensors (the paper's "profile module" talks to this)
    # ------------------------------------------------------------------
    def run(self, census: KernelCensus, *, workload_name: str = "anonymous") -> RunRecord:
        """Execute one workload at the current clock and sample sensors.

        The run's true time/power come from the analytical models; the
        returned record carries noisy periodic samples plus noisy run-level
        aggregates, mimicking what DCGM hands back on real hardware.
        """
        freq = self._sm_clock
        mem_ratio = self.mem_ratio
        breakdown = self.timing.evaluate(census, freq, mem_ratio=mem_ratio)
        true_time = breakdown.t_total
        true_power = self.power.power_from_breakdown(breakdown, mem_ratio=mem_ratio)

        throttled = False
        if self.thermal is not None:
            true_time, true_power, throttled = self._apply_thermal(
                census, freq, mem_ratio, true_time, true_power
            )

        exec_time = self.noise.perturb_time(self._rng, true_time)
        n_samples = int(np.ceil(exec_time / self.sampling_interval_s))
        n_samples = int(np.clip(n_samples, 1, self.max_samples_per_run))

        # Per-run drift of dram_active across clocks (paper Fig. 4).
        dram_drift = self.noise.dram_dvfs_drift_std

        timestamps = self.sampling_interval_s * (1.0 + np.arange(n_samples))
        pcie_tx_per_sample = census.pcie_tx_bytes / n_samples
        pcie_rx_per_sample = census.pcie_rx_bytes / n_samples

        samples: list[SampleRecord] = []
        power_values = np.empty(n_samples)
        for i in range(n_samples):
            fp64 = self.noise.perturb_activity(self._rng, breakdown.fp64_active)
            fp32 = self.noise.perturb_activity(self._rng, breakdown.fp32_active)
            dram = self.noise.perturb_activity(self._rng, breakdown.dram_active, extra_std=dram_drift)
            sm_act = self.noise.perturb_activity(self._rng, breakdown.sm_active)
            gr_act = self.noise.perturb_activity(self._rng, breakdown.gr_engine_active)
            occ = self.noise.perturb_activity(self._rng, census.occupancy)
            pwr = self.noise.perturb_power(self._rng, true_power)
            power_values[i] = pwr
            samples.append(
                SampleRecord(
                    timestamp_s=float(timestamps[i]),
                    fp64_active=fp64,
                    fp32_active=fp32,
                    sm_app_clock=freq,
                    dram_active=dram,
                    gr_engine_active=gr_act,
                    gpu_utilization=float(np.round(100.0 * gr_act)),
                    power_usage=pwr,
                    sm_active=sm_act,
                    sm_occupancy=occ,
                    pcie_tx_bytes=pcie_tx_per_sample,
                    pcie_rx_bytes=pcie_rx_per_sample,
                    exec_time=exec_time,
                )
            )
        return RunRecord(
            workload=workload_name,
            arch=self.arch.name,
            freq_mhz=freq,
            exec_time_s=exec_time,
            mean_power_w=float(power_values.mean()),
            samples=tuple(samples),
            throttled=throttled,
            final_temperature_c=self._temperature_c,
        )

    # ------------------------------------------------------------------
    # Thermal behaviour
    # ------------------------------------------------------------------
    @property
    def temperature_c(self) -> float | None:
        """Current junction temperature (None without a thermal model)."""
        return self._temperature_c

    def cool_down(self, seconds: float) -> float | None:
        """Idle for ``seconds``; the junction relaxes toward idle-load
        steady state.  Returns the new temperature (None if no thermal
        model) — the per-run cooldown a careful power study inserts."""
        if self.thermal is None:
            return None
        self._temperature_c = self.thermal.evolve(
            self._temperature_c, self.power.idle_power(), seconds
        )
        return self._temperature_c

    def _throttle_clock(self, census: KernelCensus, mem_ratio: float) -> tuple[float, float, float]:
        """Highest usable clock whose steady-state temperature holds.

        Returns (clock, wall_time, power) at that clock; falls back to
        the lowest usable clock if nothing is sustainable.
        """
        for f in reversed(self.dvfs.usable_mhz):
            bd = self.timing.evaluate(census, f, mem_ratio=mem_ratio)
            p = self.power.power_from_breakdown(bd, mem_ratio=mem_ratio)
            if not self.thermal.would_throttle(p):
                return f, bd.t_total, p
        f = self.dvfs.usable_mhz[0]
        bd = self.timing.evaluate(census, f, mem_ratio=mem_ratio)
        return f, bd.t_total, self.power.power_from_breakdown(bd, mem_ratio=mem_ratio)

    def _apply_thermal(
        self,
        census: KernelCensus,
        freq: float,
        mem_ratio: float,
        true_time: float,
        true_power: float,
    ) -> tuple[float, float, bool]:
        """Evolve junction temperature; throttle if the limit is hit.

        If the limit is crossed mid-run, the remaining work executes at
        the highest thermally sustainable clock; wall time and mean power
        are blended accordingly.
        """
        thermal = self.thermal
        t_cross = thermal.time_to_reach(self._temperature_c, true_power, thermal.throttle_limit_c)
        if t_cross >= true_time:
            self._temperature_c = thermal.evolve(self._temperature_c, true_power, true_time)
            return true_time, true_power, False

        # Work completed before the limit, remainder at the safe clock.
        frac_done = t_cross / true_time if true_time > 0 else 1.0
        _f_safe, t_safe_full, p_safe = self._throttle_clock(census, mem_ratio)
        t_rest = (1.0 - frac_done) * t_safe_full
        total_time = t_cross + t_rest
        mean_power = (true_power * t_cross + p_safe * t_rest) / total_time
        temp_at_cross = thermal.evolve(self._temperature_c, true_power, t_cross)
        self._temperature_c = thermal.evolve(temp_at_cross, p_safe, t_rest)
        return total_time, mean_power, True

    def run_at(self, census: KernelCensus, freq_mhz: float, *, workload_name: str = "anonymous") -> RunRecord:
        """Convenience: set the clock, run, restore the previous clock."""
        previous = self._sm_clock
        try:
            self.set_sm_clock(freq_mhz)
            return self.run(census, workload_name=workload_name)
        finally:
            self._sm_clock = previous

    # ------------------------------------------------------------------
    # Noise-free ground truth (for validation and plotting)
    # ------------------------------------------------------------------
    def true_time(self, census: KernelCensus, freq_mhz: float, *, mem_ratio: float = 1.0) -> float:
        """Noise-free wall time at a clock (not necessarily the current)."""
        return self.timing.execution_time(census, self.dvfs.snap(freq_mhz), mem_ratio=mem_ratio)

    def true_power(self, census: KernelCensus, freq_mhz: float, *, mem_ratio: float = 1.0) -> float:
        """Noise-free board power at a clock."""
        breakdown = self.timing.evaluate(census, self.dvfs.snap(freq_mhz), mem_ratio=mem_ratio)
        return self.power.power_from_breakdown(breakdown, mem_ratio=mem_ratio)

    def true_energy(self, census: KernelCensus, freq_mhz: float, *, mem_ratio: float = 1.0) -> float:
        """Noise-free energy at a clock."""
        f = self.dvfs.snap(freq_mhz)
        return self.true_power(census, f, mem_ratio=mem_ratio) * self.true_time(
            census, f, mem_ratio=mem_ratio
        )
