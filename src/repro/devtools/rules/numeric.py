"""Numeric dataflow rules: NUM002, SHAPE001, PERF001, PURE001.

NUM001 checks one lexical pattern (float ``==``).  These rules consume
:mod:`repro.devtools.numeric` — an interprocedural ``(dtype, rank,
symbolic-dims)`` lattice propagated over the project call graph — so
they can reason about *what actually flows where*:

* **NUM002** — dtype drift on the float64 pipeline: a value the
  reproduction's numeric contract pins to float64 (``repro.core``,
  ``repro.nn``, ``repro.serving``, ``repro.gpusim``) is narrowed to
  float16/float32, constructed sub-float64, or silently truncated with
  a bare ``int()``.  One stray cast breaks the 1e-9 fused-engine gate
  and every golden suite downstream.
* **SHAPE001** — broadcast or matmul dimension mismatch found by
  unifying symbolic dims: ``(n, k) @ (j, m)`` with ``k != j`` provable,
  or elementwise ops whose concrete trailing dims conflict.
* **PERF001** — hot-path hygiene, scoped to call-graph descendants of
  the serving flush / fused-engine infer / telemetry collection roots:
  per-element Python loops over arrays, ``np.append`` in a loop,
  list-append-then-``stack`` gathers, loop-invariant allocations.
  Cold code is never nagged.
* **PURE001** — cache-safety purity proofs: every project function
  whose result feeds the serving curve cache (``LRUCache.put*``), a
  ``*_cache`` mapping store (the fleet decision cache), or an
  ``@lru_cache`` memo must be *return-pure* — no wall clock, unseeded
  RNG, I/O, or mutated-module-global read can taint the cached value
  (seeded/lineage-threaded RNG is fine; so is instrumentation whose
  readings never reach the return value).

Suppression policy matches every other rule: fix the code, carry
``# repro: noqa[RULE] — <justification>`` on the line, or add a
justified ``baseline.json`` entry (see DESIGN.md §17).
"""

from __future__ import annotations

from typing import Iterable

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding
from repro.devtools.numeric import get_numeric_analysis
from repro.devtools.rules.base import Rule, register

__all__ = [
    "NUM002DtypeDrift",
    "PERF001HotPathHygiene",
    "PURE001CachePurity",
    "SHAPE001ShapeMismatch",
]


class _NumericRule(Rule):
    """Shared plumbing: replay the analysis' findings for one module."""

    needs_project = True

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package("repro") or ctx.project is None:
            return []
        analysis = get_numeric_analysis(ctx.project)
        return [
            self.finding(ctx, item.node, item.message)
            for item in analysis.findings_for_module(ctx.module)
            if item.rule == self.rule_id
        ]


@register
class NUM002DtypeDrift(_NumericRule):
    """float64 pipeline value narrowed, built sub-float64, or truncated."""

    rule_id = "NUM002"
    severity = "error"
    summary = "dtype drift off the float64 pipeline (narrowing cast/construction/truncation)"
    rationale = (
        "The fused serving engine's 1e-9 equivalence gate and every golden "
        "suite assume float64 end-to-end through core.models, nn, serving, "
        "and gpusim. Dtype propagation over the call graph proves where a "
        "float64 value is astype'd or constructed to float16/float32, or "
        "truncated with a bare int() instead of int(round(...)) — each one "
        "a silent precision cliff that only surfaces as a golden-diff "
        "mystery much later."
    )


@register
class SHAPE001ShapeMismatch(_NumericRule):
    """Provable broadcast/matmul dimension conflict."""

    rule_id = "SHAPE001"
    severity = "error"
    summary = "broadcast/matmul shape mismatch proven by symbolic-dim unification"
    rationale = (
        "Shape propagation tracks (rank, symbolic dims) through numpy "
        "constructors, reshapes, stacking, and matmul. When two concrete "
        "dims meet in an elementwise op and are unequal (neither being 1), "
        "or a matmul's inner dims provably differ, the code raises at "
        "runtime on the first real batch — the exact failure class the "
        "packed-weight affine recurrence in serving.engine is most exposed "
        "to."
    )


@register
class PERF001HotPathHygiene(_NumericRule):
    """Per-element loops / growing arrays / loop allocations on the hot set."""

    rule_id = "PERF001"
    severity = "warning"
    summary = "hot-path hygiene: per-element loop, append-then-stack, or loop allocation"
    rationale = (
        "The hot set is computed, not guessed: call-graph descendants of "
        "SelectionService.flush, FusedInferenceEngine.infer, and the "
        "telemetry collection roots. Inside it, a Python per-element loop, "
        "np.append in a loop, a list-append-then-stack gather, or a "
        "loop-invariant allocation each cost orders of magnitude over the "
        "vectorized form the rest of the pipeline already uses. Cold code "
        "is exempt by construction."
    )


@register
class PURE001CachePurity(_NumericRule):
    """A cache-fed value derives from a function that is not return-pure."""

    rule_id = "PURE001"
    severity = "error"
    summary = "cached value fed by an impure function (clock/RNG/I-O/global taints the result)"
    rationale = (
        "The serving curve cache, the fleet decision cache, and @lru_cache "
        "memos all assume: same key, same value, forever. The purity proof "
        "taints wall clocks, unseeded RNG, I/O, and mutated module globals, "
        "then checks — interprocedurally, including subclass overrides at "
        "dynamic call sites — that no taint reaches the value being cached. "
        "Seeded, lineage-threaded RNG and instrumentation that never flows "
        "into the return value are both allowed; a cache that memoises "
        "time-dependent values is not."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package("repro") or ctx.project is None:
            return []
        analysis = get_numeric_analysis(ctx.project)
        findings: list[Finding] = []
        for feed in analysis.feeds_in_module(ctx.module):
            for root, witness in feed.impure:
                findings.append(
                    self.finding(
                        ctx,
                        feed.node,
                        f"value cached via {feed.label} derives from impure "
                        f"{root} ({witness}); cache entries must be "
                        "reproducible — thread a seeded rng or hoist the "
                        "impurity out of the cached computation",
                    )
                )
        return findings
