"""Shared fixtures.

Expensive artefacts (trained pipeline, measured sweeps) are session-scoped
and use the fast experiment profile, so the whole suite exercises every
layer end-to-end without re-running collection campaigns per test.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck
from hypothesis import settings as hypothesis_settings

from repro.experiments import EvaluationSuite, ExperimentContext, ExperimentSettings
from repro.gpusim import GA100, GV100, KernelCensus, NoiseModel, SimulatedGPU

# Device/model fixtures are read-only under @given, so sharing them across
# generated examples is safe; the deadline is lifted because simulator
# sweeps legitimately take milliseconds.
hypothesis_settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
hypothesis_settings.load_profile("repro")


def pytest_collection_modifyitems(items) -> None:
    """Every test not marked ``slow`` is tier-1.

    This makes ``-m tier1`` a fast-suite alias (the complement of
    ``-m "not slow"`` stays stable even if more tiers appear later).
    """
    for item in items:
        if item.get_closest_marker("slow") is None:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture(scope="session")
def tiny_models():
    """Session-trained tiny model pair (see ``tests/golden/tiny_pipeline.py``).

    Shared by the golden suite, the serving equivalence tests, and the
    phased-prediction tests so the ~2 s training cost is paid once.
    """
    from tests.golden.tiny_pipeline import train_tiny_models

    return train_tiny_models()


@pytest.fixture(scope="session")
def fast_ctx() -> ExperimentContext:
    """Shared fast-profile experiment context (trains models once)."""
    return ExperimentContext(ExperimentSettings.fast(seed=0))


@pytest.fixture(scope="session")
def fast_suite(fast_ctx: ExperimentContext) -> EvaluationSuite:
    """Shared evaluation suite over the fast context."""
    return EvaluationSuite(fast_ctx)


@pytest.fixture()
def ga100() -> SimulatedGPU:
    """Fresh noisy GA100 device."""
    return SimulatedGPU(GA100, seed=123)


@pytest.fixture()
def gv100() -> SimulatedGPU:
    """Fresh noisy GV100 device."""
    return SimulatedGPU(GV100, seed=123)


@pytest.fixture()
def quiet_ga100() -> SimulatedGPU:
    """GA100 with noise disabled — deterministic measurements."""
    return SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())


@pytest.fixture()
def compute_census() -> KernelCensus:
    """A DGEMM-like compute-bound census."""
    return KernelCensus(
        flops_fp64=1e13,
        dram_bytes=5e11,
        pcie_rx_bytes=1e9,
        pcie_tx_bytes=5e8,
        occupancy=0.9,
        compute_efficiency=0.9,
        memory_efficiency=0.75,
        serial_fraction=0.02,
    )


@pytest.fixture()
def memory_census() -> KernelCensus:
    """A STREAM-like memory-bound census."""
    return KernelCensus(
        flops_fp64=5e10,
        dram_bytes=6e11,
        pcie_rx_bytes=1e9,
        pcie_tx_bytes=1e8,
        occupancy=0.8,
        compute_efficiency=0.85,
        memory_efficiency=0.88,
        serial_fraction=0.02,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """Seeded generator for test data."""
    return np.random.default_rng(42)
