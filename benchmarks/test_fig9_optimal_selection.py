"""Figure 9: the four selection methods on each app's P/T curves.

Shape assertions (paper Section 5.2): optima sit below the maximum
clock for almost every measured selection; ED2P optima >= EDP optima.
"""

import pytest

from repro.experiments.fig9 import METHODS, render_fig9, run_fig9


@pytest.fixture(scope="module")
def fig9(ctx, suite):
    return run_fig9(ctx, suite=suite)


def test_fig9_report(benchmark, fig9, report):
    benchmark(render_fig9, fig9)
    report("Figure 9 - optimal DVFS configurations", render_fig9(fig9))


def test_fig9_measured_optima_below_max(fig9):
    below = sum(
        1 for ev in fig9.evaluations for m in ("M-EDP", "M-ED2P")
        if ev.selections[m].freq_mhz < 1410.0
    )
    assert below >= 11  # of 12; paper allows rare max-clock outliers


def test_fig9_ed2p_geq_edp(fig9):
    for ev in fig9.evaluations:
        assert ev.selections["M-ED2P"].freq_mhz >= ev.selections["M-EDP"].freq_mhz


def test_fig9_optima_in_paper_band(fig9):
    """Measured ED2P optima land in the paper's 600-1300 MHz band."""
    for ev in fig9.evaluations:
        assert 510.0 <= ev.selections["M-ED2P"].freq_mhz <= 1300.0


def test_fig9_lstm_lowest(fig9):
    freqs = {ev.app: ev.selections["M-ED2P"].freq_mhz for ev in fig9.evaluations}
    assert freqs["lstm"] == min(freqs.values())


def test_fig9_all_methods_present(fig9):
    for ev in fig9.evaluations:
        assert set(ev.selections) == set(METHODS)
