"""Weight (de)serialisation to NumPy ``.npz`` archives.

The archive stores the architecture (layer sizes + activation names) and
every parameter array, so a trained power/time model can be shipped to
another machine — the cross-architecture portability experiment loads
GA100-trained weights to predict GV100.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.layers import Dense
from repro.nn.network import FeedForwardNetwork

__all__ = ["save_network", "load_network"]

_FORMAT_VERSION = 1


def save_network(network: FeedForwardNetwork, path: str | Path) -> Path:
    """Persist architecture + weights; returns the resolved path."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    spec = {
        "version": _FORMAT_VERSION,
        "layers": [
            {
                "in_features": layer.in_features,
                "out_features": layer.out_features,
                "activation": layer.activation.name,
            }
            for layer in network.layers
        ],
    }
    arrays: dict[str, np.ndarray] = {"spec": np.frombuffer(json.dumps(spec).encode(), dtype=np.uint8)}
    for i, layer in enumerate(network.layers):
        for name, param in layer.params.items():
            arrays[f"layer{i}_{name}"] = param
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_network(path: str | Path) -> FeedForwardNetwork:
    """Reconstruct a network saved by :func:`save_network`."""
    path = Path(path)
    with np.load(path) as data:
        spec = json.loads(bytes(data["spec"]).decode())
        if spec.get("version") != _FORMAT_VERSION:
            raise ValueError(f"{path}: unsupported format version {spec.get('version')}")
        layers = []
        for i, meta in enumerate(spec["layers"]):
            layer = Dense(meta["in_features"], meta["out_features"], meta["activation"])
            layer.params["W"] = np.array(data[f"layer{i}_W"])
            layer.params["b"] = np.array(data[f"layer{i}_b"])
            layers.append(layer)
    return FeedForwardNetwork(layers)
