"""DVFS-sweep dataset construction (paper Section 4, Eq. 1/3/4/6/7).

The offline phase runs every training workload three times at every
usable clock and aggregates each run into one sample carrying the paper's
feature vector ``x = (fp_active, dram_active, sm_app_clock)`` and the two
targets ``power_usage`` and ``execution_time``.

Execution time is additionally stored as the **slowdown factor**
``T(f) / T(f_max)`` per workload.  Absolute runtimes across 21 workloads
span orders of magnitude and are not identifiable from three intensive
features alone; the paper's Fig. 8 likewise evaluates *normalized* time.
The online phase measures T(f_max) anyway, so the absolute curve is
recovered exactly by rescaling (see DESIGN.md, "Execution-time target
note").
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.gpusim.device import METRIC_INDEX, SimulatedGPU
from repro.telemetry.csvio import read_columns_csv
from repro.telemetry.launch import Launcher, RunArtifact
from repro.units import Seconds, Watts
from repro.workloads.base import Workload

__all__ = [
    "FeatureVector",
    "SweepSample",
    "DVFSDataset",
    "build_dataset",
    "dataset_from_csv_dir",
    "features_at_max",
]


@dataclass(frozen=True)
class FeatureVector:
    """The paper's Eq. 1 feature vector for one run."""

    fp_active: float
    dram_active: float
    sm_app_clock: float

    def as_array(self) -> np.ndarray:
        """(3,) array in the canonical feature order."""
        return np.array([self.fp_active, self.dram_active, self.sm_app_clock])

    def at_clock(self, sm_app_clock: float) -> "FeatureVector":
        """Replicate the activity features to another clock.

        This is the paper's central data-reduction trick: fp/dram activity
        are DVFS-invariant (Section 4.2.2), so features measured at the
        default clock stand in for every other clock.
        """
        return FeatureVector(self.fp_active, self.dram_active, float(sm_app_clock))


@dataclass(frozen=True)
class SweepSample:
    """One aggregated run: features + both targets."""

    workload: str
    features: FeatureVector
    power_w: Watts
    time_s: Seconds
    slowdown: float
    run_index: int


class DVFSDataset:
    """Column-oriented view over sweep samples, ready for training.

    The matrices are the primary storage; the :attr:`samples` row view is
    materialized lazily for consumers that want one object per row.
    Construct from row objects (``DVFSDataset(samples)``) or directly from
    column blocks (:meth:`from_columns`) — the launcher/dataset fast path
    uses the latter and never builds per-row Python objects at all.
    """

    def __init__(self, samples: list[SweepSample]) -> None:
        if not samples:
            raise ValueError("dataset needs at least one sample")
        self._samples: list[SweepSample] | None = list(samples)
        self._x = np.stack([s.features.as_array() for s in samples])
        self._power = np.array([s.power_w for s in samples])
        self._time = np.array([s.time_s for s in samples])
        self._slowdown = np.array([s.slowdown for s in samples])
        self._workloads = np.array([s.workload for s in samples])
        self._run_index = np.array([s.run_index for s in samples])

    @classmethod
    def from_columns(
        cls,
        *,
        x: np.ndarray,
        power: np.ndarray,
        time: np.ndarray,
        slowdown: np.ndarray,
        workloads: np.ndarray,
        run_index: np.ndarray,
    ) -> "DVFSDataset":
        """Build a dataset directly from column blocks (no row objects)."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != 3:
            raise ValueError(f"x must be (n, 3), got {x.shape}")
        n = x.shape[0]
        if n == 0:
            raise ValueError("dataset needs at least one sample")
        power = np.asarray(power, dtype=float)
        time = np.asarray(time, dtype=float)
        slowdown = np.asarray(slowdown, dtype=float)
        workloads = np.asarray(workloads)
        run_index = np.asarray(run_index)
        for name, col in (
            ("power", power),
            ("time", time),
            ("slowdown", slowdown),
            ("workloads", workloads),
            ("run_index", run_index),
        ):
            if col.shape != (n,):
                raise ValueError(f"{name} must be ({n},), got {col.shape}")
        obj = cls.__new__(cls)
        obj._samples = None
        obj._x = x
        obj._power = power
        obj._time = time
        obj._slowdown = slowdown
        obj._workloads = workloads
        obj._run_index = run_index
        return obj

    @property
    def samples(self) -> list[SweepSample]:
        """Row view (one :class:`SweepSample` per row), built lazily."""
        if self._samples is None:
            self._samples = [
                SweepSample(
                    workload=str(w),
                    features=FeatureVector(row[0], row[1], row[2]),
                    power_w=p,
                    time_s=t,
                    slowdown=s,
                    run_index=int(r),
                )
                for w, row, p, t, s, r in zip(
                    self._workloads,
                    self._x.tolist(),
                    self._power.tolist(),
                    self._time.tolist(),
                    self._slowdown.tolist(),
                    self._run_index,
                )
            ]
        return self._samples

    def __len__(self) -> int:
        return int(self._x.shape[0])

    @property
    def x(self) -> np.ndarray:
        """(n, 3) feature matrix (fp_active, dram_active, sm_app_clock)."""
        return self._x

    @property
    def y_power(self) -> np.ndarray:
        """(n,) power targets in watts (paper Eq. 3)."""
        return self._power

    @property
    def y_time(self) -> np.ndarray:
        """(n,) absolute execution-time targets in seconds (paper Eq. 6)."""
        return self._time

    @property
    def y_slowdown(self) -> np.ndarray:
        """(n,) relative execution-time targets T(f)/T(f_max)."""
        return self._slowdown

    @property
    def workload_names(self) -> list[str]:
        """Distinct workloads present, sorted."""
        return sorted(set(self._workloads))

    def for_workload(self, name: str) -> "DVFSDataset":
        """Subset containing one workload's samples."""
        mask = self._workloads == name
        if not mask.any():
            raise KeyError(f"no samples for workload {name!r}")
        return DVFSDataset.from_columns(
            x=self._x[mask],
            power=self._power[mask],
            time=self._time[mask],
            slowdown=self._slowdown[mask],
            workloads=self._workloads[mask],
            run_index=self._run_index[mask],
        )

    def mean_curve(self, target: str = "power") -> tuple[np.ndarray, np.ndarray]:
        """(freqs, mean target) averaged over repeated runs, ascending freq.

        ``target`` is one of ``"power"``, ``"time"``, ``"slowdown"``.
        """
        values = {"power": self._power, "time": self._time, "slowdown": self._slowdown}[target]
        clocks = self._x[:, 2]
        freqs = np.unique(clocks)
        means = np.array([values[clocks == f].mean() for f in freqs])
        return freqs, means


def _aggregate_sample(artifact: RunArtifact, t_ref: float) -> SweepSample:
    metrics = artifact.record.metrics()
    features = FeatureVector(
        fp_active=metrics["fp64_active"] + metrics["fp32_active"],
        dram_active=metrics["dram_active"],
        sm_app_clock=metrics["sm_app_clock"],
    )
    return SweepSample(
        workload=artifact.workload,
        features=features,
        power_w=metrics["power_usage"],
        time_s=metrics["exec_time"],
        slowdown=metrics["exec_time"] / t_ref,
        run_index=artifact.run_index,
    )


_FP64 = METRIC_INDEX["fp64_active"]
_FP32 = METRIC_INDEX["fp32_active"]
_DRAM = METRIC_INDEX["dram_active"]
_CLOCK = METRIC_INDEX["sm_app_clock"]
_POWER = METRIC_INDEX["power_usage"]


def _feature_matrix(fp64, fp32, dram, clock) -> np.ndarray:
    """(n, 3) Eq. 1 feature block from per-sample metric columns."""
    return np.column_stack([fp64 + fp32, dram, clock])


def _per_sample_columns(
    artifact: RunArtifact, t_ref: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One artifact's per-sample training columns (x, power, time, slowdown,
    workload, run_index) straight from the record's metrics block."""
    block = artifact.record.metrics_block
    n = block.shape[0]
    exec_time = artifact.record.exec_time_s
    return (
        _feature_matrix(block[:, _FP64], block[:, _FP32], block[:, _DRAM], block[:, _CLOCK]),
        block[:, _POWER],
        np.full(n, exec_time),
        np.full(n, exec_time / t_ref),
        np.full(n, artifact.workload),
        np.full(n, artifact.run_index),
    )


def build_dataset(
    artifacts: list[RunArtifact],
    *,
    max_freq_mhz: float | None = None,
    per_sample: bool = False,
) -> DVFSDataset:
    """Assemble a dataset from launcher artifacts.

    With ``per_sample`` every 20 ms sensor sample becomes one training
    row (its own noisy activities and power reading) — the paper's
    "statistically significant dataset" built from interval sampling.
    Without it, each run contributes one aggregated row; curve-plotting
    code wants that form.

    Each workload's slowdown reference T(f_max) is the mean exec time of
    its runs at the highest clock present (or ``max_freq_mhz`` if given).
    Raises if a workload has no run at the reference clock — slowdowns
    would silently be garbage otherwise.
    """
    if not artifacts:
        raise ValueError("no artifacts to build a dataset from")
    top = max_freq_mhz if max_freq_mhz is not None else max(a.freq_mhz for a in artifacts)
    t_ref: dict[str, float] = {}
    for name in {a.workload for a in artifacts}:
        ref_runs = [a.record.exec_time_s for a in artifacts if a.workload == name and a.freq_mhz == top]
        if not ref_runs:
            raise ValueError(f"workload {name!r} has no run at the reference clock {top} MHz")
        t_ref[name] = float(np.mean(ref_runs))
    if per_sample:
        parts = [_per_sample_columns(a, t_ref[a.workload]) for a in artifacts]
        return DVFSDataset.from_columns(
            x=np.concatenate([p[0] for p in parts]),
            power=np.concatenate([p[1] for p in parts]),
            time=np.concatenate([p[2] for p in parts]),
            slowdown=np.concatenate([p[3] for p in parts]),
            workloads=np.concatenate([p[4] for p in parts]),
            run_index=np.concatenate([p[5] for p in parts]),
        )
    return DVFSDataset([_aggregate_sample(a, t_ref[a.workload]) for a in artifacts])


def measure_census_at_max(
    device: SimulatedGPU,
    census,
    *,
    runs: int = 1,
    name: str = "phase",
) -> tuple[FeatureVector, float, float]:
    """Online-phase acquisition for one raw census (e.g. one app phase).

    Same contract as :func:`features_at_max` but takes a
    :class:`~repro.gpusim.kernel.KernelCensus` directly — the phase-aware
    prediction path measures each phase separately.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    fmax = device.arch.default_core_freq_mhz
    metrics = [device.run_at(census, fmax, workload_name=name).metrics() for _ in range(runs)]
    fp = float(np.mean([m["fp64_active"] + m["fp32_active"] for m in metrics]))
    dram = float(np.mean([m["dram_active"] for m in metrics]))
    power = float(np.mean([m["power_usage"] for m in metrics]))
    time_s = float(np.mean([m["exec_time"] for m in metrics]))
    return FeatureVector(fp, dram, fmax), power, time_s


def dataset_from_csv_dir(root: str | Path, *, per_sample: bool = True) -> DVFSDataset:
    """Rebuild a dataset from a persisted collection campaign.

    ``root`` is the ``output_dir`` a :class:`~repro.telemetry.launch.Launcher`
    wrote: one subdirectory per workload, one CSV of 20 ms samples per
    run.  This closes the collect -> persist -> reload -> train loop, so a
    campaign measured once (hours of GPU time in the paper's setting) can
    be retrained against indefinitely.
    """
    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"{root} is not a directory")
    run_blocks: list[tuple[str, float, float, dict[str, np.ndarray]]] = []
    for csv_path in sorted(root.glob("*/*.csv")):
        workload = csv_path.parent.name
        header, data = read_columns_csv(csv_path)
        if data.shape[0] == 0:
            raise ValueError(f"{csv_path}: no sample rows")
        cols = {name: data[:, j] for j, name in enumerate(header)}
        freq = float(cols["sm_app_clock"][0])
        exec_time = float(cols["exec_time"][0])
        run_blocks.append((workload, freq, exec_time, cols))
    if not run_blocks:
        raise ValueError(f"{root}: no run CSVs found (expected <workload>/<run>.csv)")

    top = max(freq for _, freq, _, _ in run_blocks)
    t_ref: dict[str, float] = {}
    for name in {w for w, _, _, _ in run_blocks}:
        refs = [t for w, f, t, _ in run_blocks if w == name and f == top]
        if not refs:
            raise ValueError(f"workload {name!r} has no run at the reference clock {top} MHz")
        t_ref[name] = float(np.mean(refs))

    xs, powers, times, slowdowns, workloads, run_indices = [], [], [], [], [], []
    for run_index, (workload, freq, exec_time, cols) in enumerate(run_blocks):
        slowdown = exec_time / t_ref[workload]
        if per_sample:
            n = cols["power_usage"].shape[0]
            xs.append(
                _feature_matrix(
                    cols["fp64_active"], cols["fp32_active"], cols["dram_active"], np.full(n, freq)
                )
            )
            powers.append(cols["power_usage"])
            times.append(np.full(n, exec_time))
            slowdowns.append(np.full(n, slowdown))
            workloads.append(np.full(n, workload))
            run_indices.append(np.full(n, run_index))
        else:
            fp = float((cols["fp64_active"] + cols["fp32_active"]).mean())
            xs.append(np.array([[fp, cols["dram_active"].mean(), freq]]))
            powers.append(np.array([cols["power_usage"].mean()]))
            times.append(np.array([exec_time]))
            slowdowns.append(np.array([slowdown]))
            workloads.append(np.array([workload]))
            run_indices.append(np.array([run_index]))
    return DVFSDataset.from_columns(
        x=np.concatenate(xs),
        power=np.concatenate(powers),
        time=np.concatenate(times),
        slowdown=np.concatenate(slowdowns),
        workloads=np.concatenate(workloads),
        run_index=np.concatenate(run_indices),
    )


def features_at_max(
    device: SimulatedGPU,
    workload: Workload,
    *,
    runs: int = 1,
    size: int | None = None,
) -> tuple[FeatureVector, float, float]:
    """Online-phase acquisition: one measurement at the default clock.

    Returns (features, mean power, mean exec time) at f_max — everything
    the prediction phase needs about an unseen application.
    """
    launcher = Launcher(device)
    artifacts = launcher.collect_at_max(
        [workload],
        runs=runs,
        sizes=None if size is None else {workload.name: size},
    )
    metrics = [a.record.metrics() for a in artifacts]
    fp = float(np.mean([m["fp64_active"] + m["fp32_active"] for m in metrics]))
    dram = float(np.mean([m["dram_active"] for m in metrics]))
    power = float(np.mean([m["power_usage"] for m in metrics]))
    time_s = float(np.mean([m["exec_time"] for m in metrics]))
    features = FeatureVector(fp, dram, device.arch.default_core_freq_mhz)
    return features, power, time_s
