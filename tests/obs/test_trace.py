"""Tracer behaviour: nesting, sinks, ring bounds, error paths, no-op."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.trace import Tracer, _NOOP


class TestEnabledTracer:
    def test_span_records_duration_and_attrs(self, ring_tracer):
        with obs.span("work", items=3) as sp:
            sp.set(done=True)
        (event,) = ring_tracer.events()
        assert event["type"] == "span"
        assert event["name"] == "work"
        assert event["dur_s"] >= 0.0
        assert event["attrs"] == {"items": 3, "done": True}
        assert event["parent_id"] is None

    def test_nesting_assigns_parent_ids(self, ring_tracer):
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        inner, recorded_outer = ring_tracer.events()
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer.span_id
        assert recorded_outer["parent_id"] is None

    def test_children_close_before_parents(self, ring_tracer):
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    pass
        names = [e["name"] for e in ring_tracer.events()]
        assert names == ["c", "b", "a"]

    def test_instant_event_binds_to_enclosing_span(self, ring_tracer):
        with obs.span("outer") as sp:
            obs.event("tick", n=1)
        tick, _ = ring_tracer.events()
        assert tick["type"] == "event"
        assert tick["parent_id"] == sp.span_id
        assert tick["attrs"] == {"n": 1}

    def test_exception_closes_span_and_marks_error(self, ring_tracer):
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        (event,) = ring_tracer.events()
        assert event["attrs"]["error"] == "RuntimeError"
        # Stack must be clean: the next span is a root again.
        with obs.span("next"):
            pass
        assert ring_tracer.events()[-1]["parent_id"] is None

    def test_ring_buffer_is_bounded(self):
        tracer = obs.configure(ring_size=8)
        for i in range(20):
            with obs.span(f"s{i}"):
                pass
        events = tracer.events()
        assert len(events) == 8
        assert events[0]["name"] == "s12"

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.configure(path)
        with obs.span("a", x=1):
            obs.event("e")
        obs.disable()
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["e", "a"]
        assert records[1]["attrs"] == {"x": 1}

    def test_configure_appends_across_sessions(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            obs.configure(path)
            with obs.span("s"):
                pass
            obs.disable()
        assert len(path.read_text().strip().splitlines()) == 2

    def test_non_serializable_attrs_are_stringified(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.configure(path)
        with obs.span("s", payload=object()):
            pass
        obs.disable()
        record = json.loads(path.read_text().strip())
        assert "object object" in record["attrs"]["payload"]

    def test_threads_nest_independently(self, ring_tracer):
        done = threading.Event()

        def worker():
            with obs.span("worker-root"):
                pass
            done.set()

        with obs.span("main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert done.is_set()
        by_name = {e["name"]: e for e in ring_tracer.events()}
        # The worker's span is a root in its own thread, not a child of
        # the main thread's open span.
        assert by_name["worker-root"]["parent_id"] is None

    def test_active_depth(self, ring_tracer):
        assert ring_tracer.active_depth() == 0
        with obs.span("a"):
            with obs.span("b"):
                assert ring_tracer.active_depth() == 2
        assert ring_tracer.active_depth() == 0


class TestDisabledTracer:
    def test_span_is_shared_noop_singleton(self):
        assert obs.get_tracer() is None
        assert obs.span("x") is _NOOP
        assert obs.span("y", attr=1) is obs.span("z")

    def test_noop_supports_full_span_api(self):
        with obs.span("x") as sp:
            sp.set(anything="goes")

    def test_event_is_noop(self):
        obs.event("nothing", n=1)  # must not raise

    def test_is_enabled_flag(self):
        assert not obs.is_enabled()
        obs.configure()
        assert obs.is_enabled()
        obs.disable()
        assert not obs.is_enabled()

    def test_bad_ring_size_rejected(self):
        with pytest.raises(ValueError):
            Tracer(ring_size=0)
