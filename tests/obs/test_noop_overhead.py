"""The disabled tracer must be effectively free on the serving hot path.

The instrumentation contract (DESIGN.md §10) is that spans stay in hot
loops permanently because the disabled path is one global read plus an
identity return.  This test quantifies that on a real flush: the spans
a tiny serving flush executes must cost < 5 % of the flush itself, and
a disabled tracer must record nothing at all.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np
import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from repro import obs
from repro.core.dataset import FeatureVector
from repro.serving import SelectionRequest, SelectionService

from tests.golden.tiny_pipeline import make_tiny_pipeline


def _requests(n: int) -> list[SelectionRequest]:
    rng = np.random.default_rng(7)
    return [
        SelectionRequest.from_features(
            FeatureVector(
                float(rng.uniform(0.05, 0.95)), float(rng.uniform(0.05, 0.95)), 1410.0
            ),
            float(rng.uniform(0.5, 20.0)),
            name=f"app-{i}",
        )
        for i in range(n)
    ]


def test_disabled_tracer_overhead_under_5pct_of_flush(tiny_models):
    assert not obs.is_enabled()
    pipeline = make_tiny_pipeline(tiny_models)
    requests = _requests(8)

    # Flush wall time with tracing disabled (fresh service per run so
    # the DNN forward actually executes — no LRU shortcut).
    flush_s = min(
        _timed(lambda: SelectionService(pipeline, max_batch_size=8).select_many(requests))
        for _ in range(5)
    )

    # Count the spans/events one flush emits (ring-only tracer).
    tracer = obs.configure()
    try:
        SelectionService(pipeline, max_batch_size=8).select_many(requests)
        spans_per_flush = len(tracer.events())
    finally:
        obs.disable()
    assert spans_per_flush >= 5  # flush + four stages

    # Cost of one disabled span, amortized over a tight loop.
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        with obs.span("noop.probe", batch=8):
            pass
    per_span_s = (time.perf_counter() - t0) / n

    overhead = spans_per_flush * per_span_s
    assert overhead < 0.05 * flush_s, (
        f"disabled tracer costs {1e6 * overhead:.1f}µs per flush "
        f"({spans_per_flush} spans x {1e9 * per_span_s:.0f}ns) — more than 5% of the "
        f"{1e6 * flush_s:.1f}µs flush"
    )


def test_disabled_tracer_emits_zero_events(tiny_models):
    assert not obs.is_enabled()
    pipeline = make_tiny_pipeline(tiny_models)
    SelectionService(pipeline, max_batch_size=8).select_many(_requests(8))
    # Installing a tracer *after* the flush proves nothing was buffered
    # anywhere while disabled.
    tracer = obs.configure()
    try:
        assert tracer.events() == []
    finally:
        obs.disable()
    # And while disabled, span handles are the shared no-op singleton.
    assert obs.span("a") is obs.span("b")


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
