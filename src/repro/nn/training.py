"""Training loop: mini-batches, 80/20 split, loss histories, early stop.

Reproduces the paper's training protocol (Section 4.3): the dataset is
split 80 % train / 20 % validation, the model trains with batch size 64,
and both losses are tracked per epoch (paper Fig. 6).  An optional
patience-based early stop captures the paper's "we stopped training here
to avoid overfitting" decision for the time model.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.nn.losses import Loss, get_loss
from repro.nn.network import FeedForwardNetwork
from repro.nn.optimizers import Optimizer, get_optimizer
from repro.nn.schedules import Schedule

__all__ = ["TrainConfig", "History", "EpochCallback", "train"]

#: Per-epoch hook: ``(epoch, train_loss, val_loss, duration_s)``.
#: ``val_loss`` is None when training without a validation split.
EpochCallback = Callable[[int, float, "float | None", float], None]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run (paper defaults)."""

    epochs: int = 100
    batch_size: int = 64
    validation_split: float = 0.2
    shuffle: bool = True
    #: Stop if validation loss hasn't improved for this many epochs
    #: (None disables early stopping).
    early_stop_patience: int | None = None
    #: Minimum relative improvement that resets the patience counter.
    early_stop_min_delta: float = 1e-4
    #: L2 weight decay coefficient applied to weight matrices (not
    #: biases), decoupled from the loss gradient (AdamW-style).
    weight_decay: float = 0.0
    #: Clip each parameter gradient's L2 norm at this value (None = off).
    grad_clip_norm: float | None = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 <= self.validation_split < 1.0:
            raise ValueError("validation_split must be in [0, 1)")
        if self.early_stop_patience is not None and self.early_stop_patience < 1:
            raise ValueError("early_stop_patience must be >= 1 or None")
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if self.grad_clip_norm is not None and self.grad_clip_norm <= 0:
            raise ValueError("grad_clip_norm must be positive or None")


@dataclass
class History:
    """Per-epoch losses, as plotted in paper Fig. 6."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    #: Wall time of each epoch (same length as ``train_loss``).
    epoch_s: list[float] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        """How many epochs actually executed."""
        return len(self.train_loss)

    @property
    def total_time_s(self) -> float:
        """Wall time across all executed epochs."""
        return sum(self.epoch_s)

    @property
    def best_val_loss(self) -> float:
        """Lowest validation loss seen (inf when no validation split)."""
        return min(self.val_loss) if self.val_loss else float("inf")


def train(
    network: FeedForwardNetwork,
    x: np.ndarray,
    y: np.ndarray,
    *,
    optimizer: Optimizer | str = "rmsprop",
    loss: Loss | str = "mse",
    config: TrainConfig | None = None,
    schedule: Schedule | None = None,
    seed: int | None = None,
    on_epoch_end: EpochCallback | None = None,
) -> History:
    """Train ``network`` in place and return the loss history.

    ``x`` is (samples, features); ``y`` is (samples,) or (samples, out).
    The validation split is taken from the *end* of a seeded shuffle, so
    repeated runs with the same seed see identical splits.  ``schedule``
    scales the optimizer's learning rate per epoch (base rate restored on
    exit).  ``on_epoch_end`` is called after every completed epoch with
    ``(epoch, train_loss, val_loss, duration_s)``; each epoch is also a
    ``nn.epoch`` trace span, and a patience-triggered stop emits an
    ``nn.early_stop`` trace event (see :mod:`repro.obs`).
    """
    config = config if config is not None else TrainConfig()
    optimizer = get_optimizer(optimizer) if isinstance(optimizer, str) else optimizer
    loss = get_loss(loss) if isinstance(loss, str) else loss

    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if y.ndim == 1:
        y = y[:, None]
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D (samples, features), got shape {x.shape}")
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"x has {x.shape[0]} samples but y has {y.shape[0]}")
    if x.shape[0] < 2:
        raise ValueError("need at least 2 samples to train")

    rng = np.random.default_rng(seed)
    order = rng.permutation(x.shape[0])
    x, y = x[order], y[order]

    n_val = int(round(config.validation_split * x.shape[0]))
    n_val = min(n_val, x.shape[0] - 1)
    if n_val > 0:
        x_train, y_train = x[:-n_val], y[:-n_val]
        x_val, y_val = x[-n_val:], y[-n_val:]
    else:
        x_train, y_train = x, y
        x_val = y_val = None

    history = History()
    best_val = float("inf")
    patience_left = config.early_stop_patience

    n = x_train.shape[0]
    base_lr = optimizer.learning_rate
    try:
        for epoch in range(config.epochs):
            t_epoch = _time.perf_counter()
            with obs.span("nn.epoch", epoch=epoch) as sp:
                if schedule is not None:
                    optimizer.learning_rate = base_lr * schedule(epoch)
                idx = rng.permutation(n) if config.shuffle else np.arange(n)
                epoch_losses = []
                for start in range(0, n, config.batch_size):
                    batch = idx[start : start + config.batch_size]
                    epoch_losses.append(
                        _train_batch(network, x_train[batch], y_train[batch], loss, optimizer, config)
                    )
                history.train_loss.append(float(np.mean(epoch_losses)))

                val = None
                if x_val is not None:
                    val = network.evaluate(x_val, y_val, loss)
                    history.val_loss.append(val)
                    if config.early_stop_patience is not None:
                        if val < best_val * (1.0 - config.early_stop_min_delta):
                            best_val = val
                            patience_left = config.early_stop_patience
                        else:
                            patience_left -= 1  # type: ignore[operator]
                            if patience_left <= 0:
                                history.stopped_early = True
                sp.set(train_loss=history.train_loss[-1], val_loss=val)
            duration = _time.perf_counter() - t_epoch
            history.epoch_s.append(duration)
            if on_epoch_end is not None:
                on_epoch_end(epoch, history.train_loss[-1], val, duration)
            if history.stopped_early:
                obs.event(
                    "nn.early_stop",
                    epoch=epoch,
                    best_val_loss=best_val,
                    patience=config.early_stop_patience,
                )
                break
    finally:
        optimizer.learning_rate = base_lr
    return history


def _train_batch(
    network: FeedForwardNetwork,
    x: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    optimizer: Optimizer,
    config: TrainConfig,
) -> float:
    """One step with optional gradient clipping and decoupled decay."""
    if config.grad_clip_norm is None and config.weight_decay == 0.0:  # repro: noqa[NUM001] — 0.0 exactly selects the fast path (config contract)
        return network.train_batch(x, y, loss, optimizer)

    y_pred = network.forward(x, training=True)
    value = loss(y_pred, y)
    network.backward(loss.gradient(y_pred, y))
    optimizer.begin_step()
    for i, layer in enumerate(network.layers):
        for name, param in layer.params.items():
            grad = layer.grads[name]
            if config.grad_clip_norm is not None:
                norm = float(np.linalg.norm(grad))
                if norm > config.grad_clip_norm:
                    grad = grad * (config.grad_clip_norm / norm)
            optimizer.update((i, name), param, grad)
            # Decoupled (AdamW-style) decay on weights only.
            if config.weight_decay > 0.0 and name == "W":
                param -= optimizer.learning_rate * config.weight_decay * param
    return value
