#!/usr/bin/env python
"""Gate on the committed serving-benchmark trajectory.

Reads ``BENCH_serving.json`` (written by
``benchmarks/test_perf_serving.py`` and committed alongside perf
changes) and fails when any scenario's committed ``current``
throughput has dropped more than ``--tolerance`` (default 10%) below
that scenario's ``best`` record.  This is a *trajectory* check on the
committed file — it never runs the benchmark itself, so it is
machine-independent and cheap enough for every CI run.

Exit codes: 0 ok, 1 regression, 2 unusable file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check(payload: dict, tolerance: float) -> list[str]:
    """Return one message per scenario whose current lags its best."""
    failures = []
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        return ["no scenarios recorded — regenerate BENCH_serving.json"]
    for name, record in sorted(scenarios.items()):
        try:
            current = float(record["selections_per_s"])
            best = float(record["best"]["selections_per_s"])
        except (KeyError, TypeError, ValueError):
            failures.append(f"{name}: malformed record (needs selections_per_s and best)")
            continue
        floor = (1.0 - tolerance) * best
        if current < floor:
            failures.append(
                f"{name}: committed {current:.0f} selections/s is "
                f"{100 * (1 - current / best):.1f}% below the best record "
                f"{best:.0f} (floor {floor:.0f})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "bench_file",
        nargs="?",
        default=Path(__file__).resolve().parent.parent / "BENCH_serving.json",
        type=Path,
        help="path to BENCH_serving.json (default: repo root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional drop below each scenario's best (default 0.10)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        print("--tolerance must be in [0, 1)", file=sys.stderr)
        return 2

    try:
        payload = json.loads(args.bench_file.read_text())
    except FileNotFoundError:
        print(f"{args.bench_file}: not found — run benchmarks/test_perf_serving.py", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"{args.bench_file}: invalid JSON ({exc})", file=sys.stderr)
        return 2

    failures = check(payload, args.tolerance)
    if failures:
        for message in failures:
            print(f"bench gate: {message}", file=sys.stderr)
        return 1
    scenarios = payload["scenarios"]
    print(
        f"bench gate: {len(scenarios)} scenarios within {100 * args.tolerance:.0f}% of "
        f"their best records ({', '.join(sorted(scenarios))})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
