"""Deterministic parallel collection campaigns.

A campaign is an embarrassingly parallel grid of (workload, freq, run)
cells — the paper's offline sweep is 21 x 61 x 3 of them — but the naive
parallelization is wrong twice over: a shared device RNG makes every
cell's noise depend on execution order, and a shared applied clock makes
concurrent cells race on device state.

This module fixes both by construction:

* the campaign plan enumerates cells in one canonical order (workload,
  then freq, then run — the same nesting the serial launcher uses), and
* every cell gets its own child RNG spawned from the device's root
  :class:`numpy.random.SeedSequence` at the cell's plan position, and is
  executed via :meth:`SimulatedGPU.run_cell`, which takes the clock
  explicitly and touches no mutable device state.

Noise therefore depends only on (device seed, cell position), never on
worker count, scheduling, or completion order: ``workers=1`` and
``workers=N`` produce bitwise-identical artifacts.  Thermal models are
inherently order-dependent (junction temperature carries across runs),
so thermally modelled devices must use the serial launcher path.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import repeat
from pathlib import Path
from time import perf_counter

import numpy as np

from repro import obs
from repro.gpusim.device import SimulatedGPU
from repro.telemetry.csvio import write_columns_csv
from repro.telemetry.launch import LaunchConfig, RunArtifact
from repro.telemetry.profile import record_columns
from repro.workloads.base import Workload

__all__ = ["CampaignCell", "plan_cells", "run_campaign"]


@dataclass(frozen=True)
class CampaignCell:
    """One (workload, freq, run) grid point of a collection campaign."""

    #: Position in the canonical campaign plan; pins the cell's RNG.
    index: int
    workload: Workload
    #: Per-workload size override (None = workload default).
    size: int | None
    #: Requested clock; snapped by the device at execution time.
    freq_mhz: float
    run_index: int


def plan_cells(workloads: list[Workload], config: LaunchConfig) -> list[CampaignCell]:
    """Enumerate the campaign grid in canonical (workload, freq, run) order.

    The order matches the serial launcher's loop nesting, so artifact
    lists from both paths line up cell-for-cell.
    """
    cells: list[CampaignCell] = []
    for workload in workloads:
        size = config.sizes.get(workload.name)
        for freq in config.freqs_mhz:
            for run_idx in range(config.runs_per_config):
                cells.append(
                    CampaignCell(
                        index=len(cells),
                        workload=workload,
                        size=size,
                        freq_mhz=freq,
                        run_index=run_idx,
                    )
                )
    return cells


def _cell_instruments():
    """Campaign counters/timings on the process-wide registry."""
    registry = obs.get_registry()
    return (
        registry.counter("telemetry_cells_total", "collection campaign cells executed"),
        registry.histogram("telemetry_cell_seconds", "wall time per campaign cell"),
    )


def _execute_cell(
    device: SimulatedGPU,
    cell: CampaignCell,
    rng: np.random.Generator,
    output_dir: Path | None,
) -> RunArtifact:
    cells_total, cell_seconds = _cell_instruments()
    t0 = perf_counter()
    with obs.span(
        "telemetry.cell",
        workload=cell.workload.name,
        freq_mhz=cell.freq_mhz,
        run=cell.run_index,
        index=cell.index,
    ):
        census = cell.workload.census(cell.size)
        record = device.run_cell(census, cell.freq_mhz, rng, workload_name=cell.workload.name)
    cells_total.inc()
    cell_seconds.observe(perf_counter() - t0)
    csv_path: Path | None = None
    if output_dir is not None:
        csv_path = (
            output_dir
            / cell.workload.name
            / f"{cell.workload.name}_{int(round(record.freq_mhz))}mhz_run{cell.run_index}.csv"
        )
        header, columns = record_columns(record)
        write_columns_csv(csv_path, header, columns)
    return RunArtifact(
        workload=cell.workload.name,
        freq_mhz=record.freq_mhz,
        run_index=cell.run_index,
        record=record,
        csv_path=csv_path,
    )


def run_campaign(
    device: SimulatedGPU,
    workloads: list[Workload],
    config: LaunchConfig,
    *,
    workers: int = 1,
) -> list[RunArtifact]:
    """Execute a collection campaign with ``workers`` concurrent cells.

    Returns artifacts in canonical plan order regardless of completion
    order, with values bitwise independent of ``workers``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if device.thermal is not None:
        raise ValueError(
            "parallel campaigns need order-independent cells, but a thermal "
            "model carries junction temperature across runs; collect "
            "sequentially (workers=None) on thermally modelled devices"
        )
    cells = plan_cells(workloads, config)
    rngs = device.spawn_cell_rngs(len(cells))
    output_dir = Path(config.output_dir) if config.output_dir is not None else None
    if workers == 1:
        return [_execute_cell(device, c, r, output_dir) for c, r in zip(cells, rngs)]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_execute_cell, repeat(device), cells, rngs, repeat(output_dir)))
