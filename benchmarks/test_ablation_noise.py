"""Ablation: sensor-noise robustness.

Shape assertions: accuracy degrades gracefully as measurement noise
scales from 0x to 8x the default — the method does not depend on
unrealistically clean DCGM data, but extreme noise does hurt.
"""

import pytest

from repro.experiments.ablations import render_ablation, run_noise_ablation


@pytest.fixture(scope="module")
def rows(ctx):
    return run_noise_ablation(ctx)


def test_noise_ablation_report(benchmark, rows, report):
    benchmark(render_ablation, "Ablation: sensor-noise robustness (power model)", rows)
    report("Ablation - sensor noise", render_ablation("Ablation: sensor-noise robustness (power model)", rows))


def test_four_noise_levels(rows):
    assert [r.variant for r in rows] == ["0x noise", "1x noise", "4x noise", "8x noise"]


def test_nominal_noise_barely_hurts(rows):
    accs = {r.variant: r.eval_accuracy for r in rows}
    assert accs["1x noise"] > accs["0x noise"] - 3.0


def test_noise_robustness_band(rows):
    """The finding: per-sample training makes the method remarkably
    noise-tolerant — accuracy stays in a narrow band even at 8x noise
    (sample noise averages out over the 20 ms rows and acts as data
    augmentation for the DNN)."""
    accs = [r.eval_accuracy for r in rows]
    assert max(accs) - min(accs) < 10.0


def test_training_fit_degrades_with_noise(rows):
    """Train-set MAPE must grow with the noise floor (it includes the
    irreducible sensor noise itself)."""
    errs = {r.variant: r.train_mape for r in rows}
    assert errs["8x noise"] > errs["1x noise"]


def test_all_levels_remain_usable(rows):
    for r in rows:
        assert r.eval_accuracy > 70.0, r.variant
