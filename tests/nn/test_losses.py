"""Loss tests: values, gradients vs finite differences, registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import MAE, MSE, Huber, get_loss

ALL_LOSSES = [MSE(), MAE(), Huber(delta=0.7)]


class TestValues:
    def test_mse_zero_on_exact(self):
        y = np.array([[1.0], [2.0]])
        assert MSE()(y, y) == 0.0

    def test_mse_known_value(self):
        assert MSE()(np.array([[2.0]]), np.array([[0.0]])) == pytest.approx(4.0)

    def test_mae_known_value(self):
        assert MAE()(np.array([[2.0], [0.0]]), np.array([[0.0], [1.0]])) == pytest.approx(1.5)

    def test_huber_quadratic_inside(self):
        h = Huber(delta=1.0)
        assert h(np.array([[0.5]]), np.array([[0.0]])) == pytest.approx(0.125)

    def test_huber_linear_outside(self):
        h = Huber(delta=1.0)
        assert h(np.array([[3.0]]), np.array([[0.0]])) == pytest.approx(2.5)

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError, match="delta"):
            Huber(delta=0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            MSE()(np.zeros((2, 1)), np.zeros((3, 1)))


@pytest.mark.parametrize("loss", ALL_LOSSES, ids=lambda l: l.name)
class TestGradients:
    def test_gradient_matches_finite_difference(self, loss):
        rng = np.random.default_rng(0)
        y_pred = rng.standard_normal((6, 2))
        y_true = rng.standard_normal((6, 2))
        grad = loss.gradient(y_pred, y_true)
        h = 1e-6
        for idx in [(0, 0), (3, 1), (5, 0)]:
            bumped = y_pred.copy()
            bumped[idx] += h
            plus = loss(bumped, y_true)
            bumped[idx] -= 2 * h
            minus = loss(bumped, y_true)
            numeric = (plus - minus) / (2 * h)
            assert grad[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_gradient_shape(self, loss):
        y = np.zeros((4, 3))
        assert loss.gradient(y, y + 1.0).shape == (4, 3)


class TestRegistry:
    def test_lookup(self):
        assert get_loss("mse").name == "mse"
        assert get_loss("MAE").name == "mae"
        assert get_loss("huber").name == "huber"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="known"):
            get_loss("crossentropy")


@given(
    preds=st.lists(st.floats(-100, 100), min_size=2, max_size=10),
    delta=st.floats(0.1, 5.0),
)
@settings(max_examples=60, deadline=None)
def test_huber_between_scaled_mae_and_mse(preds, delta):
    """Pointwise, huber <= 0.5 * squared error and huber <= delta * |err|."""
    y_pred = np.array(preds)[:, None]
    y_true = np.zeros_like(y_pred)
    h = Huber(delta=delta)(y_pred, y_true)
    mse_half = 0.5 * MSE()(y_pred, y_true)
    mae_scaled = delta * MAE()(y_pred, y_true)
    assert h <= mse_half + 1e-9
    assert h <= mae_scaled + 1e-9
