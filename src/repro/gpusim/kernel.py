"""Kernel census: the op/byte accounting the timing and power models consume.

A *census* is the frequency-independent description of one application run:
how many floating-point operations it performs (by precision), how many
bytes it moves through DRAM and over the host link, how well it occupies
the SMs, and what fraction of its wall time is serial host-side work that
GPU clocks cannot touch.

Workload definitions (``repro.workloads``) produce a census from an input
size; the simulator turns (census, clock) into time, power, and the DCGM
utilization metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["KernelCensus"]


@dataclass(frozen=True)
class KernelCensus:
    """Frequency-independent accounting of one application execution."""

    #: Double-precision floating point operations executed.
    flops_fp64: float = 0.0
    #: Single-precision (incl. tensor-core FP32/TF32 paths) operations.
    flops_fp32: float = 0.0
    #: Bytes moved between SMs/L2 and DRAM.
    dram_bytes: float = 0.0
    #: Host-link traffic (device -> host and host -> device).
    pcie_tx_bytes: float = 0.0
    pcie_rx_bytes: float = 0.0
    #: Achieved SM occupancy in [0, 1] (resident warps / max warps).
    occupancy: float = 0.75
    #: Fraction of issue slots lost to divergence, dependency stalls, and
    #: instruction mix, expressed as achievable fraction of peak in (0, 1].
    compute_efficiency: float = 0.85
    #: Achievable fraction of peak DRAM bandwidth in (0, 1].
    memory_efficiency: float = 0.80
    #: Fraction of *total* wall time at the maximum clock that is serial
    #: host work (launch gaps, CPU phases, I/O) insensitive to GPU clocks.
    serial_fraction: float = 0.02
    #: Fraction of compute-pipe busy time that does NOT scale with the SM
    #: clock (fixed-latency stalls: DRAM latency at the fixed memory clock,
    #: dependency chains, launch tails).  0 is an ideal roofline kernel;
    #: real applications sit anywhere up to ~0.6, which is what makes their
    #: measured time curves much flatter than DGEMM's (paper Fig. 8 vs
    #: Fig. 1 (b)).
    compute_latency_fraction: float = 0.0
    #: Concurrent host-side pipeline time, as a multiple of the GPU time at
    #: the maximum clock, that fully overlaps GPU execution.  When > 1 the
    #: CPU is the critical path at high clocks and wall time is flat until
    #: the GPU slows past it — the GROMACS-style DVFS-insensitive regime
    #: the paper observes in Section 5.1.
    concurrent_host_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("flops_fp64", "flops_fp32", "dram_bytes", "pcie_tx_bytes", "pcie_rx_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.flops_fp64 + self.flops_fp32 + self.dram_bytes <= 0:
            raise ValueError("census must contain some GPU work (flops or dram bytes)")
        for name in ("occupancy", "compute_efficiency", "memory_efficiency"):
            v = getattr(self, name)
            if not 0.0 < v <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {v}")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError(f"serial_fraction must be in [0, 1), got {self.serial_fraction}")
        if self.concurrent_host_fraction < 0.0:
            raise ValueError("concurrent_host_fraction must be non-negative")
        if not 0.0 <= self.compute_latency_fraction < 1.0:
            raise ValueError("compute_latency_fraction must be in [0, 1)")

    @property
    def total_flops(self) -> float:
        """All floating-point operations regardless of precision."""
        return self.flops_fp64 + self.flops_fp32

    @property
    def total_pcie_bytes(self) -> float:
        """Total host-link traffic in both directions."""
        return self.pcie_tx_bytes + self.pcie_rx_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte (infinite for DRAM-free kernels)."""
        if self.dram_bytes == 0:
            return float("inf")
        return self.total_flops / self.dram_bytes

    def scaled(self, factor: float) -> "KernelCensus":
        """Census for ``factor``x the work (all traffic scales linearly).

        Occupancy/efficiency/serial fraction are intensive properties and
        are preserved — this mirrors the paper's observation (Fig. 5) that
        activity features are insensitive to input size.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            flops_fp64=self.flops_fp64 * factor,
            flops_fp32=self.flops_fp32 * factor,
            dram_bytes=self.dram_bytes * factor,
            pcie_tx_bytes=self.pcie_tx_bytes * factor,
            pcie_rx_bytes=self.pcie_rx_bytes * factor,
        )
