"""Online frequency-selection serving layer.

Production-facing frontend over the paper's online phase: a thread-safe
:class:`~repro.serving.service.SelectionService` that micro-batches many
concurrent requests into single stacked DNN forward passes and memoizes
prediction curves in a bounded LRU, with per-stage service stats.  See
DESIGN.md §9 for the batching/caching contracts.
"""

from repro.serving.cache import LRUCache
from repro.serving.microbatch import MicroBatcher
from repro.serving.service import (
    SelectionRequest,
    SelectionService,
    ServiceResponse,
    ServiceStats,
)

__all__ = [
    "LRUCache",
    "MicroBatcher",
    "SelectionRequest",
    "SelectionService",
    "ServiceResponse",
    "ServiceStats",
]
