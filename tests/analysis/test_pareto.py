"""Pareto-front tool tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import hypervolume_2d, knee_point, pareto_front


class TestParetoFront:
    def test_simple_front(self):
        energy = np.array([3.0, 1.0, 2.0, 4.0])
        time = np.array([1.0, 2.0, 3.0, 4.0])
        front = pareto_front(energy, time)
        # (1,3) and (2,1) are non-dominated; (3,2) dominated by (1,3)?
        # point0 = (t=1,e=3); point1 = (t=2,e=1); point2 = (t=3,e=2)
        # dominated by point1; point3 dominated by everything.
        assert set(front.tolist()) == {0, 1}

    def test_front_sorted_by_time(self):
        rng = np.random.default_rng(0)
        energy = rng.uniform(1, 10, 50)
        time = rng.uniform(1, 10, 50)
        front = pareto_front(energy, time)
        assert np.all(np.diff(time[front]) >= 0)
        assert np.all(np.diff(energy[front]) < 0)

    def test_single_point(self):
        assert pareto_front(np.array([1.0]), np.array([1.0])).tolist() == [0]

    def test_duplicates_keep_one(self):
        energy = np.array([1.0, 1.0])
        time = np.array([1.0, 1.0])
        assert pareto_front(energy, time).size == 1

    def test_no_front_point_dominated(self):
        rng = np.random.default_rng(1)
        energy = rng.uniform(1, 10, 80)
        time = rng.uniform(1, 10, 80)
        front = pareto_front(energy, time)
        for i in front:
            dominated = (energy <= energy[i]) & (time <= time[i]) & (
                (energy < energy[i]) | (time < time[i])
            )
            assert not np.any(dominated), i

    def test_validation(self):
        with pytest.raises(ValueError, match="disagree"):
            pareto_front(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError, match="empty"):
            pareto_front(np.array([]), np.array([]))
        with pytest.raises(ValueError, match="finite"):
            pareto_front(np.array([np.nan]), np.array([1.0]))

    @given(seed=st.integers(0, 1000), n=st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_every_point_dominated_by_or_on_front(self, seed, n):
        rng = np.random.default_rng(seed)
        energy = rng.uniform(0, 10, n)
        time = rng.uniform(0, 10, n)
        front = set(pareto_front(energy, time).tolist())
        for i in range(n):
            if i in front:
                continue
            covered = any(
                energy[j] <= energy[i] and time[j] <= time[i] for j in front
            )
            assert covered, i


class TestKnee:
    def test_knee_on_convex_front(self):
        """On an L-shaped front the knee is the corner."""
        time = np.array([1.0, 1.05, 1.1, 2.0, 3.0])
        energy = np.array([10.0, 5.0, 1.0, 0.95, 0.9])
        knee = knee_point(energy, time)
        assert knee == 2  # the corner of the L

    def test_two_point_front(self):
        energy = np.array([2.0, 1.0])
        time = np.array([1.0, 2.0])
        assert knee_point(energy, time) == 1  # lower-energy end

    def test_knee_is_on_front(self):
        rng = np.random.default_rng(2)
        energy = rng.uniform(1, 10, 40)
        time = rng.uniform(1, 10, 40)
        assert knee_point(energy, time) in pareto_front(energy, time)


class TestHypervolume:
    def test_two_point_union(self):
        energy = np.array([3.0, 1.0])
        time = np.array([1.0, 2.0])
        hv = hypervolume_2d(energy, time, reference=(3.0, 4.0))
        assert hv == pytest.approx(4.0)  # computed by hand

    def test_dominated_point_adds_nothing(self):
        e1 = np.array([3.0, 1.0])
        t1 = np.array([1.0, 2.0])
        e2 = np.array([3.0, 1.0, 3.5])
        t2 = np.array([1.0, 2.0, 2.5])
        ref = (4.0, 5.0)
        assert hypervolume_2d(e2, t2, reference=ref) == pytest.approx(
            hypervolume_2d(e1, t1, reference=ref)
        )

    def test_better_front_bigger_volume(self):
        ref = (10.0, 10.0)
        worse = hypervolume_2d(np.array([5.0]), np.array([5.0]), reference=ref)
        better = hypervolume_2d(np.array([2.0]), np.array([2.0]), reference=ref)
        assert better > worse

    def test_points_outside_reference_ignored(self):
        hv = hypervolume_2d(np.array([100.0]), np.array([100.0]), reference=(10.0, 10.0))
        assert hv == 0.0
