"""Run manifests: hashing stability, annotation channel, file output."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.manifest import (
    MANIFEST_FILENAME,
    RunContext,
    config_hash,
    git_describe,
    start_run,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry


class TestConfigHash:
    def test_stable_under_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_changes_with_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_tolerates_non_json_values(self):
        config_hash({"path": object()})  # stringified, not an error


class TestRunContext:
    def test_finish_captures_environment(self):
        ctx = RunContext("train", ["train", "--out", "x"], {"out": "x", "seed": 3})
        ctx.annotate(seed=3, model_fingerprints={"power": "abc"})
        ctx.annotate(model_fingerprints={"time": "def"}, note="extra")
        manifest = ctx.finish(exit_code=0)
        assert manifest.command == "train"
        assert manifest.seed == 3
        assert manifest.config_hash == config_hash({"out": "x", "seed": 3})
        assert manifest.model_fingerprints == {"power": "abc", "time": "def"}
        assert manifest.extras == {"note": "extra"}
        assert manifest.wall_time_s >= 0.0
        assert manifest.exit_code == 0
        assert manifest.python and manifest.numpy

    def test_metrics_snapshot_included(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc(4)
        manifest = RunContext("x", []).finish(registry=registry)
        assert manifest.metrics["jobs_total"]["value"] == 4

    def test_to_json_parses(self):
        payload = json.loads(RunContext("x", ["x"]).finish().to_json())
        assert payload["schema"] == 1
        assert payload["command"] == "x"

    def test_process_current_run_channel(self):
        ctx = start_run("select", ["select"])
        obs.annotate(model_fingerprints={"power": "p"})
        assert obs.current_run() is ctx
        assert ctx.model_fingerprints == {"power": "p"}


class TestWriteManifest:
    def test_directory_target_gets_default_name(self, tmp_path):
        manifest = RunContext("x", []).finish()
        path = write_manifest(manifest, tmp_path)
        assert path == tmp_path / MANIFEST_FILENAME
        assert json.loads(path.read_text())["command"] == "x"

    def test_file_target_used_verbatim(self, tmp_path):
        manifest = RunContext("x", []).finish()
        target = tmp_path / "sub" / "custom.json"
        path = write_manifest(manifest, target)
        assert path == target and target.exists()

    def test_write_is_atomic_no_temp_residue(self, tmp_path):
        manifest = RunContext("x", []).finish()
        path = write_manifest(manifest, tmp_path)
        assert json.loads(path.read_text())["command"] == "x"
        # The temp file was moved into place, not left behind.
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_interrupted_replace_keeps_previous_manifest(self, tmp_path, monkeypatch):
        """A crash mid-write never leaves a truncated manifest behind."""
        import repro.obs.manifest as manifest_mod

        first = RunContext("first", []).finish()
        target = write_manifest(first, tmp_path)

        def boom(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(manifest_mod.os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            write_manifest(RunContext("second", []).finish(), tmp_path)
        monkeypatch.undo()
        # The old manifest is intact and parseable; no temp residue.
        assert json.loads(target.read_text())["command"] == "first"
        assert [p.name for p in tmp_path.iterdir()] == [target.name]


def test_git_describe_in_this_checkout():
    # The repo under test is a git checkout, so this should resolve; a
    # non-repo cwd must degrade to None, never raise.
    described = git_describe()
    assert described is None or isinstance(described, str)
    assert git_describe("/") is None or isinstance(git_describe("/"), str)
