"""Baseline persistence, multiset matching, and engine integration."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.devtools import Baseline, BaselineEntry, Finding, run_check


def _finding(rule="NUM001", path="repro/x.py", line=3, message="m") -> Finding:
    return Finding(path=path, line=line, col=0, rule_id=rule, severity="error", message=message)


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
def test_save_load_round_trip(tmp_path):
    baseline = Baseline.from_findings(
        [_finding(line=3), _finding(rule="DET002", path="repro/y.py", message="other")],
        justification="because",
    )
    target = tmp_path / "baseline.json"
    baseline.save(target)
    loaded = Baseline.load(target)
    assert sorted(e.key() for e in loaded.entries) == sorted(e.key() for e in baseline.entries)
    assert all(e.justification == "because" for e in loaded.entries)


def test_save_writes_schema_and_stable_order(tmp_path):
    baseline = Baseline(
        [
            BaselineEntry("NUM001", "repro/b.py", "m2", line=9),
            BaselineEntry("NUM001", "repro/a.py", "m1", line=1),
        ]
    )
    target = tmp_path / "baseline.json"
    baseline.save(target)
    payload = json.loads(target.read_text())
    assert payload["schema"] == 1
    assert [e["path"] for e in payload["entries"]] == ["repro/a.py", "repro/b.py"]


def test_load_missing_file_is_empty():
    assert len(Baseline.load("/nonexistent/baseline.json")) == 0


def test_load_rejects_unknown_schema(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text(json.dumps({"schema": 99, "entries": []}))
    with pytest.raises(ValueError, match="schema"):
        Baseline.load(target)


# ----------------------------------------------------------------------
# Multiset partition
# ----------------------------------------------------------------------
def test_partition_matches_on_rule_path_message_not_line():
    baseline = Baseline([BaselineEntry("NUM001", "repro/x.py", "m", line=3)])
    live, baselined, stale = baseline.partition([_finding(line=99)])
    assert live == [] and stale == []
    assert len(baselined) == 1


def test_partition_multiset_budget():
    # One entry grandfathers exactly one of two identical findings.
    baseline = Baseline([BaselineEntry("NUM001", "repro/x.py", "m")])
    live, baselined, _ = baseline.partition([_finding(line=3), _finding(line=7)])
    assert len(baselined) == 1
    assert len(live) == 1


def test_partition_reports_stale_entries():
    baseline = Baseline(
        [
            BaselineEntry("NUM001", "repro/x.py", "m"),
            BaselineEntry("DET001", "repro/gone.py", "deleted long ago"),
        ]
    )
    live, baselined, stale = baseline.partition([_finding()])
    assert live == []
    assert len(baselined) == 1
    assert [e.path for e in stale] == ["repro/gone.py"]


def test_justification_lookup():
    baseline = Baseline([BaselineEntry("NUM001", "repro/x.py", "m", justification="why")])
    assert baseline.justification_for(_finding()) == "why"
    assert baseline.justification_for(_finding(rule="DET001")) is None


# ----------------------------------------------------------------------
# Engine integration over a temporary tree
# ----------------------------------------------------------------------
_VIOLATING_MODULE = textwrap.dedent(
    """
    def f(x):
        return x == 1.5
    """
)


def _make_tree(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(_VIOLATING_MODULE)
    return tmp_path


def test_run_check_on_tmp_tree_finds_violation(tmp_path):
    report = run_check(_make_tree(tmp_path), baseline=Baseline())
    assert not report.ok
    assert [f.rule_id for f in report.findings] == ["NUM001"]
    assert report.findings[0].path == "repro/mod.py"


def test_run_check_baseline_grandfathers_tmp_tree(tmp_path):
    root = _make_tree(tmp_path)
    first = run_check(root, baseline=Baseline())
    baseline = Baseline.from_findings(first.findings, justification="fixture")
    second = run_check(root, baseline=baseline)
    assert second.ok
    assert len(second.baselined) == 1
    assert second.stale_baseline == []


def test_run_check_default_baseline_loads_committed_file(tmp_path):
    # baseline=None must pick up <root>/repro/devtools/baseline.json.
    root = _make_tree(tmp_path)
    devtools = root / "repro" / "devtools"
    first = run_check(root, baseline=Baseline())
    Baseline.from_findings(first.findings, justification="fixture").save(
        devtools / "baseline.json"
    )
    report = run_check(root)
    assert report.ok
    assert len(report.baselined) == 1


def test_run_check_reports_parse_errors(tmp_path):
    root = _make_tree(tmp_path)
    (root / "repro" / "broken.py").write_text("def oops(:\n")
    report = run_check(root, baseline=Baseline())
    assert not report.ok
    assert any(f.rule_id == "PARSE001" for f in report.parse_errors)


def test_parse_error_is_a_finding_not_a_crash(tmp_path):
    # The rest of the tree must still be checked around the broken file.
    root = _make_tree(tmp_path)
    (root / "repro" / "broken.py").write_text("def oops(:\n")
    report = run_check(root, baseline=Baseline())
    parse = [f for f in report.parse_errors if f.path == "repro/broken.py"]
    assert len(parse) == 1
    assert parse[0].rule_id == "PARSE001"
    assert parse[0].line >= 1
    # mod.py's NUM001 still surfaced — one bad file never hides the rest.
    assert any(f.rule_id == "NUM001" for f in report.findings)


def test_non_utf8_file_becomes_parse_finding(tmp_path):
    root = _make_tree(tmp_path)
    (root / "repro" / "binary.py").write_bytes(b"\xff\xfe\x00junk\x80\x81")
    report = run_check(root, baseline=Baseline())
    assert not report.ok
    parse = [f for f in report.parse_errors if f.path == "repro/binary.py"]
    assert len(parse) == 1
    assert parse[0].rule_id == "PARSE001"


def test_null_byte_file_becomes_parse_finding(tmp_path):
    # ast.parse raises ValueError (not SyntaxError) on NUL bytes.
    root = _make_tree(tmp_path)
    (root / "repro" / "nulls.py").write_text("x = 1\x00\n")
    report = run_check(root, baseline=Baseline())
    parse = [f for f in report.parse_errors if f.path == "repro/nulls.py"]
    assert len(parse) == 1
    assert parse[0].rule_id == "PARSE001"


def test_parse_error_rule_is_registered_and_listed():
    from repro.devtools import get_rule, rule_ids

    assert "PARSE001" in rule_ids()
    rule = get_rule("PARSE001")
    assert rule.summary
    assert rule.severity == "error"
