"""Append-only, manifest-backed run-history store.

The three ``BENCH_*.json`` files pin each benchmark's *latest* and
*best* numbers, but carry no history: once a new measurement overwrites
``current`` the old point is gone.  :class:`RunStore` keeps the
trajectory — one JSON line per ingested result, keyed the way run
manifests are keyed (bench name + config hash + ``git describe``), so a
point can always be traced back to the commit and configuration that
produced it.

Anything the repo measures can be ingested through one schema:

* the committed ``BENCH_*.json`` payloads
  (:func:`record_from_bench_payload` — serving, collection, obs);
* a fleet campaign's :meth:`FleetResult.metrics()
  <repro.fleet.simulator.FleetResult.metrics>` dict
  (:func:`record_from_fleet_metrics`);
* a serving :class:`~repro.serving.service.ServiceStats` snapshot
  (:func:`record_from_service_stats`);
* a run manifest written by the CLI (:func:`record_from_manifest`).

The file format is deliberately JSONL, not a database: appends are one
``write`` + ``flush`` under a lock, history diffs cleanly in git, and a
truncated final line (crash tail) is tolerated on read.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.obs.manifest import RunManifest, config_hash, git_describe

__all__ = [
    "FileLock",
    "LockTimeout",
    "RunRecord",
    "RunStore",
    "TrackedMetric",
    "tracked_metrics",
    "record_from_bench_payload",
    "record_from_fleet_metrics",
    "record_from_service_stats",
    "record_from_manifest",
]

STORE_FILENAME = "run_history.jsonl"


class LockTimeout(TimeoutError):
    """Raised when a :class:`FileLock` cannot be acquired in time."""


class FileLock:
    """Advisory inter-process lock backed by an ``O_EXCL`` pid file.

    Creation of the lock file is the atomic acquisition; the file body
    records the holder's pid so a waiter can distinguish "held" from
    "left behind by a process that died mid-append" and take the lock
    over instead of blocking forever.  Always acquire through the
    context manager — it is what guarantees the file is removed on every
    exit path, including exceptions raised while the lock is held.
    """

    def __init__(self, path: str | Path, *, timeout_s: float = 10.0, poll_s: float = 0.05) -> None:
        self.path = Path(path)
        self.timeout_s = float(timeout_s)
        self.poll_s = float(poll_s)
        self._held = False

    # ------------------------------------------------------------------
    def _try_create(self) -> bool:
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        try:
            os.write(fd, str(os.getpid()).encode("ascii"))
        finally:
            os.close(fd)
        return True

    def _holder_pid(self) -> int | None:
        """Pid recorded in the lock file, or None if unreadable/gone."""
        try:
            text = self.path.read_text(encoding="ascii").strip()
            return int(text) if text else None
        except (FileNotFoundError, ValueError, OSError):
            return None

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover - pid exists, other user
            return True
        except OSError:  # pragma: no cover - defensive
            return False
        return True

    def _steal_if_stale(self) -> None:
        """Remove the lock file when its recorded holder is dead.

        An empty/unreadable pid means the holder died between ``open``
        and ``write`` — also stale.  Removal races with other waiters
        are fine: whoever wins the subsequent ``O_EXCL`` create holds
        the lock.
        """
        pid = self._holder_pid()
        if pid is not None and (pid == os.getpid() or self._pid_alive(pid)):
            return
        if pid is None and not self.path.exists():
            return
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    def acquire(self) -> None:
        deadline = time.monotonic() + self.timeout_s
        while True:
            if self._try_create():
                self._held = True
                return
            self._steal_if_stale()
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not acquire {self.path} within {self.timeout_s:.1f}s "
                    f"(held by pid {self._holder_pid()})"
                )
            time.sleep(self.poll_s)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except FileNotFoundError:  # pragma: no cover - stolen as stale
            pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


@dataclass(frozen=True)
class RunRecord:
    """One measured point in a benchmark's trajectory."""

    schema: int
    bench: str
    config_hash: str
    git: str | None
    recorded_unix: float
    source: str
    metrics: dict[str, float]
    meta: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, default=str)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        return cls(
            schema=int(payload.get("schema", 1)),
            bench=str(payload["bench"]),
            config_hash=str(payload.get("config_hash", "")),
            git=payload.get("git"),
            recorded_unix=float(payload.get("recorded_unix", 0.0)),
            source=str(payload.get("source", "?")),
            metrics={str(k): float(v) for k, v in (payload.get("metrics") or {}).items()},
            meta=dict(payload.get("meta") or {}),
        )


class RunStore:
    """Append-only JSONL store of :class:`RunRecord` lines.

    A directory target gets the default ``run_history.jsonl`` name.
    Reads tolerate a truncated final line; appends are atomic at the
    line level (single ``write`` of one line + flush), serialized by a
    process-local ``threading.Lock`` *and* an inter-process
    :class:`FileLock` (``<store>.lock`` pid file).  A lock file left
    behind by a process that died mid-append is taken over once its
    recorded pid is dead — appenders never deadlock on a crash tail.
    """

    def __init__(self, target: str | Path, *, lock_timeout_s: float = 10.0) -> None:
        target = Path(target)
        self.path = target / STORE_FILENAME if target.is_dir() else target
        self._lock = threading.Lock()
        self._lock_timeout_s = float(lock_timeout_s)

    @property
    def lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    def append(self, record: RunRecord) -> RunRecord:
        """Persist one record (returns it for chaining)."""
        line = record.to_json() + "\n"
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with FileLock(self.lock_path, timeout_s=self._lock_timeout_s):
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(line)
                    fh.flush()
        return record

    def records(self, bench: str | None = None) -> list[RunRecord]:
        """Every stored record (optionally one bench), oldest first."""
        if not self.path.exists():
            return []
        out: list[RunRecord] = []
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # crash tail — everything before is intact
                raise
            record = RunRecord.from_dict(payload)
            if bench is None or record.bench == bench:
                out.append(record)
        return out

    def benches(self) -> list[str]:
        """Distinct bench names present, sorted."""
        return sorted({r.bench for r in self.records()})

    def trajectory(self, bench: str, metric: str) -> list[tuple[float, float]]:
        """``(recorded_unix, value)`` points for one metric, oldest first."""
        return [
            (r.recorded_unix, r.metrics[metric])
            for r in self.records(bench)
            if metric in r.metrics
        ]

    def best(
        self, bench: str, metric: str, *, higher_is_better: bool = True
    ) -> float | None:
        """Best value ever recorded for ``metric``, or None if unseen."""
        values = [v for _, v in self.trajectory(bench, metric)]
        if not values:
            return None
        return max(values) if higher_is_better else min(values)

    def latest(self, bench: str) -> RunRecord | None:
        """Most recently appended record for ``bench``."""
        records = self.records(bench)
        return records[-1] if records else None

    def __len__(self) -> int:
        return len(self.records())


# ----------------------------------------------------------------------
# Tracked hot-path metrics of the committed BENCH_* payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrackedMetric:
    """One gated metric: its committed current and best-ever values."""

    bench: str
    metric: str
    current: float
    best: float
    higher_is_better: bool


def _serving_metrics(payload: dict) -> list[TrackedMetric]:
    bench = str(payload.get("bench", "serving"))
    out = []
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        raise ValueError(f"{bench}: no scenarios recorded — regenerate the bench file")
    for name, record in sorted(scenarios.items()):
        try:
            out.append(
                TrackedMetric(
                    bench=bench,
                    metric=f"{name}.selections_per_s",
                    current=float(record["selections_per_s"]),
                    best=float(record["best"]["selections_per_s"]),
                    higher_is_better=True,
                )
            )
        except (KeyError, TypeError, ValueError):
            raise ValueError(
                f"{bench}: malformed scenario {name!r} (needs selections_per_s and best)"
            ) from None
    return out


def _collection_metrics(payload: dict) -> list[TrackedMetric]:
    bench = str(payload.get("bench", "collection"))
    try:
        current, best = payload["current"], payload["best"]
        return [
            TrackedMetric(
                bench=bench,
                metric=metric,
                current=float(current[metric]),
                best=float(best[metric]),
                higher_is_better=True,
            )
            for metric in ("runs_per_s", "samples_per_s")
        ]
    except (KeyError, TypeError, ValueError):
        raise ValueError(f"{bench}: malformed payload (needs current/best rates)") from None


def _obs_metrics(payload: dict) -> list[TrackedMetric]:
    bench = str(payload.get("bench", "obs"))
    try:
        return [
            TrackedMetric(
                bench=bench,
                metric="slowdown_vs_disabled",
                current=float(payload["current"]["slowdown_vs_disabled"]),
                best=float(payload["best"]["slowdown_vs_disabled"]),
                higher_is_better=False,
            )
        ]
    except (KeyError, TypeError, ValueError):
        raise ValueError(f"{bench}: malformed payload (needs current/best slowdown)") from None


#: bench-name prefix -> extractor for the committed BENCH_* schemas.
_EXTRACTORS = {
    "serving": _serving_metrics,
    "collection": _collection_metrics,
    "obs": _obs_metrics,
}


def tracked_metrics(payload: dict) -> list[TrackedMetric]:
    """The gated hot-path metrics of one ``BENCH_*.json`` payload.

    Raises ``ValueError`` for an unrecognized or malformed payload so
    the gate can distinguish "regressed" from "unusable".
    """
    bench = payload.get("bench")
    if not isinstance(bench, str):
        raise ValueError("payload has no 'bench' name")
    for prefix, extract in _EXTRACTORS.items():
        if bench.startswith(prefix):
            return extract(payload)
    raise ValueError(f"unrecognized bench payload {bench!r}")


# ----------------------------------------------------------------------
# Ingestion adapters
# ----------------------------------------------------------------------
def _now() -> float:
    return time.time()


def record_from_bench_payload(payload: dict, *, source: str = "bench") -> RunRecord:
    """Normalize one ``BENCH_*.json`` payload into a store record."""
    tracked = tracked_metrics(payload)
    config = payload.get("config") or payload.get("campaign") or {}
    return RunRecord(
        schema=1,
        bench=tracked[0].bench,
        config_hash=config_hash(config),
        git=git_describe(Path(__file__).parent),
        recorded_unix=_now(),
        source=source,
        metrics={t.metric: t.current for t in tracked},
        meta={
            "config": config,
            "best": {t.metric: t.best for t in tracked},
            "higher_is_better": {t.metric: t.higher_is_better for t in tracked},
        },
    )


def record_from_fleet_metrics(metrics: dict, *, source: str = "fleet") -> RunRecord:
    """Ingest a ``FleetResult.metrics()`` dict (or its written JSON)."""
    scenario = metrics.get("scenario", "?")
    key = {"scenario": scenario, "seed": metrics.get("seed")}
    numeric = {
        name: float(value)
        for name, value in metrics.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    return RunRecord(
        schema=1,
        bench=f"fleet-{scenario}",
        config_hash=config_hash(key),
        git=git_describe(Path(__file__).parent),
        recorded_unix=_now(),
        source=source,
        metrics=numeric,
        meta=key,
    )


def record_from_service_stats(stats, *, bench: str = "serving-service", source: str = "serving") -> RunRecord:
    """Ingest a serving ``ServiceStats`` snapshot (lifetime counters)."""
    metrics = {
        "requests": float(stats.requests),
        "batches": float(stats.batches),
        "mean_batch_size": float(stats.mean_batch_size),
        "cache_hits": float(stats.cache_hits),
        "cache_misses": float(stats.cache_misses),
        "hit_rate": float(stats.hit_rate),
        "curves_computed": float(stats.curves_computed),
        "measure_s": float(stats.measure_s),
        "lookup_s": float(stats.lookup_s),
        "predict_s": float(stats.predict_s),
        "select_s": float(stats.select_s),
    }
    key = {"engine": stats.engine, "max_batch_size": stats.max_batch_size}
    return RunRecord(
        schema=1,
        bench=bench,
        config_hash=config_hash(key),
        git=git_describe(Path(__file__).parent),
        recorded_unix=_now(),
        source=source,
        metrics=metrics,
        meta=key,
    )


def record_from_manifest(manifest: RunManifest | dict, *, source: str = "manifest") -> RunRecord:
    """Ingest a run manifest (the object, or its parsed JSON dict).

    Counter/gauge instruments land as their value; histograms land as
    ``<name>.count`` / ``<name>.sum``.
    """
    data = manifest if isinstance(manifest, dict) else json.loads(manifest.to_json())
    metrics: dict[str, float] = {"wall_time_s": float(data.get("wall_time_s", 0.0))}
    for name, snap in (data.get("metrics") or {}).items():
        if not isinstance(snap, dict):
            continue
        if snap.get("kind") == "histogram":
            metrics[f"{name}.count"] = float(snap.get("count", 0.0))
            metrics[f"{name}.sum"] = float(snap.get("sum", 0.0))
        elif "value" in snap:
            metrics[name] = float(snap["value"])
    return RunRecord(
        schema=1,
        bench=f"run-{data.get('command', '?')}",
        config_hash=str(data.get("config_hash", "")),
        git=data.get("git"),
        recorded_unix=float(data.get("started_unix") or _now()),
        source=source,
        metrics=metrics,
        meta={"seed": data.get("seed"), "exit_code": data.get("exit_code")},
    )
