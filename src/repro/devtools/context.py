"""Per-module analysis context: AST, import table, noqa suppressions.

Every rule sees one :class:`ModuleContext` per file.  The context does
the work every rule would otherwise repeat:

* an **import table** mapping local names to dotted origins
  (``np`` -> ``numpy``, ``_time`` -> ``time``,
  ``default_rng`` -> ``numpy.random.default_rng``), built from every
  ``import`` statement in the file including function-local ones;
* :meth:`ModuleContext.resolve`, which turns an attribute chain like
  ``np.random.default_rng`` into its fully qualified dotted name;
* the **noqa map**: physical lines carrying ``# repro: noqa[RULE]`` (or
  the blanket ``# repro: noqa``) suppress findings reported on them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.findings import Finding

__all__ = ["ModuleContext", "build_context", "context_from_source"]

#: ``# repro: noqa`` (blanket) or ``# repro: noqa[DET001,NUM001]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?")


def _scan_noqa(lines: list[str]) -> dict[int, frozenset[str] | None]:
    """Map 1-based line number -> suppressed rule ids (None = all rules)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(lines, start=1):
        if "repro:" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        raw = match.group("rules")
        if raw is None or not raw.strip():
            out[lineno] = None
        else:
            out[lineno] = frozenset(token.strip().upper() for token in raw.split(",") if token.strip())
    return out


def _resolve_relative(module: str, is_package: bool, from_module: str | None, level: int) -> str:
    """Absolute dotted origin of a (possibly relative) ``from`` import."""
    if level == 0:
        return from_module or ""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    parts = parts[: max(len(parts) - (level - 1), 0)]
    base = ".".join(parts)
    if from_module:
        return f"{base}.{from_module}" if base else from_module
    return base


def _build_imports(
    tree: ast.Module, module: str, is_package: bool
) -> tuple[dict[str, str], frozenset[str]]:
    """(local name -> dotted origin, set of all imported dotted modules)."""
    table: dict[str, str] = {}
    modules: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules.add(alias.name)
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(module, is_package, node.module, node.level)
            if base:
                modules.add(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                origin = f"{base}.{alias.name}" if base else alias.name
                modules.add(origin)
                table[alias.asname or alias.name] = origin
    return table, frozenset(modules)


@dataclass
class ModuleContext:
    """Everything a rule needs to analyse one source file."""

    rel_path: str
    module: str
    source: str
    tree: ast.Module
    lines: list[str] = field(repr=False)
    imports: dict[str, str] = field(repr=False)
    #: Every dotted module/name this file imports (for "does it use X" checks).
    imported: frozenset[str] = field(repr=False)
    noqa: dict[int, frozenset[str] | None] = field(repr=False)
    #: Shared :class:`repro.devtools.graph.ProjectIndex` for rules that set
    #: ``needs_project`` — attached by the engine, ``None`` for purely
    #: per-file runs.
    project: object | None = field(default=None, repr=False)

    @property
    def is_package(self) -> bool:
        return self.rel_path.endswith("__init__.py")

    def in_package(self, *packages: str) -> bool:
        """Whether this module lives in (or is) any of the dotted packages."""
        return any(self.module == p or self.module.startswith(p + ".") for p in packages)

    def imports_module(self, package: str) -> bool:
        """Whether the file imports ``package`` or anything inside it."""
        prefix = package + "."
        if any(m == package or m.startswith(prefix) for m in self.imported):
            return True
        return any(o == package or o.startswith(prefix) for o in self.imports.values())

    def resolve(self, node: ast.AST) -> str | None:
        """Fully qualified dotted name of a Name/Attribute chain, or None.

        Resolution goes through the import table, so only names that
        trace back to an import resolve — ``self.rng.normal`` or a local
        variable returns None, which is exactly the conservative
        behaviour rules want.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.imports.get(node.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))

    def finding(self, rule, node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node`` for ``rule``."""
        return Finding(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule.rule_id,
            severity=rule.severity,
            message=message,
        )

    def suppressed(self, finding: Finding) -> bool:
        """Whether an inline noqa on the finding's line silences it."""
        entry = self.noqa.get(finding.line, ...)
        if entry is ...:
            return False
        return entry is None or finding.rule_id in entry


def context_from_source(source: str, *, module: str, rel_path: str | None = None) -> ModuleContext:
    """Context for an in-memory source string (tests and fixtures)."""
    if rel_path is None:
        rel_path = module.replace(".", "/") + ".py"
    tree = ast.parse(source)
    is_package = rel_path.endswith("__init__.py")
    imports, imported = _build_imports(tree, module, is_package)
    lines = source.splitlines()
    return ModuleContext(
        rel_path=rel_path,
        module=module,
        source=source,
        tree=tree,
        lines=lines,
        imports=imports,
        imported=imported,
        noqa=_scan_noqa(lines),
    )


def build_context(path: Path, root: Path) -> ModuleContext:
    """Context for a file on disk; ``root`` is the directory holding ``repro/``."""
    rel = path.relative_to(root).as_posix()
    parts = rel[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    module = ".".join(parts)
    source = path.read_text(encoding="utf-8")
    ctx = context_from_source(source, module=module, rel_path=rel)
    return ctx
