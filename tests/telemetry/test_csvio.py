"""CSV persistence tests, including roundtrip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import read_samples_csv, write_samples_csv


class TestWrite:
    def test_roundtrip_basic(self, tmp_path):
        rows = [{"a": 1.0, "b": 2.5}, {"a": 3.0, "b": -4.25}]
        path = write_samples_csv(tmp_path / "x.csv", rows)
        assert read_samples_csv(path) == rows

    def test_creates_parent_dirs(self, tmp_path):
        path = write_samples_csv(tmp_path / "deep" / "nested" / "x.csv", [{"a": 1.0}])
        assert path.exists()

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            write_samples_csv(tmp_path / "x.csv", [])

    def test_ragged_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="differ"):
            write_samples_csv(tmp_path / "x.csv", [{"a": 1.0}, {"b": 2.0}])

    def test_header_preserves_order(self, tmp_path):
        rows = [{"z": 1.0, "a": 2.0, "m": 3.0}]
        path = write_samples_csv(tmp_path / "x.csv", rows)
        header = path.read_text().splitlines()[0]
        assert header == "z,a,m"


class TestRead:
    def test_non_numeric_value_raises_with_line(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("a,b\n1.0,oops\n")
        with pytest.raises(ValueError, match="bad.csv:2"):
            read_samples_csv(p)

    def test_empty_file_raises(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_samples_csv(p)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_samples_csv(tmp_path / "nope.csv")


@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_roundtrip_exact_floats(tmp_path_factory, values):
    """repr-based serialisation must round-trip doubles exactly."""
    tmp = tmp_path_factory.mktemp("csv")
    rows = [{"v": v, "idx": float(i)} for i, v in enumerate(values)]
    path = write_samples_csv(tmp / "rt.csv", rows)
    back = read_samples_csv(path)
    assert back == rows
