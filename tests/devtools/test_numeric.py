"""Numeric dataflow analysis + NUM002/SHAPE001/PERF001/PURE001.

Three layers of coverage, mirroring ``test_concurrency.py``:

* the dtype-promotion lattice checked against numpy's own
  ``np.promote_types`` (hypothesis property suite + exhaustive sweep);
* seeded bad fixtures per rule through ``check_source`` (so noqa and
  package scoping apply), each paired with a clean twin;
* the shipped tree: the four rules run clean, and the acceptance-
  criterion purity proofs (serving curve cache, fleet decision cache)
  are asserted directly against the analysis object.
"""

from __future__ import annotations

import textwrap

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.devtools import check_source
from repro.devtools.context import context_from_source
from repro.devtools.graph import ProjectIndex
from repro.devtools.numeric import (
    DTYPES,
    ArrayVal,
    broadcast_dims,
    dtype_table,
    get_numeric_analysis,
    promote,
)

_dtypes = st.sampled_from(DTYPES)


def _ids(findings):
    return [f.rule_id for f in findings]


def _check(source: str, *, module: str = "repro.serving.fixture", extra=None):
    return check_source(
        textwrap.dedent(source),
        module=module,
        rules=["NUM002", "SHAPE001", "PERF001", "PURE001"],
        extra_sources={m: textwrap.dedent(s) for m, s in (extra or {}).items()},
    )


def _analysis(modules: dict[str, str]):
    contexts = [
        context_from_source(textwrap.dedent(src), module=mod)
        for mod, src in modules.items()
    ]
    return get_numeric_analysis(ProjectIndex.from_contexts(contexts))


# ----------------------------------------------------------------------
# The promotion lattice vs numpy ground truth
# ----------------------------------------------------------------------
class TestPromotionLattice:
    def test_matches_numpy_exhaustively(self):
        for a in DTYPES:
            for b in DTYPES:
                assert promote(a, b) == np.promote_types(a, b).name, (a, b)

    @given(_dtypes, _dtypes)
    def test_commutative(self, a, b):
        assert promote(a, b) == promote(b, a)

    @given(_dtypes, _dtypes, _dtypes)
    def test_folds_agree_with_numpy_in_both_orders(self, a, b, c):
        # numpy promotion itself is *not* associative (int8,uint8 -> int16
        # -> float32, but uint8,float16 -> float16 -> float16), so the
        # lattice property to hold is: every composition order produces
        # exactly what numpy produces for that order.
        assert promote(promote(a, b), c) == np.promote_types(np.promote_types(a, b), c).name
        assert promote(a, promote(b, c)) == np.promote_types(a, np.promote_types(b, c)).name

    @given(_dtypes)
    def test_idempotent(self, a):
        assert promote(a, a) == a

    @given(_dtypes, _dtypes)
    def test_closed_over_universe(self, a, b):
        assert promote(a, b) in DTYPES


class TestBroadcast:
    def test_trailing_dims_unify(self):
        dims, rank, conflict = broadcast_dims(
            ArrayVal("float64", 2, (3, 4)), ArrayVal("float64", 1, (4,))
        )
        assert (dims, rank, conflict) == ((3, 4), 2, None)

    def test_size_one_broadcasts(self):
        dims, _, conflict = broadcast_dims(
            ArrayVal("float64", 2, (3, 1)), ArrayVal("float64", 2, (3, 7))
        )
        assert conflict is None
        assert dims == (3, 7)

    def test_concrete_mismatch_names_the_pair(self):
        _, _, conflict = broadcast_dims(
            ArrayVal("float64", 1, (3,)), ArrayVal("float64", 1, (4,))
        )
        assert conflict == (3, 4)

    def test_symbolic_dim_never_conflicts(self):
        _, _, conflict = broadcast_dims(
            ArrayVal("float64", 1, ("n",)), ArrayVal("float64", 1, (4,))
        )
        assert conflict is None


# ----------------------------------------------------------------------
# NUM002 — dtype drift off the float64 pipeline
# ----------------------------------------------------------------------
class TestNUM002:
    def test_astype_float32_in_contract_package_flagged(self):
        findings = _check(
            """
            import numpy as np

            def narrow(x: np.ndarray) -> np.ndarray:
                return x.astype(np.float32)
            """
        )
        assert _ids(findings) == ["NUM002"]
        assert "float32" in findings[0].message

    def test_float32_construction_flagged(self):
        findings = _check(
            """
            import numpy as np

            def build(n: int):
                return np.zeros(n, dtype=np.float32)
            """
        )
        assert _ids(findings) == ["NUM002"]

    def test_float64_construction_clean(self):
        assert _check(
            """
            import numpy as np

            def build(n: int):
                return np.zeros(n, dtype=np.float64)
            """
        ) == []

    def test_bare_int_truncation_flagged(self):
        findings = _check(
            """
            import numpy as np

            def pick(x: np.ndarray) -> int:
                return int(x[0])
            """
        )
        assert _ids(findings) == ["NUM002"]
        assert "int(" in findings[0].message

    def test_int_round_is_clean(self):
        assert _check(
            """
            import numpy as np

            def pick(x: np.ndarray) -> int:
                return int(round(float(x[0])))
            """
        ) == []

    def test_argmin_result_is_integral_not_flagged(self):
        assert _check(
            """
            import numpy as np

            def best(x: np.ndarray) -> int:
                return int(np.argmin(x))
            """
        ) == []

    def test_float32_outside_contract_packages_is_clean(self):
        assert _check(
            """
            import numpy as np

            def build(n: int):
                return np.zeros(n, dtype=np.float32)
            """,
            module="repro.workloads.fixture",
        ) == []

    def test_noqa_suppresses(self):
        assert _check(
            """
            import numpy as np

            def narrow(x: np.ndarray) -> np.ndarray:
                return x.astype(np.float32)  # repro: noqa[NUM002] — deliberate quantisation
            """
        ) == []


# ----------------------------------------------------------------------
# SHAPE001 — broadcast/matmul mismatch
# ----------------------------------------------------------------------
class TestSHAPE001:
    def test_matmul_inner_dim_mismatch_flagged(self):
        findings = _check(
            """
            import numpy as np

            def bad():
                a = np.zeros((3, 4))
                b = np.zeros((5, 6))
                return a @ b
            """
        )
        assert "SHAPE001" in _ids(findings)

    def test_matmul_matching_inner_dim_clean(self):
        assert _check(
            """
            import numpy as np

            def good():
                a = np.zeros((3, 4))
                b = np.zeros((4, 6))
                return a @ b
            """
        ) == []

    def test_elementwise_concrete_mismatch_flagged(self):
        findings = _check(
            """
            import numpy as np

            def bad():
                a = np.zeros(3)
                b = np.zeros(4)
                return a + b
            """
        )
        assert "SHAPE001" in _ids(findings)

    def test_broadcast_against_one_clean(self):
        assert _check(
            """
            import numpy as np

            def good():
                a = np.zeros((3, 1))
                b = np.zeros((3, 7))
                return a + b
            """
        ) == []

    def test_symbolic_dims_clean(self):
        assert _check(
            """
            import numpy as np

            def good(n: int, m: int):
                a = np.zeros(n)
                b = np.zeros(m)
                return a + b
            """
        ) == []


# ----------------------------------------------------------------------
# PERF001 — hot-path hygiene (scoped to the computed hot set)
# ----------------------------------------------------------------------
_HOT_PREAMBLE = """
import numpy as np

class FusedInferenceEngine:
    def infer(self, x: np.ndarray):
        return helper(x)
"""


def _hot(body: str) -> str:
    """A fixture whose ``helper`` is a call-graph descendant of a hot root."""
    return _HOT_PREAMBLE + textwrap.dedent(body)


class TestPERF001:
    def test_per_element_loop_in_hot_descendant_flagged(self):
        findings = _check(
            _hot("""
            def helper(x: np.ndarray):
                out = np.empty(x.shape[0])
                for i in range(x.shape[0]):
                    out[i] = x[i] * 2.0
                return out
            """)
        )
        assert "PERF001" in _ids(findings)
        assert any("hot via FusedInferenceEngine.infer" in f.message for f in findings)

    def test_same_loop_in_cold_function_is_clean(self):
        assert _check(
            """
            import numpy as np

            def helper(x: np.ndarray):
                out = np.empty(x.shape[0])
                for i in range(x.shape[0]):
                    out[i] = x[i] * 2.0
                return out
            """
        ) == []

    def test_np_append_in_hot_loop_flagged(self):
        findings = _check(
            _hot("""
            def helper(x: np.ndarray):
                acc = np.zeros(0)
                for row in x:
                    acc = np.append(acc, row)
                return acc
            """)
        )
        assert "PERF001" in _ids(findings)
        assert any("np.append" in f.message for f in findings)

    def test_append_then_stack_in_hot_loop_flagged(self):
        findings = _check(
            _hot("""
            def helper(x: np.ndarray):
                rows = []
                for row in x:
                    rows.append(row * 2.0)
                return np.stack(rows)
            """)
        )
        assert "PERF001" in _ids(findings)

    def test_loop_invariant_alloc_in_hot_loop_flagged(self):
        findings = _check(
            _hot("""
            def helper(x: np.ndarray):
                total = 0.0
                for row in x:
                    scratch = np.zeros(64)
                    total = total + float(np.sum(scratch + row))
                return total
            """)
        )
        assert "PERF001" in _ids(findings)

    def test_blocked_slice_store_is_not_per_element(self):
        # ``z[s:s+f] = ...`` chunked writes (the fused engine's blocked
        # matmul) must not be mistaken for per-element loops.
        assert _check(
            _hot("""
            def helper(x: np.ndarray):
                z = np.empty_like(x)
                f = 4
                for s in range(0, x.shape[0], f):
                    z[s : s + f] = x[s : s + f] * 2.0
                return z
            """)
        ) == []


# ----------------------------------------------------------------------
# PURE001 — cache-safety purity proofs
# ----------------------------------------------------------------------
class TestPURE001:
    def test_time_tainted_value_into_lru_cache_method_flagged(self):
        findings = _check(
            """
            import time
            import numpy as np

            class LRUCache:
                def put_many(self, entries):
                    pass

            class Service:
                _cache: LRUCache

                def flush(self, keys):
                    entries = [(k, compute(k)) for k in keys]
                    self._cache.put_many(entries)

            def compute(k):
                return time.time()
            """
        )
        assert _ids(findings) == ["PURE001"]
        assert "time.time" in findings[0].message

    def test_pure_value_into_lru_cache_clean(self):
        assert _check(
            """
            import numpy as np

            class LRUCache:
                def put_many(self, entries):
                    pass

            class Service:
                _cache: LRUCache

                def flush(self, keys):
                    entries = [(k, compute(k)) for k in keys]
                    self._cache.put_many(entries)

            def compute(k):
                return k * 2.0
            """
        ) == []

    def test_decision_cache_subscript_store_flagged(self):
        findings = _check(
            """
            import time

            class Engine:
                def __init__(self):
                    self._decision_cache = {}

                def admit(self, key):
                    self._decision_cache[key] = decide(key)

            def decide(key):
                return time.time()
            """
        )
        assert _ids(findings) == ["PURE001"]

    def test_seeded_rng_is_not_impure(self):
        assert _check(
            """
            import numpy as np

            class Engine:
                def __init__(self):
                    self._decision_cache = {}

                def admit(self, key, seed: int):
                    self._decision_cache[key] = decide(key, seed)

            def decide(key, seed):
                rng = np.random.default_rng(seed)
                return float(rng.standard_normal())
            """
        ) == []

    def test_lru_cache_decorated_impure_function_flagged(self):
        findings = _check(
            """
            import functools
            import time

            @functools.lru_cache(maxsize=64)
            def lookup(key):
                return time.time()
            """
        )
        assert _ids(findings) == ["PURE001"]

    def test_lru_cache_decorated_pure_function_clean(self):
        assert _check(
            """
            import functools

            @functools.lru_cache(maxsize=64)
            def lookup(key):
                return key * 3
            """
        ) == []

    def test_instrumentation_off_the_return_path_is_pure(self):
        # perf_counter readings that never reach the cached value must
        # not poison the proof (the real serving flush does exactly this).
        assert _check(
            """
            import time

            class Engine:
                def __init__(self):
                    self._decision_cache = {}

                def admit(self, key):
                    t0 = time.perf_counter()
                    value = decide(key)
                    elapsed = time.perf_counter() - t0
                    observe(elapsed)
                    self._decision_cache[key] = value

            def decide(key):
                return key * 2

            def observe(x):
                pass
            """
        ) == []

    def test_subclass_override_at_dynamic_site_flagged(self):
        # The static target is pure, but a subclass override reached
        # through the same call site is not — the proof must cover it.
        findings = _check(
            """
            import time

            class Policy:
                def decide(self, key):
                    return key

            class DriftingPolicy(Policy):
                def decide(self, key):
                    return time.time()

            class Engine:
                def __init__(self, policy: Policy):
                    self._decision_cache = {}
                    self.policy = policy

                def admit(self, key):
                    self._decision_cache[key] = self.policy.decide(key)
            """
        )
        assert _ids(findings) == ["PURE001"]
        assert "DriftingPolicy" in findings[0].message


# ----------------------------------------------------------------------
# Analysis layer: hot set + dtype table on fixtures
# ----------------------------------------------------------------------
class TestAnalysis:
    def test_hot_set_is_call_graph_descendants(self):
        analysis = _analysis(
            {
                "repro.fixmod": (
                    "class SelectionService:\n"
                    "    def _flush(self):\n"
                    "        inner()\n"
                    "\n"
                    "def inner():\n"
                    "    leaf()\n"
                    "\n"
                    "def leaf():\n"
                    "    pass\n"
                    "\n"
                    "def cold():\n"
                    "    pass\n"
                )
            }
        )
        assert "repro.fixmod.inner" in analysis.hot_map
        assert "repro.fixmod.leaf" in analysis.hot_map
        assert "repro.fixmod.cold" not in analysis.hot_map

    def test_return_dtype_propagates_through_calls(self):
        analysis = _analysis(
            {
                "repro.fixmod": (
                    "import numpy as np\n"
                    "\n"
                    "def make(n: int):\n"
                    "    return np.zeros((n, 3))\n"
                    "\n"
                    "def use(n: int):\n"
                    "    return make(n) * 2.0\n"
                )
            }
        )
        made = analysis.return_vals["repro.fixmod.make"]
        assert (made.dtype, made.rank) == ("float64", 2)
        used = analysis.return_vals["repro.fixmod.use"]
        assert (used.dtype, used.rank) == ("float64", 2)

    def test_dtype_table_schema(self):
        contexts = [
            context_from_source(
                "import numpy as np\n\ndef make(n: int):\n    return np.zeros(n)\n",
                module="repro.fixmod",
            )
        ]
        table = dtype_table(ProjectIndex.from_contexts(contexts))
        assert table["schema"] == 1
        assert table["lattice"] == list(DTYPES)
        assert table["functions"]["repro.fixmod.make"].startswith("float64[")
        assert "repro.fixmod.make" in table["parameters"]


# ----------------------------------------------------------------------
# The shipped tree under the four new rules
# ----------------------------------------------------------------------
def test_shipped_tree_is_clean_under_numeric_rules():
    from repro.devtools import Baseline, run_check

    report = run_check(
        rules=["NUM002", "SHAPE001", "PERF001", "PURE001"], baseline=Baseline()
    )
    details = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"numeric rules found live violations:\n{details}"


def test_shipped_cache_feeders_are_proven_pure():
    from pathlib import Path

    from repro.devtools.engine import default_root
    from repro.devtools.graph import index_from_root

    _, index, _ = index_from_root(Path(default_root()))
    analysis = get_numeric_analysis(index)
    labels = {(feed.module, feed.label) for feed in analysis.cache_feeds}
    # The acceptance criteria name these two caches explicitly.
    assert ("repro.serving.service", "LRUCache.put_many") in labels
    assert any(
        module == "repro.cluster.engine" and "decision_cache" in label
        for module, label in labels
    )
    impure = [feed for feed in analysis.cache_feeds if not feed.proven_pure]
    assert not impure, f"cache feeds failed the purity proof: {impure}"
