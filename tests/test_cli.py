"""CLI tests: every subcommand end-to-end through main()."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestSpecs:
    def test_ga100(self, capsys):
        assert main(["specs", "--arch", "GA100"]) == 0
        out = capsys.readouterr().out
        assert "1410" in out and "500 W" in out
        assert "61 usable of 81" in out

    def test_gv100(self, capsys):
        assert main(["specs", "--arch", "gv100"]) == 0
        assert "117 usable of 167" in capsys.readouterr().out

    def test_unknown_arch_exit_code(self, capsys):
        assert main(["specs", "--arch", "H100"]) == 2
        assert "unknown architecture" in capsys.readouterr().err


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    data = tmp_path_factory.mktemp("campaign")
    code = main(
        [
            "collect",
            "--workloads", "dgemm,stream,spmv,lud",
            "--freqs", "510,705,900,1095,1290,1410",
            "--runs", "1",
            "--max-samples", "6",
            "--out", str(data),
        ]
    )
    assert code == 0
    return data


@pytest.fixture(scope="module")
def models(campaign, tmp_path_factory):
    out = tmp_path_factory.mktemp("models")
    code = main(
        [
            "train",
            "--data", str(campaign),
            "--out", str(out),
            "--power-epochs", "20",
            "--time-epochs", "10",
        ]
    )
    assert code == 0
    return out


class TestCollectTrainPredict:
    """The full operational flow through the CLI."""

    def test_collect_wrote_csvs(self, campaign):
        csvs = list(campaign.glob("*/*.csv"))
        assert len(csvs) == 4 * 6  # workloads x clocks x 1 run

    def test_train_wrote_models(self, models):
        assert (models / "power.npz").exists()
        assert (models / "time.npz").exists()
        assert (models / "power.scalers.npz").exists()

    def test_predict_outputs_selections(self, models, capsys):
        code = main(["predict", "--models", str(models), "--workload", "lammps"])
        assert code == 0
        out = capsys.readouterr().out
        assert "EDP" in out and "ED2P" in out and "MHz" in out

    def test_predict_with_threshold(self, models, capsys):
        code = main(
            ["predict", "--models", str(models), "--workload", "resnet50", "--threshold", "0.01"]
        )
        assert code == 0
        assert "MHz" in capsys.readouterr().out

    def test_predict_cross_arch(self, models, capsys):
        """GA100-trained models driving a GV100 prediction via the CLI."""
        code = main(["predict", "--models", str(models), "--arch", "GV100", "--workload", "lstm"])
        assert code == 0
        assert "GV100" in capsys.readouterr().out


class TestSelect:
    def test_batched_selection_output(self, models, capsys):
        code = main(
            ["select", "--models", str(models), "--workloads", "lammps,lstm,lammps", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 applications on GA100" in out
        assert out.count("lammps") >= 2
        assert "MHz" in out
        assert "service[exact]: 3 requests" in out

    def test_fused_engine_flag(self, models, capsys):
        code = main(
            [
                "select",
                "--models",
                str(models),
                "--workloads",
                "lammps,lstm",
                "--fused",
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MHz" in out
        assert "service[fused]: 2 requests" in out

    def test_bad_shards_rejected(self, models, capsys):
        code = main(
            ["select", "--models", str(models), "--workloads", "lstm", "--shards", "0"]
        )
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_named_suites_resolve(self, models, capsys):
        assert main(["select", "--models", str(models), "--workloads", "training"]) == 0
        out = capsys.readouterr().out
        assert "dgemm" in out and "stream" in out

    def test_chunked_flushes(self, models, capsys):
        code = main(
            ["select", "--models", str(models), "--workloads", "evaluation", "--batch", "2", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max 2" in out

    def test_bad_batch_rejected(self, models, capsys):
        assert main(["select", "--models", str(models), "--workloads", "lstm", "--batch", "0"]) == 2
        assert "--batch" in capsys.readouterr().err

    def test_unknown_workload_exit_code(self, models, capsys):
        assert main(["select", "--models", str(models), "--workloads", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestServe:
    def _request_file(self, tmp_path, lines):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_workload_and_feature_requests(self, models, tmp_path, capsys):
        import json

        path = self._request_file(
            tmp_path,
            [
                '{"workload": "lammps"}',
                '{"fp_active": 0.6, "dram_active": 0.3, "time_at_max_s": 2.5, "name": "custom"}',
                "",  # blank lines are skipped
                '{"workload": "lammps"}',
            ],
        )
        code = main(["serve", "--models", str(models), "--input", str(path), "--stats"])
        assert code == 0
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["name"] for r in responses] == ["lammps", "custom", "lammps"]
        for r in responses:
            assert {"EDP", "ED2P"} == set(r["selections"])
            for sel in r["selections"].values():
                assert sel["freq_mhz"] > 0
        assert "service[exact]: 3 requests" in captured.err

    def test_invalid_lines_reported_and_exit_nonzero(self, models, tmp_path, capsys):
        import json

        path = self._request_file(
            tmp_path,
            ['{"fp_active": 0.5}', '{"workload": "lammps"}'],
        )
        code = main(["serve", "--models", str(models), "--input", str(path)])
        assert code == 1
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert "error" in lines[0]
        assert lines[1]["name"] == "lammps"

    def test_feature_repeats_hit_cache(self, models, tmp_path, capsys):
        import json

        request = '{"fp_active": 0.6, "dram_active": 0.3, "time_at_max_s": 2.5}'
        path = self._request_file(tmp_path, [request, request])
        # --batch 1 forces two flushes, so the repeat comes from the LRU.
        code = main(["serve", "--models", str(models), "--input", str(path), "--batch", "1"])
        assert code == 0
        first, second = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert not first["cached"]
        assert second["cached"]
        assert first["selections"] == second["selections"]


class TestFleetCli:
    def test_list_scenarios(self, capsys):
        assert main(["fleet", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("baseline", "capped", "flash-crowd", "node-churn", "day"):
            assert name in out

    def test_unknown_scenario_exit_code(self, capsys):
        assert main(["fleet", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_short_campaign_writes_metrics(self, tmp_path, capsys):
        out_file = tmp_path / "metrics.json"
        code = main(
            [
                "fleet",
                "--scenario", "baseline",
                "--seed", "0",
                "--duration-factor", "0.05",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        import json

        metrics = json.loads(out_file.read_text())
        assert metrics["scenario"] == "baseline"
        assert metrics["jobs_completed"] == metrics["jobs_submitted"] > 0
        out = capsys.readouterr().out
        assert "deadlines met" in out


class TestObsCli:
    """Global --trace/--manifest flags and the obs subcommand."""

    def test_trace_flag_writes_spans_and_summarize_reads_them(self, models, tmp_path, capsys):
        trace = tmp_path / "select.jsonl"
        code = main(
            ["--trace", str(trace), "select", "--models", str(models), "--workloads", "lammps,lstm"]
        )
        assert code == 0
        assert trace.exists()
        capsys.readouterr()  # drop the selection output

        assert main(["obs", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        # Per-stage span rows with counts and percentiles.
        for name in ("serving.flush", "serving.predict", "serving.select", "telemetry.cell"):
            assert name in out
        assert "p50" in out and "p99" in out

    def test_summarize_top_limits_rows(self, models, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["--trace", str(trace), "select", "--models", str(models), "--workloads", "lstm"]) == 0
        capsys.readouterr()
        assert main(["obs", "summarize", str(trace), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert len([l for l in out.splitlines() if "." in l and "p50" not in l]) <= 3

    def test_summarize_missing_file_exit_code(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_summarize_json_format(self, models, tmp_path, capsys):
        import json

        trace = tmp_path / "t.jsonl"
        assert main(["--trace", str(trace), "select", "--models", str(models), "--workloads", "lstm"]) == 0
        capsys.readouterr()
        assert main(["obs", "summarize", str(trace), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "serving.flush" in payload["spans"]
        row = payload["spans"]["serving.flush"]
        assert row["count"] == 1
        assert 0.0 <= row["p50_s"] <= row["p95_s"] <= row["p99_s"]

    def test_analyze_attribution_and_critical_path(self, models, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["--trace", str(trace), "select", "--models", str(models), "--workloads", "lammps,lstm"]) == 0
        capsys.readouterr()
        assert main(["obs", "analyze", str(trace), "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "self" in out and "cum" in out
        assert "serving.flush" in out
        assert "critical path" in out

    def test_analyze_flamegraph_export(self, models, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        out_file = tmp_path / "flame.txt"
        assert main(["--trace", str(trace), "select", "--models", str(models), "--workloads", "lstm"]) == 0
        capsys.readouterr()
        assert main(["obs", "analyze", str(trace), "--flamegraph", str(out_file)]) == 0
        assert "flamegraph:" in capsys.readouterr().err
        lines = out_file.read_text().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack and int(weight) >= 0
        assert any(line.startswith("serving.flush;") for line in lines)

    def test_analyze_diff_two_traces(self, models, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        for trace in (a, b):
            assert main(["--trace", str(trace), "select", "--models", str(models), "--workloads", "lstm"]) == 0
            capsys.readouterr()
        assert main(["obs", "analyze", str(a), "--diff", str(b), "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert "| span | count a→b | self a | self b |" in out
        assert "serving.flush" in out

    def test_analyze_missing_file_exit_code(self, tmp_path, capsys):
        assert main(["obs", "analyze", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_analyze_missing_diff_file_exit_code(self, models, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["--trace", str(trace), "select", "--models", str(models), "--workloads", "lstm"]) == 0
        capsys.readouterr()
        assert main(["obs", "analyze", str(trace), "--diff", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_export_json_round_trips_registry(self, models, capsys):
        import json

        from repro.obs import registry_from_json

        # A select run populates the process-global registry.
        assert main(["select", "--models", str(models), "--workloads", "lammps"]) == 0
        capsys.readouterr()
        assert main(["obs", "export", "--format", "json"]) == 0
        payload = capsys.readouterr().out
        restored = registry_from_json(payload)
        assert {"serving_requests_total", "serving_flush_predict_seconds"} <= set(restored.names())
        # Round trip is lossless: re-export matches byte for byte.
        assert restored.to_json() == payload.rstrip("\n")
        assert json.loads(payload)["schema"] == 1

    def test_export_prometheus_text(self, models, capsys):
        assert main(["select", "--models", str(models), "--workloads", "lstm"]) == 0
        capsys.readouterr()
        assert main(["obs", "export"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE serving_requests_total counter" in out
        assert "serving_flush_select_seconds_bucket" in out
        assert 'le="+Inf"' in out

    def test_train_drops_manifest_next_to_models(self, models):
        import json

        manifest = json.loads((models / "run_manifest.json").read_text())
        assert manifest["command"] == "train"
        assert manifest["exit_code"] == 0
        assert set(manifest["model_fingerprints"]) == {"power", "time"}
        assert manifest["config"]["power_epochs"] == 20
        assert len(manifest["config_hash"]) == 64
        assert manifest["wall_time_s"] > 0

    def test_collect_drops_manifest_next_to_campaign(self, campaign):
        import json

        manifest = json.loads((campaign / "run_manifest.json").read_text())
        assert manifest["command"] == "collect"
        assert manifest["seed"] == 0

    def test_explicit_manifest_path(self, tmp_path, capsys):
        import json

        target = tmp_path / "manifest.json"
        assert main(["--manifest", str(target), "specs", "--arch", "GA100"]) == 0
        capsys.readouterr()
        manifest = json.loads(target.read_text())
        assert manifest["command"] == "specs"
        assert manifest["argv"][0] == "--manifest"

    def test_trace_records_training_epochs(self, campaign, tmp_path, capsys):
        import json

        trace = tmp_path / "train.jsonl"
        out = tmp_path / "models"
        code = main(
            [
                "--trace", str(trace),
                "train",
                "--data", str(campaign),
                "--out", str(out),
                "--power-epochs", "4",
                "--time-epochs", "3",
            ]
        )
        assert code == 0
        capsys.readouterr()
        records = [json.loads(l) for l in trace.read_text().splitlines()]
        epochs = [r for r in records if r["name"] == "nn.epoch"]
        assert len(epochs) == 4 + 3
        assert all(r["dur_s"] >= 0 for r in epochs)


class TestExperiment:
    def test_tab1(self, capsys):
        assert main(["experiment", "tab1"]) == 0
        assert "GA100" in capsys.readouterr().out

    def test_fig1_fast(self, capsys):
        assert main(["experiment", "fig1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "DGEMM optimal energy" in out

    def test_extension_studies_listed(self):
        from repro.cli import _EXPERIMENTS

        assert {"pareto_study", "capping_study", "cluster_study", "phase_study", "gv100_savings"} <= _EXPERIMENTS

    def test_cluster_study_fast(self, capsys):
        assert main(["experiment", "cluster_study", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "model-driven" in out
