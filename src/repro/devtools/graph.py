"""Project-wide index and call graph for interprocedural rules.

The per-file rules (DET001..OBS001) see one :class:`ModuleContext` at a
time; anything that crosses a module boundary — unit flow through call
edges, seed lineage along call paths — needs a whole-program view.  This
module provides it in two layers:

* :class:`ProjectIndex` — every module, function, method, class and
  dataclass field under one scan root, with module-qualified names
  (``repro.gpusim.power.PowerModel.power``), re-export chasing
  (``repro.core.EDP`` -> ``repro.core.energy.EDP``) and light type
  inference (parameter annotations, ``self.x = Ctor(...)`` attribute
  types, local constructor assignments).
* :class:`CallGraph` — every call site in the project, classified as
  **resolved** (edge to a project definition), **external** (numpy,
  stdlib, builtins, well-known container methods) or **unresolved**
  (reported with a reason, never silently dropped).  ``repro graph``
  dumps it as JSON or DOT; the gate asserts the resolution rate.

Interprocedural rules opt in by setting ``needs_project = True``; the
engine then builds one shared index per run and exposes it as
``ctx.project``.
"""

from __future__ import annotations

import ast
import builtins
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.context import ModuleContext, context_from_source

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ProjectIndex",
    "bind_arguments",
    "index_from_sources",
]

_BUILTIN_NAMES = frozenset(dir(builtins))

#: Builtins that return a sequence preserving the element type.
_CONTAINER_PASSTHROUGH = frozenset(
    {"builtins.reversed", "builtins.sorted", "builtins.list", "builtins.tuple"}
)

#: Method names so strongly associated with stdlib/numpy receivers that a
#: call on an *untyped* receiver classifies as external instead of
#: unresolved.  Kept conservative: none of these name a project method.
_KNOWN_EXTERNAL_METHODS = frozenset(
    {
        # list / set / dict / str
        "append", "extend", "insert", "remove", "clear", "sort", "reverse",
        "add", "discard", "update", "setdefault", "popitem",
        "items", "keys", "values", "get", "pop", "count", "index",
        "join", "split", "rsplit", "strip", "lstrip", "rstrip", "replace",
        "startswith", "endswith", "format", "upper", "lower", "title",
        "encode", "decode", "splitlines", "ljust", "rjust", "zfill", "casefold",
        # numpy ndarray / scalar
        "sum", "mean", "std", "var", "min", "max", "argmin", "argmax",
        "reshape", "astype", "copy", "tolist", "ravel", "flatten", "item",
        "squeeze", "transpose", "clip", "round", "fill", "dot", "cumsum",
        "tobytes", "view", "repeat", "take", "searchsorted", "nonzero", "any", "all",
        # pathlib / io
        "read_text", "write_text", "read_bytes", "write_bytes", "open",
        "mkdir", "exists", "is_dir", "is_file", "glob", "rglob", "resolve",
        "relative_to", "as_posix", "with_suffix", "with_name", "unlink", "iterdir",
        "read", "write", "readline", "readlines", "close", "flush", "seek", "tell",
        # threading / concurrency / misc stdlib objects
        "acquire", "release", "locked", "wait", "notify", "notify_all",
        "start", "run", "cancel", "result", "submit", "shutdown", "map",
        "put", "get_nowait", "put_nowait", "task_done", "qsize",
        "groups", "group", "match", "search", "sub", "findall", "finditer",
        "most_common", "elements", "total",
        "hexdigest", "digest", "copy_to", "isoformat", "timestamp",
        "spawn", "integers", "random", "normal", "standard_normal", "choice",
        "permutation", "shuffle", "uniform", "generate_state",
    }
)


# ----------------------------------------------------------------------
# Index records
# ----------------------------------------------------------------------
@dataclass
class FunctionInfo:
    """One function or method definition, module-qualified."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False)
    params: tuple[str, ...]
    class_qualname: str | None = None
    decorators: tuple[str, ...] = ()

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def is_property(self) -> bool:
        return "property" in self.decorators or "cached_property" in self.decorators

    @property
    def returns(self) -> ast.expr | None:
        return self.node.returns


@dataclass
class ClassInfo:
    """One class definition with method table and attribute types."""

    qualname: str
    module: str
    node: ast.ClassDef = field(repr=False)
    base_exprs: tuple[ast.expr, ...] = field(default=(), repr=False)
    #: Resolved project-internal base-class qualnames (post ``_link``).
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict, repr=False)
    #: ``self.<attr>`` -> inferred type tag (see ``ProjectIndex.value_type``).
    attr_types: dict[str, tuple[str, str]] = field(default_factory=dict, repr=False)
    #: Class-level field annotations (dataclass fields and the like).
    attr_annotations: dict[str, ast.expr] = field(default_factory=dict, repr=False)

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def has_external_bases(self) -> bool:
        """Whether any base class could not be resolved inside the project."""
        return len(self.bases) < len(self.base_exprs)


# ----------------------------------------------------------------------
# Call sites
# ----------------------------------------------------------------------
@dataclass
class CallSite:
    """One call expression, classified against the project index."""

    caller: str
    module: str
    path: str
    line: int
    col: int
    expr: str
    kind: str  # "resolved" | "external" | "unresolved"
    target: str | None = None
    reason: str = ""
    #: Whether the first parameter (self) is implicitly bound.
    bound: bool = False
    node: ast.Call | None = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        payload = {
            "caller": self.caller,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "expr": self.expr,
            "kind": self.kind,
        }
        if self.target is not None:
            payload["target"] = self.target
        if self.reason:
            payload["reason"] = self.reason
        return payload


class CallGraph:
    """All call sites of one project, with resolution statistics."""

    def __init__(self, sites: list[CallSite]) -> None:
        self.sites = sites

    @property
    def edges(self) -> list[CallSite]:
        """Resolved project-internal edges only."""
        return [s for s in self.sites if s.kind == "resolved"]

    @property
    def unresolved(self) -> list[CallSite]:
        return [s for s in self.sites if s.kind == "unresolved"]

    def callers_of(self, qualname: str) -> list[CallSite]:
        """Every resolved site targeting ``qualname``."""
        return [s for s in self.edges if s.target == qualname]

    def sites_in(self, module: str) -> list[CallSite]:
        return [s for s in self.sites if s.module == module]

    def stats(self) -> dict:
        """Resolution statistics; the rate excludes external call sites."""
        n_external = sum(1 for s in self.sites if s.kind == "external")
        n_resolved = len(self.edges)
        n_unresolved = len(self.unresolved)
        candidates = n_resolved + n_unresolved
        return {
            "total_sites": len(self.sites),
            "external": n_external,
            "resolved": n_resolved,
            "unresolved": n_unresolved,
            "resolution_rate": (n_resolved / candidates) if candidates else 1.0,
        }

    def to_dict(self, *, include_external: bool = False) -> dict:
        return {
            "schema": 1,
            "stats": self.stats(),
            "edges": [s.to_dict() for s in self.edges],
            "unresolved": [s.to_dict() for s in self.unresolved],
            **(
                {"external": [s.to_dict() for s in self.sites if s.kind == "external"]}
                if include_external
                else {}
            ),
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_dot(self) -> str:
        """Graphviz digraph of the resolved edges (deduplicated)."""
        lines = ["digraph callgraph {", "  rankdir=LR;", '  node [shape=box, fontsize=10];']
        seen: set[tuple[str, str]] = set()
        for site in self.edges:
            pair = (site.caller, site.target or "")
            if pair in seen:
                continue
            seen.add(pair)
            lines.append(f'  "{site.caller}" -> "{site.target}";')
        lines.append("}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Project index
# ----------------------------------------------------------------------
class ProjectIndex:
    """Module-qualified symbol table over one set of module contexts."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleContext] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Per-module top-level definition table: name -> qualname.
        self.module_defs: dict[str, dict[str, str]] = {}
        #: Per-module top-level variable types (``_DEFAULT = build()`` singletons).
        self.module_vars: dict[str, dict[str, tuple[str, str]]] = {}
        self._graph: CallGraph | None = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_contexts(cls, contexts: list[ModuleContext]) -> "ProjectIndex":
        index = cls()
        for ctx in contexts:
            index._index_module(ctx)
        index._link()
        return index

    def _index_module(self, ctx: ModuleContext) -> None:
        self.modules[ctx.module] = ctx
        defs = self.module_defs.setdefault(ctx.module, {})
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._make_function(ctx, node, prefix=ctx.module)
                defs[node.name] = info.qualname
            elif isinstance(node, ast.ClassDef):
                cinfo = self._make_class(ctx, node)
                defs[node.name] = cinfo.qualname

    def _make_function(
        self,
        ctx: ModuleContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        prefix: str,
        class_qualname: str | None = None,
    ) -> FunctionInfo:
        args = node.args
        params = tuple(
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        )
        decorators = tuple(
            dec.id if isinstance(dec, ast.Name) else ast.unparse(dec)
            for dec in node.decorator_list
        )
        info = FunctionInfo(
            qualname=f"{prefix}.{node.name}",
            module=ctx.module,
            name=node.name,
            node=node,
            params=params,
            class_qualname=class_qualname,
            decorators=decorators,
        )
        self.functions[info.qualname] = info
        # Nested defs are indexed too (resolution targets for local calls),
        # including ones declared inside try/if/with blocks.
        for sub in _block_nested_defs(node.body):
            self._make_function(ctx, sub, prefix=info.qualname, class_qualname=class_qualname)
        return info

    def _make_class(self, ctx: ModuleContext, node: ast.ClassDef) -> ClassInfo:
        qualname = f"{ctx.module}.{node.name}"
        cinfo = ClassInfo(
            qualname=qualname,
            module=ctx.module,
            node=node,
            base_exprs=tuple(node.bases),
        )
        for sub in node.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._make_function(ctx, sub, prefix=qualname, class_qualname=qualname)
                cinfo.methods[sub.name] = info
            elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                cinfo.attr_annotations[sub.target.id] = sub.annotation
        self.classes[qualname] = cinfo
        return cinfo

    def _link(self) -> None:
        """Second pass: resolve base classes and self-attribute types."""
        for cinfo in self.classes.values():
            ctx = self.modules[cinfo.module]
            bases: list[str] = []
            for expr in cinfo.base_exprs:
                qual = self._resolve_symbol_expr(expr, ctx)
                if qual is not None and qual in self.classes:
                    bases.append(qual)
            cinfo.bases = tuple(bases)
        for cinfo in self.classes.values():
            ctx = self.modules[cinfo.module]
            # Dataclass-style field annotations typed to project classes.
            for name, ann in cinfo.attr_annotations.items():
                typ = self.annotation_type(ann, ctx)
                if typ is not None and typ[0] != "external":
                    cinfo.attr_types.setdefault(name, typ)
            for method_name in ("__init__", "__post_init__"):
                init = self.lookup_method(cinfo.qualname, method_name)
                if init is None or init.class_qualname != cinfo.qualname:
                    continue
                self._type_construction(init, cinfo, ctx)
        # Module-level singletons (``_DEFAULT = _build_default()``): typed so
        # attribute calls on them resolve from any function in the module.
        for module, ctx in self.modules.items():
            mvars = self.module_vars.setdefault(module, {})
            for stmt in ctx.tree.body:
                target = None
                value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                if not isinstance(target, ast.Name):
                    continue
                typ = None
                if isinstance(stmt, ast.AnnAssign):
                    typ = self.annotation_type(stmt.annotation, ctx)
                if typ is None and value is not None:
                    typ = self.value_type(value, {}, ctx)
                if typ is not None:
                    mvars[target.id] = typ

    def _type_construction(self, init: FunctionInfo, cinfo: ClassInfo, ctx: ModuleContext) -> None:
        """Ordered walk of a constructor body typing ``self.*`` attributes.

        Locals assigned earlier feed the attributes assigned later —
        ``registry = get_registry(); self._m = registry.counter(...)``
        types ``_m`` from ``counter``'s return annotation.  Control-flow
        blocks are descended in source order; nested defs are not.
        """
        scope = self._scope_for(init, ctx)
        local_defs = self._local_defs_for(init)

        def visit(body: list[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                target = None
                value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                if target is not None:
                    typ = None
                    if isinstance(stmt, ast.AnnAssign):
                        typ = self.annotation_type(stmt.annotation, ctx)
                    if typ is None and value is not None:
                        typ = self.value_type(value, scope, ctx, local_defs=local_defs)
                    if isinstance(target, ast.Name):
                        if typ is not None:
                            scope[target.id] = typ
                        else:
                            scope.pop(target.id, None)
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and typ is not None
                        and typ[0] != "external"
                    ):
                        cinfo.attr_types.setdefault(target.attr, typ)
                for _field, val in ast.iter_fields(stmt):
                    if isinstance(val, list):
                        visit([s for s in val if isinstance(s, ast.stmt)])
                        for sub in val:
                            if isinstance(sub, (ast.excepthandler, ast.match_case)):
                                visit(sub.body)

        visit(init.node.body)

    # -- symbol resolution ----------------------------------------------
    def resolve_name(self, dotted: str, *, _depth: int = 0) -> str | None:
        """Project qualname for a dotted name, chasing re-exports."""
        if _depth > 16:
            return None
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            module = ".".join(parts[:i])
            if module not in self.modules:
                continue
            rest = parts[i:]
            if not rest:
                return None  # a bare module is not a callable definition
            head, tail = rest[0], rest[1:]
            defs = self.module_defs.get(module, {})
            if head in defs:
                qual = defs[head]
                for attr in tail:
                    qual = f"{qual}.{attr}"
                if qual in self.functions or qual in self.classes:
                    return qual
                return None
            origin = self.modules[module].imports.get(head)
            if origin is not None:
                suffix = "." + ".".join(tail) if tail else ""
                return self.resolve_name(origin + suffix, _depth=_depth + 1)
            return None
        return None

    def _resolve_symbol_expr(self, expr: ast.expr, ctx: ModuleContext) -> str | None:
        """Qualname of a Name/Attribute expression in ``ctx``, if internal."""
        if isinstance(expr, ast.Name):
            local = self.module_defs.get(ctx.module, {}).get(expr.id)
            if local is not None:
                return local
        dotted = ctx.resolve(expr)
        if dotted is not None:
            return self.resolve_name(dotted)
        return None

    def lookup_method(self, class_qualname: str, name: str, *, _seen: frozenset = frozenset()) -> FunctionInfo | None:
        """Method by name, walking resolvable base classes depth-first."""
        if class_qualname in _seen:
            return None
        cinfo = self.classes.get(class_qualname)
        if cinfo is None:
            return None
        if name in cinfo.methods:
            return cinfo.methods[name]
        for base in cinfo.bases:
            found = self.lookup_method(base, name, _seen=_seen | {class_qualname})
            if found is not None:
                return found
        return None

    def constructor_target(self, class_qualname: str) -> str:
        """The edge target for ``ClassName(...)``: ``__init__`` when defined."""
        init = self.lookup_method(class_qualname, "__init__")
        if init is not None:
            return init.qualname
        return class_qualname

    # -- light type inference -------------------------------------------
    def annotation_type(
        self, ann: ast.expr | None, ctx: ModuleContext
    ) -> tuple[str, str] | None:
        """Type tag for an annotation expression.

        Tags: ``('class', qual)`` project instance, ``('type', qual)``
        project class object, ``('seq', qual)``/``('map', qual)`` container
        of/onto project instances, ``('external', label)`` everything else.
        """
        if ann is None:
            return None
        if isinstance(ann, ast.Constant):
            if isinstance(ann.value, str):
                try:
                    return self.annotation_type(ast.parse(ann.value, mode="eval").body, ctx)
                except SyntaxError:
                    return None
            return None
        if isinstance(ann, (ast.Name, ast.Attribute)):
            qual = self._resolve_symbol_expr(ann, ctx)
            if qual is not None and qual in self.classes:
                return ("class", qual)
            dotted = ctx.resolve(ann)
            if dotted is not None and not _is_project_dotted(dotted, self):
                return ("external", dotted)
            if dotted is None and isinstance(ann, ast.Name) and qual is None:
                # A plain name that is neither a project class nor an import:
                # a builtin (float, dict) or a module-level type alias.
                return ("external", ann.id)
            return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            left = self.annotation_type(ann.left, ctx)
            if left is not None and left[0] == "class":
                return left
            right = self.annotation_type(ann.right, ctx)
            if right is not None and right[0] == "class":
                return right
            return left or right
        if isinstance(ann, ast.Subscript):
            dotted = ctx.resolve(ann.value) or ""
            head = dotted.rsplit(".", 1)[-1] if dotted else (
                ann.value.id if isinstance(ann.value, ast.Name) else ""
            )
            if head == "Optional":
                return self.annotation_type(ann.slice, ctx)
            if head == "Annotated" and isinstance(ann.slice, ast.Tuple) and ann.slice.elts:
                return self.annotation_type(ann.slice.elts[0], ctx)
            if head == "type" or head == "Type":
                elem = self.annotation_type(ann.slice, ctx)
                if elem is not None and elem[0] == "class":
                    return ("type", elem[1])
                return ("external", "type-object")
            if head in ("list", "List", "tuple", "Tuple", "set", "frozenset",
                        "Sequence", "Iterable", "Iterator", "Collection"):
                elem_ann = ann.slice
                if isinstance(elem_ann, ast.Tuple) and elem_ann.elts:
                    elem_ann = elem_ann.elts[0]
                elem = self.annotation_type(elem_ann, ctx)
                if elem is not None and elem[0] == "class":
                    return ("seq", elem[1])
                return ("external", "generic-container")
            if head in ("dict", "Dict", "Mapping", "MutableMapping", "defaultdict"):
                if isinstance(ann.slice, ast.Tuple) and len(ann.slice.elts) == 2:
                    val = self.annotation_type(ann.slice.elts[1], ctx)
                    if val is not None and val[0] == "class":
                        return ("map", val[1])
                return ("external", "generic-container")
            return ("external", "generic-container")
        return None

    def _scope_for(self, fn: FunctionInfo, ctx: ModuleContext) -> dict[str, tuple[str, str]]:
        """Initial type scope of one function: self + annotated params."""
        scope: dict[str, tuple[str, str]] = {}
        if fn.class_qualname is not None and fn.params:
            if fn.params[0] == "self":
                scope["self"] = ("class", fn.class_qualname)
            elif fn.params[0] == "cls":
                scope["cls"] = ("type", fn.class_qualname)
        args = fn.node.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            typ = self.annotation_type(a.annotation, ctx)
            if typ is not None:
                scope.setdefault(a.arg, typ)
        return scope

    def value_type(
        self,
        expr: ast.expr,
        scope: dict[str, tuple[str, str]],
        ctx: ModuleContext,
        *,
        local_defs: dict[str, str] | None = None,
        _depth: int = 0,
    ) -> tuple[str, str] | None:
        """Best-effort type of an expression under ``scope``."""
        if _depth > 12:
            return None
        if isinstance(expr, ast.Name):
            typ = scope.get(expr.id)
            if typ is not None:
                return typ
            # Module-level fallbacks: a class used as a value, a typed
            # module singleton (``_DEFAULT``), or an imported project class.
            qual = self.module_defs.get(ctx.module, {}).get(expr.id)
            if qual is None:
                origin = ctx.imports.get(expr.id)
                if origin is not None:
                    qual = self.resolve_name(origin)
            if qual is not None and qual in self.classes:
                return ("type", qual)
            return self.module_vars.get(ctx.module, {}).get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.value_type(expr.value, scope, ctx, local_defs=local_defs, _depth=_depth + 1)
            if base is None:
                return None
            if base[0] == "external":
                return ("external", f"{base[1]}.{expr.attr}")
            if base[0] in ("seq", "map"):
                return None  # container attribute access: nothing useful
            cinfo = self.classes.get(base[1])
            if cinfo is None:
                return None
            attr_qual = self._class_attr_type(base[1], expr.attr)
            if attr_qual is not None:
                return attr_qual
            prop = self.lookup_method(base[1], expr.attr)
            if prop is not None and prop.is_property:
                owner_ctx = self.modules.get(prop.module, ctx)
                return self.annotation_type(prop.returns, owner_ctx)
            return None
        if isinstance(expr, ast.Subscript):
            base = self.value_type(expr.value, scope, ctx, local_defs=local_defs, _depth=_depth + 1)
            if base is not None and base[0] in ("seq", "map"):
                return ("class", base[1])
            return None
        if isinstance(expr, ast.Call):
            site = self.classify_call(expr, scope, ctx, caller="<expr>", local_defs=local_defs)
            if site.kind == "external":
                # reversed()/sorted()/list()/tuple() preserve element types.
                if site.target in _CONTAINER_PASSTHROUGH and expr.args:
                    inner = self.value_type(expr.args[0], scope, ctx, local_defs=local_defs, _depth=_depth + 1)
                    if inner is not None and inner[0] == "seq":
                        return inner
                return ("external", site.target or site.expr)
            if site.kind == "resolved" and site.target is not None:
                fn = self.functions.get(site.target)
                if fn is not None:
                    if fn.name == "__init__" and fn.class_qualname is not None:
                        return ("class", fn.class_qualname)
                    owner_ctx = self.modules.get(fn.module, ctx)
                    return self.annotation_type(fn.returns, owner_ctx)
                if site.target in self.classes:
                    return ("class", site.target)
            return None
        if isinstance(expr, ast.IfExp):
            body = self.value_type(expr.body, scope, ctx, local_defs=local_defs, _depth=_depth + 1)
            if body is not None and body[0] == "class":
                return body
            orelse = self.value_type(expr.orelse, scope, ctx, local_defs=local_defs, _depth=_depth + 1)
            if orelse is not None and orelse[0] == "class":
                return orelse
            return body or orelse
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                typ = self.value_type(value, scope, ctx, local_defs=local_defs, _depth=_depth + 1)
                if typ is not None and typ[0] == "class":
                    return typ
            return None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            # ``[Model(...) for _ in range(n)]`` builds a typed sequence;
            # element types that don't resolve stay opaque literals.
            elem = self.value_type(expr.elt, scope, ctx, local_defs=local_defs, _depth=_depth + 1)
            if elem is not None and elem[0] == "class":
                return ("seq", elem[1])
            return ("external", "literal")
        if isinstance(expr, ast.DictComp):
            val = self.value_type(expr.value, scope, ctx, local_defs=local_defs, _depth=_depth + 1)
            if val is not None and val[0] == "class":
                return ("map", val[1])
            return ("external", "literal")
        if isinstance(
            expr,
            (ast.Constant, ast.List, ast.Tuple, ast.Dict, ast.Set, ast.JoinedStr,
             ast.Compare, ast.FormattedValue),
        ):
            return ("external", "literal")
        return None

    def _class_attr_type(
        self, class_qualname: str, attr: str, *, _seen: frozenset = frozenset()
    ) -> tuple[str, str] | None:
        if class_qualname in _seen:
            return None
        cinfo = self.classes.get(class_qualname)
        if cinfo is None:
            return None
        if attr in cinfo.attr_types:
            return cinfo.attr_types[attr]
        if attr in cinfo.attr_annotations:
            typ = self.annotation_type(cinfo.attr_annotations[attr], self.modules[cinfo.module])
            if typ is not None:
                return typ
        for base in cinfo.bases:
            found = self._class_attr_type(base, attr, _seen=_seen | {class_qualname})
            if found is not None:
                return found
        return None

    # -- call classification --------------------------------------------
    def classify_call(
        self,
        call: ast.Call,
        scope: dict[str, tuple[str, str]],
        ctx: ModuleContext,
        *,
        caller: str,
        local_defs: dict[str, str] | None = None,
    ) -> CallSite:
        func = call.func
        expr = ast.unparse(func)

        def site(kind: str, target: str | None = None, reason: str = "", bound: bool = False) -> CallSite:
            return CallSite(
                caller=caller,
                module=ctx.module,
                path=ctx.rel_path,
                line=call.lineno,
                col=call.col_offset,
                expr=expr,
                kind=kind,
                target=target,
                reason=reason,
                bound=bound,
                node=call,
            )

        # super().method(...) -> first resolvable base's method.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            enclosing = scope.get("self") or scope.get("cls")
            if enclosing is not None and enclosing[0] == "class":
                cinfo = self.classes.get(enclosing[1])
                for base in cinfo.bases if cinfo else ():
                    method = self.lookup_method(base, func.attr)
                    if method is not None:
                        return site("resolved", method.qualname, bound=True)
            return site("external", None, reason="super() outside an indexed class")

        if isinstance(func, ast.Name):
            name = func.id
            if local_defs and name in local_defs:
                return site("resolved", local_defs[name])
            local_type = scope.get(name)
            if local_type is not None:
                if local_type[0] == "external":
                    return site("external", local_type[1])
                if local_type[0] == "type":
                    return site("resolved", self.constructor_target(local_type[1]), bound=True)
                if local_type[0] in ("seq", "map"):
                    return site("unresolved", reason=f"call of a container of {local_type[1]}")
                call_method = self.lookup_method(local_type[1], "__call__")
                if call_method is not None:
                    return site("resolved", call_method.qualname, bound=True)
                if _class_has_external_bases(self, local_type[1]):
                    return site("external", f"<{local_type[1]}>.__call__")
                return site("unresolved", reason=f"call of {local_type[1]} instance without __call__")
            defs = self.module_defs.get(ctx.module, {})
            if name in defs:
                qual = defs[name]
                if qual in self.classes:
                    return site("resolved", self.constructor_target(qual), bound=True)
                return site("resolved", qual)
            origin = ctx.imports.get(name)
            if origin is not None:
                qual = self.resolve_name(origin)
                if qual is not None:
                    if qual in self.classes:
                        return site("resolved", self.constructor_target(qual), bound=True)
                    return site("resolved", qual)
                if _is_project_dotted(origin, self):
                    return site("unresolved", reason=f"import {origin} not found in index")
                return site("external", origin)
            if name in _BUILTIN_NAMES:
                return site("external", f"builtins.{name}")
            mvar = self.module_vars.get(ctx.module, {}).get(name)
            if mvar is not None and mvar[0] == "external":
                return site("external", mvar[1])
            return site("unresolved", reason=f"unknown name {name!r}")

        if isinstance(func, ast.Attribute):
            dotted = ctx.resolve(func)
            if dotted is not None:
                qual = self.resolve_name(dotted)
                if qual is not None:
                    if qual in self.classes:
                        return site("resolved", self.constructor_target(qual), bound=True)
                    return site("resolved", qual)
                if not _is_project_dotted(dotted, self):
                    return site("external", dotted)
            base_type = self.value_type(func.value, scope, ctx, local_defs=local_defs)
            if base_type is not None:
                if base_type[0] == "external":
                    return site("external", f"{base_type[1]}.{func.attr}")
                if base_type[0] in ("seq", "map"):
                    if func.attr in _KNOWN_EXTERNAL_METHODS:
                        return site("external", f"<container>.{func.attr}")
                    return site("unresolved", reason=f"method .{func.attr} on a container")
                if base_type[0] == "type":
                    method = self.lookup_method(base_type[1], func.attr)
                    if method is not None:
                        bound = "classmethod" in method.decorators
                        return site("resolved", method.qualname, bound=bound)
                method = self.lookup_method(base_type[1], func.attr)
                if method is not None:
                    return site("resolved", method.qualname, bound=True)
                attr_type = self._class_attr_type(base_type[1], func.attr)
                if attr_type is not None:
                    if attr_type[0] == "external":
                        return site("external", f"{attr_type[1]}.__call__")
                    if attr_type[0] == "class":
                        call_method = self.lookup_method(attr_type[1], "__call__")
                        if call_method is not None:
                            return site("resolved", call_method.qualname, bound=True)
                if func.attr in _KNOWN_EXTERNAL_METHODS:
                    return site("external", f"<{base_type[1]}>.{func.attr}")
                if _class_has_external_bases(self, base_type[1]):
                    # The method must come from the unindexed external base
                    # (e.g. ast.NodeVisitor.generic_visit).
                    return site("external", f"<{base_type[1]} base>.{func.attr}")
                return site(
                    "unresolved",
                    reason=f"no method {func.attr!r} on {base_type[1]}",
                )
            if func.attr in _KNOWN_EXTERNAL_METHODS:
                return site("external", f"<unknown>.{func.attr}")
            return site("unresolved", reason=f"receiver type of .{func.attr} unknown")

        # Calling the result of another expression: ``Sigmoid()(x)``,
        # ``registry[name]()`` — resolvable when the value type is known.
        value = self.value_type(func, scope, ctx, local_defs=local_defs)
        if value is not None:
            if value[0] == "external":
                return site("external", f"{value[1]}.__call__")
            if value[0] == "type":
                return site("resolved", self.constructor_target(value[1]), bound=True)
            if value[0] == "class":
                call_method = self.lookup_method(value[1], "__call__")
                if call_method is not None:
                    return site("resolved", call_method.qualname, bound=True)
        return site("unresolved", reason="dynamic callee expression")

    # -- call graph ------------------------------------------------------
    def call_graph(self) -> CallGraph:
        """Every call site in every indexed module (built once, cached)."""
        if self._graph is not None:
            return self._graph
        sites: list[CallSite] = []
        for ctx in self.modules.values():
            sites.extend(self._module_sites(ctx))
        self._graph = CallGraph(sites)
        return self._graph

    def _module_sites(self, ctx: ModuleContext) -> list[CallSite]:
        sites: list[CallSite] = []
        # Module-level statements (decorators, constants, __all__ plumbing).
        module_stmts = [
            stmt
            for stmt in ctx.tree.body
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        sites.extend(self._scan_body(module_stmts, {}, ctx, caller=ctx.module, local_defs={}))
        for fn in self.functions.values():
            if fn.module != ctx.module:
                continue
            scope = self._scope_for(fn, ctx)
            local_defs = self._local_defs_for(fn)
            body = [
                stmt
                for stmt in fn.node.body
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            sites.extend(self._scan_body(body, scope, ctx, caller=fn.qualname, local_defs=local_defs))
        return sites

    def _local_defs_for(self, fn: FunctionInfo) -> dict[str, str]:
        """Closure-visible nested defs: own plus every enclosing function's.

        A nested helper can call its siblings (and itself) by bare name;
        outer scopes are added first so inner definitions shadow them.
        """
        chain = [fn]
        parent_qual = fn.qualname.rsplit(".", 1)[0]
        while parent_qual in self.functions:
            chain.append(self.functions[parent_qual])
            parent_qual = parent_qual.rsplit(".", 1)[0]
        defs: dict[str, str] = {}
        for enclosing in reversed(chain):
            for sub in _block_nested_defs(enclosing.node.body):
                defs[sub.name] = f"{enclosing.qualname}.{sub.name}"
        return defs

    def _scan_body(
        self,
        body: list[ast.stmt],
        scope: dict[str, tuple[str, str]],
        ctx: ModuleContext,
        *,
        caller: str,
        local_defs: dict[str, str],
    ) -> list[CallSite]:
        """Walk statements in source order, tracking assignment types."""
        sites: list[CallSite] = []

        def scan_expr(expr: ast.expr) -> None:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    sites.append(
                        self.classify_call(node, scope, ctx, caller=caller, local_defs=local_defs)
                    )

        def scan_stmt(stmt: ast.stmt) -> None:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                return  # nested defs are scanned as their own callers
            if isinstance(stmt, ast.Assign):
                scan_expr(stmt.value)
                typ = self.value_type(stmt.value, scope, ctx, local_defs=local_defs)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if typ is not None:
                            scope[target.id] = typ
                        else:
                            scope.pop(target.id, None)
                return
            if isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    scan_expr(stmt.value)
                if isinstance(stmt.target, ast.Name):
                    typ = self.annotation_type(stmt.annotation, ctx)
                    if typ is None and stmt.value is not None:
                        typ = self.value_type(stmt.value, scope, ctx, local_defs=local_defs)
                    if typ is not None:
                        scope[stmt.target.id] = typ
                return
            if isinstance(stmt, (ast.For, ast.AsyncFor)) and isinstance(stmt.target, ast.Name):
                scan_expr(stmt.iter)
                iter_type = self.value_type(stmt.iter, scope, ctx, local_defs=local_defs)
                if iter_type is not None and iter_type[0] == "seq":
                    scope[stmt.target.id] = ("class", iter_type[1])
                else:
                    scope.pop(stmt.target.id, None)
                for child in (*stmt.body, *stmt.orelse):
                    scan_stmt(child)
                return
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    scan_stmt(child)
                elif isinstance(child, ast.expr):
                    scan_expr(child)
                elif isinstance(child, (ast.withitem, ast.excepthandler)):
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.stmt):
                            scan_stmt(sub)
                        elif isinstance(sub, ast.expr):
                            scan_expr(sub)

        for stmt in body:
            scan_stmt(stmt)
        return sites


def _block_nested_defs(stmts: list[ast.stmt]) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Function defs in a statement list, descending into control-flow
    blocks (if/for/while/try/with/match) but never into nested scopes —
    a def inside a ``try:`` belongs to the enclosing function, a def
    inside another def does not."""
    found: list[ast.FunctionDef | ast.AsyncFunctionDef] = []

    def visit(body: list) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.append(stmt)
            elif not isinstance(stmt, ast.ClassDef):
                for _field, value in ast.iter_fields(stmt):
                    if isinstance(value, list):
                        visit([s for s in value if isinstance(s, ast.stmt)])
                        for sub in value:
                            if isinstance(sub, (ast.excepthandler, ast.match_case)):
                                visit(sub.body)

    visit(stmts)
    return found


def _is_project_dotted(dotted: str, index: ProjectIndex) -> bool:
    """Whether a dotted name lives under any indexed top-level package."""
    head = dotted.split(".", 1)[0]
    return any(m == head or m.startswith(head + ".") for m in index.modules)


def _class_has_external_bases(
    index: ProjectIndex, class_qualname: str, *, _seen: frozenset = frozenset()
) -> bool:
    """Whether the class (or any resolved ancestor) inherits from outside the project."""
    if class_qualname in _seen:
        return False
    cinfo = index.classes.get(class_qualname)
    if cinfo is None:
        return False
    if cinfo.has_external_bases:
        return True
    return any(
        _class_has_external_bases(index, base, _seen=_seen | {class_qualname})
        for base in cinfo.bases
    )


# ----------------------------------------------------------------------
# Argument binding (used by DET003 and the units pass)
# ----------------------------------------------------------------------
def bind_arguments(site: CallSite, fn: FunctionInfo) -> dict[str, ast.expr]:
    """Map call-site argument expressions to the callee's parameter names.

    Bound calls (methods, constructors) skip the implicit first
    parameter.  ``*args``/``**kwargs`` at the call site end positional
    matching early rather than guessing.
    """
    call = site.node
    if call is None:
        return {}
    params = list(fn.params)
    if site.bound and params and params[0] in ("self", "cls"):
        params = params[1:]
    binding: dict[str, ast.expr] = {}
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(params):
            binding[params[i]] = arg
    for kw in call.keywords:
        if kw.arg is not None:
            binding[kw.arg] = kw.value
    return binding


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def index_from_sources(sources: dict[str, str]) -> tuple[dict[str, ModuleContext], ProjectIndex]:
    """Index a set of in-memory modules (tests and fixtures).

    ``sources`` maps dotted module names to source text; returns the
    contexts (keyed by module) and the built index.
    """
    contexts = {
        module: context_from_source(text, module=module) for module, text in sources.items()
    }
    index = ProjectIndex.from_contexts(list(contexts.values()))
    for ctx in contexts.values():
        ctx.project = index
    return contexts, index


def index_from_root(root: Path) -> tuple[list[ModuleContext], ProjectIndex, list]:
    """Index every parseable source file under ``root/repro``.

    Returns (contexts, index, skipped) where ``skipped`` holds
    ``(path, exception)`` pairs for files that failed to parse — callers
    decide whether that is fatal (the engine reports PARSE001).
    """
    from repro.devtools.engine import iter_source_files

    contexts: list[ModuleContext] = []
    skipped: list[tuple[Path, Exception]] = []
    for path in iter_source_files(root):
        from repro.devtools.context import build_context

        try:
            contexts.append(build_context(path, root))
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            skipped.append((path, exc))
    index = ProjectIndex.from_contexts(contexts)
    for ctx in contexts:
        ctx.project = index
    return contexts, index, skipped
