"""Quickstart: train the models, pick an energy-optimal GPU frequency.

Reproduces the paper's end-to-end flow in one page:

1. collect the training sweep (micro-benchmarks + SPEC ACCEL) on the
   simulated A100 across all 61 usable DVFS configurations,
2. train the power and time DNNs,
3. run an *unseen* application (LAMMPS) once at the maximum clock,
4. predict power/time/energy across the whole design space and select
   the optimal clock by EDP and ED2P.

Run:  python examples/quickstart.py
"""

from repro.core import FrequencySelectionPipeline
from repro.gpusim import GA100, SimulatedGPU
from repro.workloads import get_workload, training_workloads


def main() -> None:
    # One simulated A100 board.  max_samples_per_run bounds the 20 ms
    # sensor rows kept per run; the paper profile uses more, this is the
    # few-seconds demo setting.
    device = SimulatedGPU(GA100, seed=42, max_samples_per_run=8)

    print("== Offline phase: collect training sweep and fit the DNNs ==")
    pipeline = FrequencySelectionPipeline(device, seed=0)
    dataset = pipeline.fit_offline(training_workloads(), runs_per_config=1)
    print(f"training dataset: {len(dataset)} samples "
          f"({len(dataset.workload_names)} workloads x 61 clocks)")
    print(f"power model:  {pipeline.power_model.history.epochs_run} epochs, "
          f"final val loss {pipeline.power_model.history.val_loss[-1]:.4f}")
    print(f"time model:   {pipeline.time_model.history.epochs_run} epochs, "
          f"final val loss {pipeline.time_model.history.val_loss[-1]:.4f}")

    print("\n== Online phase: one run of LAMMPS at the default clock ==")
    result = pipeline.run_online(get_workload("lammps"))
    print(f"measured at {device.arch.default_core_freq_mhz:.0f} MHz: "
          f"{result.measured_power_at_max_w:.0f} W, {result.measured_time_at_max_s:.2f} s")
    print(f"features: fp_active={result.features.fp_active:.2f}, "
          f"dram_active={result.features.dram_active:.2f}")

    for name in ("EDP", "ED2P"):
        sel = result.selection(name)
        print(f"\n{name} optimal clock: {sel.freq_mhz:.0f} MHz")
        print(f"  projected energy saving:   {100 * sel.energy_saving:5.1f} %")
        print(f"  projected time degradation: {100 * sel.perf_degradation:5.1f} %")


if __name__ == "__main__":
    main()
