"""Epsilon-SVR (SMO) tests."""

import numpy as np
import pytest

from repro.baselines import SVR


class TestLinearKernel:
    def test_recovers_linear_function(self, rng):
        x = rng.uniform(-1, 1, size=(150, 2))
        y = 2.0 * x[:, 0] - x[:, 1] + 0.5
        m = SVR(kernel="linear", C=50.0, epsilon=0.01, seed=0).fit(x, y)
        pred = m.predict(x)
        assert np.mean(np.abs(pred - y)) < 0.05


class TestRBFKernel:
    def test_fits_smooth_nonlinear_function(self, rng):
        x = rng.uniform(-2, 2, size=(250, 2))
        y = np.sin(x[:, 0]) + 0.5 * np.cos(2 * x[:, 1])
        m = SVR(C=20.0, epsilon=0.02, seed=0).fit(x, y)
        assert np.mean(np.abs(m.predict(x) - y)) < 0.1

    def test_generalises_to_test_points(self, rng):
        x = rng.uniform(-2, 2, size=(300, 1))
        y = np.sin(2 * x[:, 0])
        m = SVR(C=20.0, epsilon=0.02, seed=0).fit(x, y)
        xt = rng.uniform(-1.8, 1.8, size=(100, 1))
        assert np.mean(np.abs(m.predict(xt) - np.sin(2 * xt[:, 0]))) < 0.15

    def test_epsilon_tube_limits_support_vectors(self, rng):
        """A wide tube around an easy function needs few support vectors."""
        x = rng.uniform(-1, 1, size=(200, 1))
        y = 0.1 * x[:, 0]
        wide = SVR(C=10.0, epsilon=0.5, seed=0).fit(x, y)
        narrow = SVR(C=10.0, epsilon=0.001, seed=0).fit(x, y)
        assert wide.n_support_ <= narrow.n_support_

    def test_duals_respect_box_constraint(self, rng):
        x = rng.uniform(-1, 1, size=(120, 2))
        y = x[:, 0] ** 2
        m = SVR(C=5.0, epsilon=0.01, seed=0).fit(x, y)
        assert np.all(np.abs(m._beta) <= 5.0 + 1e-9)

    def test_equality_constraint_maintained(self, rng):
        """SMO pair updates preserve sum(beta) = 0 exactly."""
        x = rng.uniform(-1, 1, size=(100, 2))
        y = np.sin(x[:, 0])
        m = SVR(C=5.0, epsilon=0.02, seed=0).fit(x, y)
        assert abs(m._beta.sum()) < 1e-8

    def test_custom_gamma(self, rng):
        x = rng.uniform(-1, 1, size=(80, 1))
        y = x[:, 0]
        m = SVR(gamma=0.5, seed=0).fit(x, y)
        assert m._gamma_value == 0.5


class TestGuards:
    def test_invalid_c(self):
        with pytest.raises(ValueError, match="C"):
            SVR(C=0.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            SVR(epsilon=-0.1)

    def test_invalid_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            SVR(kernel="poly")

    def test_invalid_gamma_value(self, rng):
        x = rng.standard_normal((10, 1))
        with pytest.raises(ValueError, match="gamma"):
            SVR(gamma=-1.0).fit(x, x[:, 0])

    def test_unknown_gamma_rule(self, rng):
        x = rng.standard_normal((10, 1))
        with pytest.raises(ValueError, match="gamma"):
            SVR(gamma="auto99").fit(x, x[:, 0])

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            SVR().predict(np.zeros((1, 1)))

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="at least 2"):
            SVR().fit(np.zeros((1, 1)), np.zeros(1))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            SVR().fit(np.zeros((3, 1)), np.zeros(4))
