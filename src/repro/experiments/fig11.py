"""Figure 11: DNN vs multi-learner power-prediction accuracy.

Trains the four baseline regressors (RFR, XGBR-style GBM, SVR, MLR) on
exactly the same (features -> power) dataset the DNN uses, then scores
every model's power prediction for the six real applications using the
same replicated-feature online mechanic.

Expected shape: the DNN's mean accuracy is the highest; MLR is clearly
the worst (power is nonlinear in clock and activity); tree ensembles sit
in between — they interpolate the training workloads well but transfer
worse to unseen activity levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    GradientBoostingRegressor,
    MultipleLinearRegression,
    RandomForestRegressor,
    SVR,
)
from repro.core.metrics import accuracy_percent
from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import EvaluationSuite
from repro.experiments.report import render_table

__all__ = ["LearnerScore", "Fig11Result", "run_fig11", "render_fig11"]

#: SVR's SMO solver is quadratic-ish in sample count; a seeded subsample
#: of the training set keeps it tractable without changing the story.
_SVR_MAX_SAMPLES = 700


@dataclass(frozen=True)
class LearnerScore:
    """Per-application power accuracy for one learner."""

    learner: str
    per_app: dict[str, float]

    @property
    def mean_accuracy(self) -> float:
        """Average accuracy across the six applications."""
        return float(np.mean(list(self.per_app.values())))


@dataclass(frozen=True)
class Fig11Result:
    """All learner scores, DNN included for reference."""

    scores: list[LearnerScore]

    def score(self, learner: str) -> LearnerScore:
        """Score entry for one learner by name."""
        for s in self.scores:
            if s.learner == learner:
                return s
        raise KeyError(f"no score for learner {learner!r}")


def run_fig11(ctx: ExperimentContext, *, suite: EvaluationSuite | None = None) -> Fig11Result:
    """Train the baselines and score everyone on the six real apps."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    pipe = ctx.pipeline("GA100")
    dataset = pipe.training_dataset
    if dataset is None:
        raise RuntimeError("context pipeline has no training dataset")

    # Standardised features; raw-watt targets (these learners are
    # target-scale robust, unlike the gradient-trained DNN).
    x = dataset.x
    y = dataset.y_power
    x_mean, x_std = x.mean(axis=0), x.std(axis=0)
    x_std = np.where(x_std > 0, x_std, 1.0)
    xs = (x - x_mean) / x_std

    rng = np.random.default_rng(ctx.settings.seed)
    learners: dict[str, object] = {
        "RFR": RandomForestRegressor(n_estimators=60, max_depth=14, seed=ctx.settings.seed),
        "XGBR": GradientBoostingRegressor(n_estimators=200, max_depth=4, seed=ctx.settings.seed),
        "SVR": SVR(C=20.0, epsilon=0.02, seed=ctx.settings.seed, max_passes=40),
        "MLR": MultipleLinearRegression(),
    }
    for name, learner in learners.items():
        if name == "SVR" and xs.shape[0] > _SVR_MAX_SAMPLES:
            take = rng.choice(xs.shape[0], size=_SVR_MAX_SAMPLES, replace=False)
            learner.fit(xs[take], y[take])
        else:
            learner.fit(xs, y)

    evaluations = suite.evaluate_all("GA100")
    scores: list[LearnerScore] = []
    for name, learner in learners.items():
        per_app: dict[str, float] = {}
        for ev in evaluations:
            feats = np.column_stack(
                [
                    np.full(ev.freqs_mhz.size, ev.features.fp_active),
                    np.full(ev.freqs_mhz.size, ev.features.dram_active),
                    ev.freqs_mhz,
                ]
            )
            feats = (feats - x_mean) / x_std
            pred = np.maximum(np.asarray(learner.predict(feats)), 1e-9)
            per_app[ev.app] = accuracy_percent(ev.power_measured_w, pred)
        scores.append(LearnerScore(learner=name, per_app=per_app))

    scores.append(
        LearnerScore(learner="DNN", per_app={ev.app: ev.power_accuracy for ev in evaluations})
    )
    return Fig11Result(scores=scores)


def render_fig11(result: Fig11Result) -> str:
    """Accuracy matrix, learners x applications."""
    apps = sorted(result.scores[0].per_app)
    rows = [
        [s.learner, *(s.per_app[a] for a in apps), s.mean_accuracy]
        for s in result.scores
    ]
    return render_table(
        ["learner", *apps, "mean"],
        rows,
        title="Figure 11 - power prediction accuracy (%) per learner, GA100",
    )
