"""Experiment harness: one module per paper figure/table.

Every module exposes a ``run_*`` function taking an
:class:`~repro.experiments.context.ExperimentContext` and returning a
structured result object plus a ``render_*`` helper that formats it as
the rows/series the paper reports.  The benchmark suite
(``benchmarks/``) is a thin shell over these functions.

Heavy shared work (training the pipeline, measuring ground-truth sweeps)
is computed once and cached on the context, so regenerating all figures
costs one collection campaign, not ten.
"""

from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.experiments.evaluation import AppEvaluation, EvaluationSuite

__all__ = [
    "ExperimentContext",
    "ExperimentSettings",
    "AppEvaluation",
    "EvaluationSuite",
]
