"""Bounded LRU cache for memoized prediction curves.

The online phase is deterministic given (features, clock grid, trained
weights): two requests whose quantized feature vectors agree get the
same power/time curves, so the second one never needs a DNN forward
pass.  The cache is the service's second throughput lever (the first is
batching); see DESIGN.md §9 for the key-quantization contract.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["LRUCache"]


class LRUCache:
    """Thread-safe least-recently-used mapping with a hard size bound.

    A plain ``OrderedDict`` under a lock: gets refresh recency, puts
    evict the oldest entry once ``maxsize`` is reached.  Hit/miss and
    eviction counters feed the service stats.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Any | None:
        """Value for ``key`` (refreshing recency), or None on a miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def get_many(self, keys: list[Hashable]) -> list[Any | None]:
        """Batched :meth:`get`: one lock acquisition for a whole probe.

        Returns one entry per key, None on a miss; hit/miss counters and
        recency updates match key-by-key ``get`` calls exactly.
        """
        out: list[Any | None] = []
        with self._lock:
            for key in keys:
                try:
                    value = self._data[key]
                except KeyError:
                    self.misses += 1
                    out.append(None)
                else:
                    self._data.move_to_end(key)
                    self.hits += 1
                    out.append(value)
        return out

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry if full."""
        with self._lock:
            self._put_locked(key, value)

    def put_many(self, items: list[tuple[Hashable, Any]]) -> None:
        """Batched :meth:`put` under one lock acquisition."""
        with self._lock:
            for key, value in items:
                self._put_locked(key, value)

    def _put_locked(self, key: Hashable, value: Any) -> None:
        # Both callers (put, put_many) enter with self._lock held; the
        # lexical lock check cannot see cross-method holding.
        if key in self._data:
            self._data.move_to_end(key)  # repro: noqa[THR001] — caller holds self._lock
            self._data[key] = value  # repro: noqa[THR001] — caller holds self._lock
            return
        if len(self._data) >= self.maxsize:
            self._data.popitem(last=False)  # repro: noqa[THR001] — caller holds self._lock
            self.evictions += 1  # repro: noqa[THR001] — caller holds self._lock
        self._data[key] = value  # repro: noqa[THR001] — caller holds self._lock

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime stats)."""
        with self._lock:
            self._data.clear()
