"""Background micro-batcher: turns concurrent submissions into flushes.

Callers on many threads ``submit()`` single requests and get futures;
one dispatcher thread coalesces everything that arrives within a short
window (or until the batch is full) into a single
:meth:`~repro.serving.service.SelectionService.select_many` flush.  This
is the piece that converts *concurrency* into *batch size* — the service
itself only batches what it is handed.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # import-time cycle: service.py constructs MicroBatcher
    from repro.serving.service import SelectionService

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Window-and-size micro-batching front for a selection service."""

    def __init__(
        self,
        service: "SelectionService",
        *,
        max_batch_size: int = 64,
        batch_window_s: float = 0.002,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        self.service = service
        self.max_batch_size = max_batch_size
        self.batch_window_s = batch_window_s
        self._pending: list[tuple[object, Future]] = []
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(target=self._run, name="repro-microbatch", daemon=True)
        self._thread.start()

    def submit(self, request) -> Future:
        """Enqueue one request; the returned future resolves to its response."""
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise RuntimeError("micro-batcher is closed")
            self._pending.append((request, future))
            self._cond.notify()
        return future

    def close(self) -> None:
        """Flush whatever is pending and stop the dispatcher thread."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify()
        self._thread.join()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                # Hold the window open for stragglers — a wake-up from an
                # early submission goes back to waiting out the remaining
                # window unless the batch is already full (then the wait
                # is pure latency and is skipped entirely).
                if len(self._pending) < self.max_batch_size and not self._closed:
                    deadline = time.monotonic() + self.batch_window_s  # repro: noqa[OBS001] — wait deadline, not latency instrumentation
                    while len(self._pending) < self.max_batch_size and not self._closed:
                        remaining = deadline - time.monotonic()  # repro: noqa[OBS001] — wait deadline, not latency instrumentation
                        if remaining <= 0:
                            break
                        self._cond.wait(timeout=remaining)
                # Drain *everything* queued, in max_batch_size chunks: a
                # burst larger than one batch pays the window once, not
                # once per chunk.
                batches = []
                while self._pending:
                    batches.append(self._pending[: self.max_batch_size])
                    del self._pending[: self.max_batch_size]
            for batch in batches:
                requests = [request for request, _ in batch]
                try:
                    responses = self.service.select_many(requests)
                except Exception as exc:  # pragma: no cover - defensive fan-out
                    for _, future in batch:
                        future.set_exception(exc)
                else:
                    for (_, future), response in zip(batch, responses):
                        future.set_result(response)
