"""Span-based tracer with a guaranteed near-zero-overhead disabled path.

Usage at an instrumentation site::

    from repro import obs

    with obs.span("serving.flush", batch=len(requests)) as sp:
        ...
        sp.set(curves_computed=n)        # attrs added mid-span
    obs.event("nn.early_stop", epoch=epoch)

When no tracer is configured (the default), :func:`span` returns a
shared no-op singleton — one global read, one identity return, no
allocation — so instrumentation can stay in hot loops permanently.  The
tier-1 suite asserts this path adds < 5 % to a tiny serving flush and
records nothing.

When enabled (:func:`configure`, or the CLI's global ``--trace PATH``
flag), every closed span and instant event becomes one JSON line in the
sink file and one entry in a bounded in-memory ring buffer.  Span
timing uses :func:`time.perf_counter` (monotonic — durations are
non-negative by construction); wall-clock ``ts`` is attached for human
correlation only.  Parent/child nesting is tracked per-thread, so spans
opened inside a :class:`~concurrent.futures.ThreadPoolExecutor` worker
chain to that worker's enclosing span, never to another thread's.

The tracer never touches any RNG and never rounds the values flowing
through the pipeline: the golden suite asserts a traced run is
bitwise-identical to an untraced one.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import IO

__all__ = [
    "Span",
    "Tracer",
    "span",
    "event",
    "configure",
    "disable",
    "get_tracer",
    "is_enabled",
]


class _NoopSpan:
    """Reusable do-nothing span handle (the disabled-tracer fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Discard attrs (matches :meth:`Span.set`)."""


_NOOP = _NoopSpan()


class Span:
    """Context-manager handle for one live span."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_t0", "_ts")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self._t0 = 0.0
        self._ts = 0.0

    def set(self, **attrs) -> None:
        """Attach attrs discovered mid-span (recorded at close)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = next(tracer._ids)
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        stack = self._tracer._stack()
        # Context-manager nesting guarantees LIFO; popping anything else
        # means an __exit__ was skipped, which we surface loudly.
        popped = stack.pop()
        assert popped is self, f"span stack corrupted: popped {popped.name}, expected {self.name}"
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._emit(
            {
                "type": "span",
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "thread": threading.current_thread().name,
                "ts": self._ts,
                "dur_s": dur,
                "attrs": self.attrs,
            }
        )
        return False


class Tracer:
    """Collects span/event records into a JSONL sink and a ring buffer.

    ``path=None`` keeps events in memory only (the ring), which is what
    the tests and the overhead bench use; a path gets one JSON object
    per line, append-created, flushed per event so a crashed process
    loses at most the line being written.
    """

    def __init__(self, path: str | Path | None = None, *, ring_size: int = 4096) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.path = Path(path) if path is not None else None
        self._ring: deque[dict] = deque(maxlen=ring_size)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._file: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _emit(self, record: dict) -> None:
        with self._lock:
            self._ring.append(record)
            if self._file is not None:
                self._file.write(json.dumps(record, default=str) + "\n")
                self._file.flush()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """Open a span; use as a context manager."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record one instant (zero-duration) event."""
        stack = self._stack()
        self._emit(
            {
                "type": "event",
                "name": name,
                "span_id": next(self._ids),
                "parent_id": stack[-1].span_id if stack else None,
                "thread": threading.current_thread().name,
                "ts": time.time(),
                "attrs": attrs,
            }
        )

    def events(self) -> list[dict]:
        """Snapshot of the in-memory ring (oldest first)."""
        with self._lock:
            return list(self._ring)

    def active_depth(self) -> int:
        """How many spans the calling thread currently has open."""
        return len(self._stack())

    def close(self) -> None:
        """Flush and close the sink file (ring stays readable)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


#: The module-level tracer; ``None`` means tracing is disabled and
#: :func:`span` / :func:`event` are no-ops.
_TRACER: Tracer | None = None


def span(name: str, **attrs):
    """Span on the global tracer, or the shared no-op when disabled."""
    tracer = _TRACER
    if tracer is None:
        return _NOOP
    return tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Instant event on the global tracer (no-op when disabled)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.event(name, **attrs)


def configure(path: str | Path | None = None, *, ring_size: int = 4096) -> Tracer:
    """Install (and return) a fresh global tracer, closing any previous one."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(path, ring_size=ring_size)
    return _TRACER


def disable() -> None:
    """Close and remove the global tracer (back to the no-op fast path)."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = None


def get_tracer() -> Tracer | None:
    """The global tracer, or None when tracing is disabled."""
    return _TRACER


def is_enabled() -> bool:
    """Whether a global tracer is installed."""
    return _TRACER is not None
