"""Unit tests for the fleet package: scenarios, arrivals, signals,
capping, and the simulator's metrics contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.job import Job
from repro.cluster.policy import ClockDecision
from repro.fleet import (
    ArrivalSpec,
    FleetSimulator,
    PowerCapController,
    SignalSpec,
    Surge,
    build_outages,
    generate_jobs,
    get_scenario,
    list_scenarios,
    rate_at,
    signal_factor,
)
from repro.fleet.scenario import FailureSpec
from repro.workloads import get_workload


class TestScenarios:
    def test_named_scenarios_present(self):
        names = [s.name for s in list_scenarios()]
        assert {"baseline", "capped", "flash-crowd", "node-churn", "day"} <= set(names)

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(KeyError, match="baseline"):
            get_scenario("nope")

    def test_scaled_rescales_arrivals_only(self):
        base = get_scenario("baseline")
        scaled = base.scaled(rate_factor=2.0, duration_factor=0.5)
        assert scaled.arrival.rate_per_s == pytest.approx(2 * base.arrival.rate_per_s)
        assert scaled.arrival.duration_s == pytest.approx(0.5 * base.arrival.duration_s)
        assert scaled.node_groups == base.node_groups

    def test_gpu_count(self):
        assert get_scenario("baseline").n_gpus == 16


class TestArrivals:
    ARRIVAL = ArrivalSpec(
        rate_per_s=2.0,
        duration_s=120.0,
        workloads=("dgemm", "stream"),
        surges=(Surge(start_s=40.0, end_s=60.0, multiplier=5.0),),
    )

    def test_surge_modulates_rate(self):
        assert rate_at(self.ARRIVAL, 10.0) == pytest.approx(2.0)
        assert rate_at(self.ARRIVAL, 50.0) == pytest.approx(10.0)
        assert rate_at(self.ARRIVAL, 60.0) == pytest.approx(2.0)

    def test_jobs_deterministic_and_ordered(self):
        kwargs = dict(arch_names=("GA100",))
        a = generate_jobs(self.ARRIVAL, rng=np.random.default_rng(42), **kwargs)
        b = generate_jobs(self.ARRIVAL, rng=np.random.default_rng(42), **kwargs)
        assert a == b
        assert [j.job_id for j in a] == list(range(len(a)))
        assert all(x.arrival_s <= y.arrival_s for x, y in zip(a, a[1:]))
        assert all(0.0 <= j.arrival_s < self.ARRIVAL.duration_s for j in a)

    def test_deadlines_scale_with_true_runtime(self):
        jobs = generate_jobs(
            self.ARRIVAL, rng=np.random.default_rng(0), arch_names=("GA100", "GV100")
        )
        assert all(j.deadline_s is not None and j.deadline_s > j.arrival_s for j in jobs)

    def test_no_deadlines_when_factor_none(self):
        spec = ArrivalSpec(rate_per_s=1.0, duration_s=30.0, deadline_factor=None)
        jobs = generate_jobs(spec, rng=np.random.default_rng(0), arch_names=("GA100",))
        assert jobs and all(j.deadline_s is None for j in jobs)


class TestSignals:
    def test_flat_and_none(self):
        assert signal_factor(None, 123.0) == 1.0
        assert signal_factor(SignalSpec(kind="flat"), 123.0) == 1.0

    def test_price_signal_bounds_and_tightening(self):
        spec = SignalSpec(kind="price", period_s=100.0, amplitude=0.3)
        factors = [signal_factor(spec, t) for t in np.linspace(0, 100, 201)]
        assert min(factors) == pytest.approx(0.7, abs=1e-6)
        assert max(factors) == pytest.approx(1.3, abs=1e-6)
        # Price peaks at quarter-period -> tightest cap there.
        assert signal_factor(spec, 25.0) == pytest.approx(0.7)

    def test_carbon_signal_loosest_mid_period(self):
        spec = SignalSpec(kind="carbon", period_s=100.0, amplitude=0.2)
        assert signal_factor(spec, 50.0) == pytest.approx(1.2)
        assert signal_factor(spec, 0.0) == pytest.approx(0.8)


class TestFailurePlan:
    def test_deterministic_given_same_rng_seed(self):
        spec = FailureSpec(random_outages=5, mean_downtime_s=60.0)
        kwargs = dict(node_ids=[0, 1, 2], duration_s=500.0)
        a = build_outages(spec, rng=np.random.default_rng(7), **kwargs)
        b = build_outages(spec, rng=np.random.default_rng(7), **kwargs)
        assert a == b
        assert len(a) == 5
        assert all(o.up_s > o.down_s for o in a)
        assert all(0.05 * 500.0 <= o.down_s <= 0.7 * 500.0 for o in a)

    def test_explicit_outages_pass_through(self):
        spec = FailureSpec(outages=((1, 10.0, 20.0), (0, 5.0, None)))
        plan = build_outages(
            spec, node_ids=[0, 1], duration_s=100.0, rng=np.random.default_rng(0)
        )
        assert [(o.node_id, o.down_s, o.up_s) for o in plan] == [
            (0, 5.0, None),
            (1, 10.0, 20.0),
        ]


def _decision(clock=1400.0):
    freqs = np.array([800.0, 1000.0, 1200.0, 1400.0])
    power = np.array([100.0, 150.0, 220.0, 300.0])
    time = np.array([4.0, 3.2, 2.7, 2.4])
    return ClockDecision(
        clock_mhz=clock, freqs_mhz=freqs, power_curve_w=power, time_curve_s=time
    ).at_clock(clock)


def _job(job_id=0):
    return Job(job_id=job_id, workload=get_workload("dgemm"))


class TestPowerCapController:
    def test_admits_unchanged_under_generous_cap(self):
        ctrl = PowerCapController(1000.0)
        out = ctrl.admit(0.0, _job(), _decision())
        assert out is not None and out.clock_mhz == 1400.0 and not out.capped

    def test_caps_clock_to_fit_headroom(self):
        ctrl = PowerCapController(1000.0)
        first = ctrl.admit(0.0, _job(0), _decision())
        ctrl.on_start(0.0, _job(0), first)  # reserves 300 W
        second = ctrl.admit(0.0, _job(1), _decision())
        ctrl.on_start(0.0, _job(1), second)
        third = ctrl.admit(0.0, _job(2), _decision())
        # 400 W headroom left: the 1400 MHz point (300 W) still fits...
        assert third is not None and third.clock_mhz == 1400.0
        ctrl.on_start(0.0, _job(2), third)
        fourth = ctrl.admit(0.0, _job(3), _decision())
        # ...but at 100 W of headroom only the 800 MHz point (100 W) does.
        assert fourth is not None and fourth.capped and fourth.clock_mhz == 800.0
        assert ctrl.capped_jobs == 1

    def test_defers_when_nothing_fits_and_fleet_busy(self):
        ctrl = PowerCapController(350.0)
        first = ctrl.admit(0.0, _job(0), _decision())
        ctrl.on_start(0.0, _job(0), first)  # 300 W reserved, 50 W headroom
        assert ctrl.admit(0.0, _job(1), _decision()) is None

    def test_forces_lowest_clock_on_idle_fleet(self):
        ctrl = PowerCapController(50.0)  # below even the floor clock
        out = ctrl.admit(0.0, _job(), _decision())
        assert out is not None and out.clock_mhz == 800.0
        assert ctrl.forced_admissions == 1

    def test_release_restores_headroom(self):
        ctrl = PowerCapController(400.0)
        d = ctrl.admit(0.0, _job(0), _decision())
        ctrl.on_start(0.0, _job(0), d)
        assert ctrl.admit(1.0, _job(1), _decision()).capped
        ctrl.on_finish(2.0, _job(0), d)
        assert ctrl.reserved_w == 0.0
        assert not ctrl.admit(3.0, _job(1), _decision()).capped

    def test_signal_modulates_cap(self):
        spec = SignalSpec(kind="price", period_s=100.0, amplitude=0.5)
        ctrl = PowerCapController(400.0, signal=spec)
        assert ctrl.effective_cap_w(25.0) == pytest.approx(200.0)
        assert ctrl.effective_cap_w(75.0) == pytest.approx(600.0)


class TestSimulator:
    @pytest.fixture(scope="class")
    def result(self):
        scenario = get_scenario("baseline").scaled(duration_factor=0.1)
        return FleetSimulator(scenario, seed=1).run()

    def test_all_jobs_complete(self, result):
        assert result.stats.jobs_completed == result.stats.jobs_submitted
        assert result.stats.jobs_submitted > 0

    def test_metrics_energy_is_sum_of_records(self, result):
        assert result.metrics()["total_energy_j"] == sum(r.energy_j for r in result.records)

    def test_one_selection_per_job(self, result):
        assert result.selections_total == result.stats.jobs_submitted

    def test_metrics_are_json_plain(self, result):
        import json

        payload = json.dumps(result.metrics())
        assert json.loads(payload)["scenario"] == "baseline"

    def test_unknown_objective_rejected(self):
        import dataclasses

        scenario = dataclasses.replace(get_scenario("baseline"), objective="EDP2")
        with pytest.raises(ValueError, match="unknown objective"):
            FleetSimulator(scenario)
