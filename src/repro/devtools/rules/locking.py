"""Lock-discipline rule: shared state only mutates under its lock.

The serving and observability layers are explicitly thread-safe — the
micro-batcher, the LRU cache, the metrics instruments, and the tracer
are all called from many threads concurrently.  Their contract is a
single pattern: the class owns a ``threading.Lock``/``RLock``/
``Condition`` and every mutation of its shared attributes happens inside
``with self._lock:``.

THR001 enforces that pattern per class:

* **Lock discovery** — any ``self.X = threading.Lock()`` (or RLock /
  Condition) marks the class as lock-owning.
* **Guarded-attribute inference** — every attribute the class mutates at
  least once while holding the lock is considered shared.
* **Seeded registry** — the known shared attributes of the concurrency
  hot spots (``serving.service``, ``serving.cache``,
  ``serving.microbatch``, ``obs.metrics``, ``obs.trace``) are pinned
  explicitly, so the rule keeps firing even if all locked call sites of
  an attribute are deleted.  ``telemetry.parallel`` deliberately seeds
  nothing: its cells are share-nothing by construction (per-cell child
  RNGs, no mutable device state), which is the invariant DET-rules cover.
* **Violation** — a mutation of a guarded attribute outside any ``with
  self.<lock>:`` block, in any method except ``__init__``/``__new__``
  (construction happens-before publication).

Cross-method lock holding (a private helper called with the lock already
held) is invisible to a lexical check; such helpers should either take
the mutation back to the locked caller or carry a
``# repro: noqa[THR001]`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding
from repro.devtools.rules.base import Rule, register

__all__ = ["THR001LockDiscipline"]

_LOCK_FACTORIES = frozenset({"threading.Lock", "threading.RLock", "threading.Condition"})

#: Method names on a container attribute that mutate it in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
        "move_to_end",
    }
)

#: Known shared attributes of the repo's concurrency hot spots, keyed by
#: (module, class).  Inference normally rediscovers these; pinning them
#: keeps the rule armed even if every locked mutation site disappears.
SEEDED_SHARED_ATTRS: dict[tuple[str, str], frozenset[str]] = {
    ("repro.serving.service", "SelectionService"): frozenset(
        {"_cache", "_key_static", "_batcher"}
    ),
    ("repro.serving.cache", "LRUCache"): frozenset({"_data", "hits", "misses", "evictions"}),
    ("repro.serving.microbatch", "MicroBatcher"): frozenset({"_pending", "_closed"}),
    ("repro.obs.metrics", "Counter"): frozenset({"_value"}),
    ("repro.obs.metrics", "Gauge"): frozenset({"_value"}),
    ("repro.obs.metrics", "Histogram"): frozenset({"_counts", "_sum", "_count", "_min", "_max"}),
    ("repro.obs.metrics", "MetricsRegistry"): frozenset({"_metrics"}),
    ("repro.obs.trace", "Tracer"): frozenset({"_ring", "_file"}),
}

_CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``X`` (through any subscript chain), else None."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutation_targets(stmt: ast.stmt) -> list[tuple[str, ast.AST]]:
    """(attribute, anchor node) pairs this simple statement mutates."""
    out: list[tuple[str, ast.AST]] = []

    def add_target(target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                add_target(elt)
            return
        if isinstance(target, ast.Starred):
            add_target(target.value)
            return
        attr = _self_attr(target)
        if attr is not None:
            out.append((attr, target))

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            add_target(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if not (isinstance(stmt, ast.AnnAssign) and stmt.value is None):
            add_target(stmt.target)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            add_target(target)

    # In-place container mutation: self.X.append(...) etc., anywhere in
    # the statement's expressions (including call results being assigned).
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            attr = _self_attr(node.func.value)
            if attr is not None:
                out.append((attr, node))
    return out


@register
class THR001LockDiscipline(Rule):
    """Lock-owning classes mutate shared attributes only under the lock."""

    rule_id = "THR001"
    severity = "error"
    summary = "shared attribute of a lock-owning class mutated outside its lock"
    rationale = (
        "SelectionService, LRUCache, MicroBatcher, the metrics instruments and "
        "the Tracer are all entered from many threads; their correctness "
        "argument is 'every mutation of shared state holds self._lock'. A "
        "single unlocked mutation reintroduces the torn-read/lost-update bugs "
        "the serving concurrency tests exist to rule out."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package("repro"):
            return []
        findings: list[Finding] = []
        for cls in ast.walk(ctx.tree):
            if isinstance(cls, ast.ClassDef):
                findings.extend(self._check_class(ctx, cls))
        return findings

    # ------------------------------------------------------------------
    def _lock_attrs(self, ctx: ModuleContext, cls: ast.ClassDef) -> set[str]:
        locks: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            if ctx.resolve(node.value.func) not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    locks.add(attr)
        return locks

    def _check_class(self, ctx: ModuleContext, cls: ast.ClassDef) -> list[Finding]:
        locks = self._lock_attrs(ctx, cls)
        if not locks:
            return []

        # One pass collecting every mutation with its lock-held flag.
        mutations: list[tuple[str, str, ast.AST, bool]] = []  # (method, attr, node, locked)

        def scan(stmts: list[ast.stmt], method: str, locked: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    holds = locked or any(
                        _self_attr(item.context_expr) in locks for item in stmt.items
                    )
                    scan(stmt.body, method, holds)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue  # nested scopes analysed separately / out of scope
                elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While, ast.Try)):
                    # Recurse block-by-block so nested `with self._lock:`
                    # bodies keep their own lock-held flag.
                    for child_block in ("body", "orelse", "finalbody"):
                        scan(getattr(stmt, child_block, []) or [], method, locked)
                    for handler in getattr(stmt, "handlers", []) or []:
                        scan(handler.body, method, locked)
                elif isinstance(stmt, ast.Match):
                    for case in stmt.cases:
                        scan(case.body, method, locked)
                else:
                    for attr, node in _mutation_targets(stmt):
                        mutations.append((method, attr, node, locked))

        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan(item.body, item.name, locked=False)

        guarded = set(SEEDED_SHARED_ATTRS.get((ctx.module, cls.name), frozenset()))
        guarded.update(attr for _, attr, _, locked in mutations if locked)
        guarded -= locks  # the lock object itself is not data

        findings: list[Finding] = []
        lock_name = sorted(locks)[0]
        for method, attr, node, locked in mutations:
            if locked or attr not in guarded or method in _CONSTRUCTION_METHODS:
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"{cls.name}.{method} mutates shared attribute 'self.{attr}' outside "
                    f"'with self.{lock_name}:' — every mutation of lock-guarded state "
                    "must hold the lock",
                )
            )
        return findings
