"""Multiple linear regression tests."""

import numpy as np
import pytest

from repro.baselines import MultipleLinearRegression


class TestExactRecovery:
    def test_recovers_known_coefficients(self, rng):
        x = rng.standard_normal((200, 3))
        y = x @ np.array([2.0, -1.0, 0.5]) + 4.0
        m = MultipleLinearRegression().fit(x, y)
        assert np.allclose(m.coef_, [2.0, -1.0, 0.5], atol=1e-10)
        assert m.intercept_ == pytest.approx(4.0)

    def test_no_intercept_mode(self, rng):
        x = rng.standard_normal((100, 2))
        y = x @ np.array([1.5, -2.0])
        m = MultipleLinearRegression(fit_intercept=False).fit(x, y)
        assert m.intercept_ == 0.0
        assert np.allclose(m.coef_, [1.5, -2.0], atol=1e-10)

    def test_collinear_features_do_not_blow_up(self, rng):
        x1 = rng.standard_normal(50)
        x = np.column_stack([x1, 2.0 * x1])  # rank deficient
        y = 3.0 * x1
        m = MultipleLinearRegression().fit(x, y)
        assert np.all(np.isfinite(m.coef_))
        assert np.allclose(m.predict(x), y, atol=1e-8)


class TestScoreAndGuards:
    def test_r2_perfect_fit(self, rng):
        x = rng.standard_normal((50, 2))
        y = x @ np.array([1.0, 1.0])
        m = MultipleLinearRegression().fit(x, y)
        assert m.score(x, y) == pytest.approx(1.0)

    def test_r2_constant_target(self):
        x = np.arange(10.0)[:, None]
        y = np.full(10, 5.0)
        m = MultipleLinearRegression().fit(x, y)
        assert m.score(x, y) == 1.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            MultipleLinearRegression().predict(np.zeros((2, 2)))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            MultipleLinearRegression().fit(np.zeros((5, 2)), np.zeros(4))

    def test_nonlinear_function_fits_poorly(self, rng):
        """Sanity: the Fig. 11 premise that MLR cannot model power curves."""
        x = rng.uniform(-2, 2, size=(300, 1))
        y = x[:, 0] ** 3 - 2 * x[:, 0] ** 2
        m = MultipleLinearRegression().fit(x, y)
        assert m.score(x, y) < 0.9
