"""CART regression tree with vectorized split search.

Split finding follows the sorted-prefix-sum formulation: for each
candidate feature the samples are argsorted once and the sum-of-squared-
error reduction of *every* threshold is evaluated with cumulative sums —
no Python loop over thresholds (see the repository's HPC coding guides:
vectorize the inner loop, not the tree recursion).

The tree is stored in flat arrays (children, feature, threshold, value),
so prediction is an iterative array walk rather than pointer chasing.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DecisionTreeRegressor"]

_LEAF = -1


class DecisionTreeRegressor:
    """Variance-reduction CART for regression.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (None = unbounded).
    min_samples_split:
        Smallest node that may still be split.
    min_samples_leaf:
        Smallest admissible child size; candidate thresholds violating it
        are masked out during the vectorized search.
    max_features:
        Number of features examined per split (None = all) — the
        randomisation hook the random forest uses.
    rng:
        Source of feature-subsampling randomness.
    """

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 or None")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        # Fixed-seed default: feature subsampling must be reproducible
        # even when the forest/GBM wrapper does not thread an rng.
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # Flat tree arrays, filled by fit().
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree; returns self."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if x.shape[0] != y.size:
            raise ValueError(f"X has {x.shape[0]} rows but y has {y.size}")
        if x.shape[0] < 1:
            raise ValueError("cannot fit an empty dataset")
        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        self._grow(x, y, np.arange(x.shape[0]), depth=0)
        return self

    def _new_node(self) -> int:
        self._feature.append(_LEAF)
        self._threshold.append(np.nan)
        self._left.append(_LEAF)
        self._right.append(_LEAF)
        self._value.append(np.nan)
        return len(self._feature) - 1

    def _grow(self, x: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int) -> int:
        node = self._new_node()
        y_node = y[idx]
        self._value[node] = float(y_node.mean())
        if (
            idx.size < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.ptp(y_node) <= 0.0
        ):
            return node
        split = self._best_split(x, y, idx)
        if split is None:
            return node
        feature, threshold = split
        mask = x[idx, feature] <= threshold
        left_idx, right_idx = idx[mask], idx[~mask]
        self._feature[node] = feature
        self._threshold[node] = threshold
        self._left[node] = self._grow(x, y, left_idx, depth + 1)
        self._right[node] = self._grow(x, y, right_idx, depth + 1)
        return node

    def _best_split(self, x: np.ndarray, y: np.ndarray, idx: np.ndarray) -> tuple[int, float] | None:
        n_features = x.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            candidates = self._rng.choice(n_features, size=self.max_features, replace=False)
        else:
            candidates = np.arange(n_features)

        y_node = y[idx]
        n = idx.size
        best_gain = 0.0
        best: tuple[int, float] | None = None
        parent_sse_term = (y_node.sum() ** 2) / n

        for feature in candidates:
            values = x[idx, feature]
            order = np.argsort(values, kind="stable")
            v_sorted = values[order]
            y_sorted = y_node[order]
            # Candidate split after position i (1-based prefix length).
            prefix = np.cumsum(y_sorted)
            total = prefix[-1]
            counts = np.arange(1, n)
            left_sum = prefix[:-1]
            right_sum = total - left_sum
            # SSE reduction = left_sum^2/n_l + right_sum^2/n_r - total^2/n.
            gain = left_sum**2 / counts + right_sum**2 / (n - counts) - parent_sse_term
            # Invalid where the threshold would not separate values or a
            # child would be under the leaf minimum.
            valid = v_sorted[:-1] < v_sorted[1:]
            if self.min_samples_leaf > 1:
                valid &= (counts >= self.min_samples_leaf) & ((n - counts) >= self.min_samples_leaf)
            if not np.any(valid):
                continue
            gain = np.where(valid, gain, -np.inf)
            pos = int(np.argmax(gain))
            if gain[pos] > best_gain + 1e-12:
                best_gain = float(gain[pos])
                threshold = 0.5 * (v_sorted[pos] + v_sorted[pos + 1])
                best = (int(feature), float(threshold))
        return best

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predictions via an iterative walk of the flat tree arrays."""
        if not self._value:
            raise RuntimeError("predict called before fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        value = np.asarray(self._value)

        nodes = np.zeros(x.shape[0], dtype=int)
        active = feature[nodes] != _LEAF
        while np.any(active):
            cur = nodes[active]
            go_left = x[active, feature[cur]] <= threshold[cur]
            nodes[active] = np.where(go_left, left[cur], right[cur])
            active = feature[nodes] != _LEAF
        return value[nodes]

    @property
    def node_count(self) -> int:
        """Total nodes in the fitted tree."""
        return len(self._value)

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (0 for a stump/leaf-only tree)."""
        if not self._value:
            raise RuntimeError("depth requested before fit")

        def walk(node: int) -> int:
            if self._feature[node] == _LEAF:
                return 0
            return 1 + max(walk(self._left[node]), walk(self._right[node]))

        return walk(0)
