"""Event-driven FIFO scheduler.

Jobs are placed in arrival order onto the earliest-free GPU; each job's
execution time and energy come from the simulated board at the clock the
policy assigns.  The simulation is event-driven over job completions, so
a 500-job campaign costs 500 device runs, not a timestep loop.
"""

from __future__ import annotations

import heapq
from time import perf_counter

from repro import obs
from repro.cluster.job import Job, JobRecord
from repro.cluster.node import GPUNode
from repro.cluster.policy import ClockPolicy

__all__ = ["FIFOScheduler"]


class FIFOScheduler:
    """First-in-first-out placement over a set of multi-GPU nodes."""

    def __init__(self, nodes: list[GPUNode], policy: ClockPolicy) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        self.nodes = nodes
        self.policy = policy
        registry = obs.get_registry()
        self._m_jobs = registry.counter("cluster_jobs_total", "jobs scheduled")
        self._m_decide = registry.histogram(
            "cluster_decide_seconds", "per-job clock-policy decision latency"
        )

    def run(self, jobs: list[Job]) -> list[JobRecord]:
        """Schedule all jobs; returns completion records in finish order.

        GPUs are tracked as a min-heap of (free_at, node, gpu) entries so
        placement is O(log g) per job.  A job starts at
        ``max(arrival, gpu free time)``.
        """
        if not jobs:
            return []
        # Heap entries: (free_at_s, node_idx, gpu_idx).
        heap: list[tuple[float, int, int]] = [
            (0.0, n, g) for n, node in enumerate(self.nodes) for g in range(len(node))
        ]
        heapq.heapify(heap)

        ordered = sorted(jobs, key=lambda j: (j.arrival_s, j.job_id))
        # Batch-capable policies (the serving layer) decide every distinct
        # application up front in one flush instead of stalling the first
        # job of each application on a model prediction.
        with obs.span("cluster.prepare", jobs=len(ordered), policy=self.policy.name):
            self.policy.prepare(ordered)

        records: list[JobRecord] = []
        for job in ordered:
            free_at, node_idx, gpu_idx = heapq.heappop(heap)
            node = self.nodes[node_idx]
            device = node.gpu(gpu_idx)

            t_decide = perf_counter()
            with obs.span(
                "cluster.decide", job=job.job_id, workload=job.workload.name
            ):
                clock = self.policy.clock_for(job, device)
            self._m_decide.observe(perf_counter() - t_decide)
            with obs.span(
                "cluster.place",
                job=job.job_id,
                node=node.node_id,
                gpu=gpu_idx,
                clock_mhz=clock,
            ):
                device.set_sm_clock(clock)
                record = device.run(job.workload.census(job.size), workload_name=job.workload.name)
                device.reset_clocks()
            self._m_jobs.inc()

            start = max(free_at, job.arrival_s)
            end = start + record.exec_time_s
            records.append(
                JobRecord(
                    job_id=job.job_id,
                    workload=job.workload.name,
                    node_id=node.node_id,
                    gpu_index=gpu_idx,
                    clock_mhz=clock,
                    arrival_s=job.arrival_s,
                    start_s=start,
                    end_s=end,
                    energy_j=record.energy_j,
                    mean_power_w=record.mean_power_w,
                )
            )
            heapq.heappush(heap, (end, node_idx, gpu_idx))
        records.sort(key=lambda r: r.end_s)
        return records
