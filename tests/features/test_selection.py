"""Feature ranking / top-k selection tests."""

import numpy as np
import pytest

from repro.features import FeatureRanking, rank_features, select_top_k


@pytest.fixture()
def synthetic_features(rng):
    n = 1200
    strong = rng.standard_normal(n)
    weak = rng.standard_normal(n)
    noise = rng.standard_normal(n)
    target = strong + 0.3 * weak + 0.05 * rng.standard_normal(n)
    features = {"strong": strong, "weak": weak, "noise": noise}
    return features, target


class TestRankFeatures:
    def test_ordering(self, synthetic_features):
        features, target = synthetic_features
        ranking = rank_features(features, target, target_name="y")
        ordered = [name for name, _ in ranking.ordered()]
        assert ordered[0] == "strong"
        assert ordered[-1] == "noise"

    def test_normalized_in_unit_interval(self, synthetic_features):
        features, target = synthetic_features
        norm = rank_features(features, target).normalized()
        assert max(norm) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 for v in norm)

    def test_top_k(self, synthetic_features):
        features, target = synthetic_features
        ranking = rank_features(features, target)
        assert ranking.top_k(1) == ["strong"]
        assert set(ranking.top_k(2)) == {"strong", "weak"}

    def test_top_k_invalid(self, synthetic_features):
        features, target = synthetic_features
        with pytest.raises(ValueError, match="k must"):
            rank_features(features, target).top_k(0)

    def test_empty_features_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            rank_features({}, np.zeros(10))

    def test_all_zero_scores_normalize_to_zero(self):
        ranking = FeatureRanking(target_name="y", feature_names=("a", "b"), scores=(0.0, 0.0))
        assert ranking.normalized() == (0.0, 0.0)


class TestSelectTopK:
    def test_combined_selection_serves_both_targets(self, rng):
        """A feature informative for both targets beats single-target ones."""
        n = 1500
        shared = rng.standard_normal(n)
        only_a = rng.standard_normal(n)
        only_b = rng.standard_normal(n)
        features = {
            "shared": shared,
            "only_a": only_a,
            "only_b": only_b,
            "junk": rng.standard_normal(n),
        }
        targets = {
            "a": shared + only_a + 0.05 * rng.standard_normal(n),
            "b": shared + only_b + 0.05 * rng.standard_normal(n),
        }
        top = select_top_k(features, targets, k=1)
        assert top == ["shared"]

    def test_k_bounds_result_length(self, synthetic_features):
        features, target = synthetic_features
        top = select_top_k(features, {"y": target}, k=2)
        assert len(top) == 2
