"""The paper's primary contribution: DNN-driven DVFS selection.

Pipeline (paper Fig. 2):

1. **Offline** — collect the 12 metrics for the 21 training workloads
   across the DVFS space (:mod:`repro.core.dataset`), train the power and
   time DNNs (:mod:`repro.core.models`).
2. **Online** — run an unseen application *once at the maximum clock*,
   harvest (fp_active, dram_active), replicate them across every clock
   (feature invariance, paper Section 4.2), predict power and time per
   clock, compute energy, and select the optimal frequency by EDP / ED2P
   (:mod:`repro.core.selection`, Algorithm 1).

:class:`~repro.core.pipeline.FrequencySelectionPipeline` wires the steps
together.
"""

from repro.core.dataset import (
    DVFSDataset,
    FeatureVector,
    SweepSample,
    build_dataset,
    dataset_from_csv_dir,
    features_at_max,
)
from repro.core.energy import ED2P, EDP, EDnP, ObjectiveFunction, energy_from_power_time
from repro.core.metrics import accuracy_percent, mape, r2_score, rmse
from repro.core.models import PAPER_FEATURES, PowerModel, TimeModel
from repro.core.pipeline import FrequencySelectionPipeline, OnlineResult
from repro.core.selection import SelectionResult, select_optimal_frequency
from repro.core.uncertainty import EnsembleModel, EnsemblePrediction, select_conservative

__all__ = [
    "DVFSDataset",
    "FeatureVector",
    "SweepSample",
    "build_dataset",
    "dataset_from_csv_dir",
    "features_at_max",
    "EDP",
    "ED2P",
    "EDnP",
    "ObjectiveFunction",
    "energy_from_power_time",
    "mape",
    "accuracy_percent",
    "rmse",
    "r2_score",
    "PAPER_FEATURES",
    "PowerModel",
    "TimeModel",
    "FrequencySelectionPipeline",
    "OnlineResult",
    "SelectionResult",
    "select_optimal_frequency",
    "EnsembleModel",
    "EnsemblePrediction",
    "select_conservative",
]
