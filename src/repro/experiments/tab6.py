"""Table 6: effect of performance-degradation thresholds.

Re-runs the EDP selection for LAMMPS and ResNet50 (the two apps the
paper flags for high performance penalties) under three threshold
settings: none, 5 %, and 1 %.  Expected shape: tightening the threshold
monotonically reduces the time loss, trading away energy savings — at
1 % the selection approaches the maximum clock and savings approach
zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.energy import EDP
from repro.core.selection import select_optimal_frequency
from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import EvaluationSuite
from repro.experiments.report import render_table

__all__ = ["ThresholdCell", "Tab6Result", "run_tab6", "render_tab6", "THRESHOLDS", "TAB6_APPS"]

#: The paper's threshold settings: Nil, 5 %, 1 %.
THRESHOLDS: tuple[float | None, ...] = (None, 0.05, 0.01)
#: The applications paper Table 6 examines.
TAB6_APPS: tuple[str, ...] = ("lammps", "resnet50")


@dataclass(frozen=True)
class ThresholdCell:
    """Selection outcome for one (app, threshold) cell."""

    app: str
    threshold: float | None
    freq_mhz: float
    time_change_pct: float
    energy_saving_pct: float


@dataclass(frozen=True)
class Tab6Result:
    """All cells, apps x thresholds."""

    cells: list[ThresholdCell]

    def cell(self, app: str, threshold: float | None) -> ThresholdCell:
        """Look up one cell."""
        for c in self.cells:
            if c.app == app.lower() and c.threshold == threshold:
                return c
        raise KeyError(f"no cell for {app}/{threshold}")


def run_tab6(ctx: ExperimentContext, *, suite: EvaluationSuite | None = None) -> Tab6Result:
    """Thresholded EDP selections on the measured curves."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    cells: list[ThresholdCell] = []
    for app in TAB6_APPS:
        ev = suite.evaluate(app, "GA100")
        energy = ev.energy_measured_j
        time = ev.time_measured_s
        for threshold in THRESHOLDS:
            sel = select_optimal_frequency(
                ev.freqs_mhz, energy, time, objective=EDP, threshold=threshold
            )
            i = sel.index
            cells.append(
                ThresholdCell(
                    app=app,
                    threshold=threshold,
                    freq_mhz=sel.freq_mhz,
                    time_change_pct=100.0 * (1.0 - time[i] / time[-1]),
                    energy_saving_pct=100.0 * (1.0 - energy[i] / energy[-1]),
                )
            )
    return Tab6Result(cells=cells)


def render_tab6(result: Tab6Result) -> str:
    """Table 6 layout."""
    rows = []
    for c in result.cells:
        label = "Nil" if c.threshold is None else f"{100 * c.threshold:.0f}%"
        rows.append([c.app, label, c.freq_mhz, c.time_change_pct, c.energy_saving_pct])
    return render_table(
        ["application", "threshold", "freq (MHz)", "time (%)", "energy (%)"],
        rows,
        title="Table 6 - EDP selection under performance-degradation thresholds, GA100",
    )
