"""Energy computation and multi-objective functions (paper Section 4.4).

Energy is the predicted power times the predicted time (paper Eq. 8).
EDP multiplies energy by time once; ED2P twice, weighting delay more —
the knob that makes ED2P "better suited for HPC centers where
performance is paramount" (paper Section 7).  :class:`EDnP` generalises
to any exponent, and any callable with the same signature plugs in as a
user-defined objective (the framework property the paper advertises).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.units import JoulesArray, SecondsArray, WattsArray

__all__ = ["energy_from_power_time", "ObjectiveFunction", "EDnP", "EDP", "ED2P"]


def energy_from_power_time(power_w: WattsArray, time_s: SecondsArray) -> JoulesArray:
    """``E_f = P_f x T_f`` elementwise (paper Eq. 8)."""
    power_w = np.asarray(power_w, dtype=float)
    time_s = np.asarray(time_s, dtype=float)
    if power_w.shape != time_s.shape:
        raise ValueError(f"shape mismatch: power {power_w.shape} vs time {time_s.shape}")
    if np.any(power_w < 0) or np.any(time_s < 0):
        raise ValueError("power and time must be non-negative")
    return power_w * time_s


@runtime_checkable
class ObjectiveFunction(Protocol):
    """A scalarization of (energy, time) — lower is better."""

    name: str

    def __call__(self, energy_j: JoulesArray, time_s: SecondsArray) -> np.ndarray:
        """Score per configuration; the minimiser is the optimum."""
        ...


class EDnP:
    """Energy-delay^n product: ``E x T^n``."""

    def __init__(self, n: float) -> None:
        if n < 0:
            raise ValueError("delay exponent must be non-negative")
        self.n = float(n)
        suffix = {1.0: "EDP", 2.0: "ED2P"}.get(self.n)
        self.name = suffix if suffix is not None else f"ED{self.n:g}P"

    def __call__(self, energy_j: JoulesArray, time_s: SecondsArray) -> np.ndarray:
        energy_j = np.asarray(energy_j, dtype=float)
        time_s = np.asarray(time_s, dtype=float)
        if energy_j.shape != time_s.shape:
            raise ValueError(f"shape mismatch: energy {energy_j.shape} vs time {time_s.shape}")
        return energy_j * time_s**self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EDnP n={self.n:g}>"


#: Energy-delay product (Gonzalez & Horowitz; paper refs [10, 23]).
EDP = EDnP(1.0)
#: Energy-delay-squared product — the paper's preferred objective.
ED2P = EDnP(2.0)
