"""DET003: seed-lineage taint analysis along call-graph paths.

DET001/DET002 police one function at a time: no ambient entropy, thread
the ``rng`` parameter.  What they cannot see is a *conjured root* — a
Generator or seed that springs into existence inside the library from a
hard-coded constant, so two call paths into the same code silently use
unrelated streams.  DET003 closes that gap with an inductive argument
over the call graph:

* **locally** (part A), any RNG factory call inside a seeded package
  must derive from something the caller handed in — a parameter,
  ``self`` state, or the ``rng is None`` fallback idiom;
* **along edges** (part B), any resolved call from a seeded-package
  function into a seeded-package callee must not bind a hard-coded
  literal or a freshly conjured factory to an rng/seed parameter.

If every function only builds RNGs from its inputs and every edge only
passes caller-derived values, then by induction every Generator deep in
``gpusim``/``core``/``serving`` traces back to a root supplied by an
entry point (``cli``, ``experiments``, tests) — which are exactly the
modules allowed to pick seeds.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding
from repro.devtools.rules.base import Rule, register
from repro.devtools.rules.determinism import (
    RNG_FACTORIES,
    SEEDED_PACKAGES,
    _mentions,
    _none_guarded_calls,
    _OwnCalls,
    _param_names,
    _references_any,
)

__all__ = ["DET003SeedLineage"]

#: Parameter names that carry seed lineage across a call edge.
_RNG_PARAM_SUFFIXES = ("_rng", "_seed", "_seed_seq")
_RNG_PARAM_NAMES = frozenset({"rng", "seed", "seed_seq", "seed_sequence", "ss"})


def _is_rng_param(name: str) -> bool:
    return name in _RNG_PARAM_NAMES or name.endswith(_RNG_PARAM_SUFFIXES)


def _tainted_names(fn: ast.AST, params: set[str]) -> set[str]:
    """Names deriving (transitively) from the function's inputs.

    Seeds the taint set with the parameters (including ``self``) and
    propagates through assignments, ``for`` targets, comprehension
    bindings and ``with ... as`` targets until a fixpoint — so
    ``children = self._seed_seq.spawn(n)`` followed by
    ``default_rng(child)`` inside a comprehension is recognised as
    caller-derived lineage.
    """
    tainted = set(params)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.For):
                targets, value = [node.target], node.iter
            elif isinstance(node, ast.comprehension):
                targets, value = [node.target], node.iter
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                targets, value = [node.optional_vars], node.context_expr
            else:
                continue
            if value is None or not _mentions(value, tainted):
                continue
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name) and sub.id not in tainted:
                        tainted.add(sub.id)
                        changed = True
    return tainted


def _is_conjured(expr: ast.expr, ctx: ModuleContext, caller_params: set[str]) -> str | None:
    """Reason string if ``expr`` is a conjured seed/rng, else None.

    Conjured = a hard-coded numeric literal, or an RNG factory call whose
    own arguments do not derive from the caller's inputs.  ``None`` is
    not conjured — it selects the callee's guarded fallback, which part A
    checks at the definition site.
    """
    if isinstance(expr, ast.Constant):
        if expr.value is None or isinstance(expr.value, bool):
            return None
        if isinstance(expr.value, int):
            return f"hard-coded seed {expr.value!r}"
        return None
    if isinstance(expr, ast.Call):
        qualified = ctx.resolve(expr.func)
        if qualified in RNG_FACTORIES:
            if _references_any(expr, caller_params):
                return None  # derived from the caller's own inputs
            return f"freshly constructed {qualified.rsplit('.', 1)[1]}(...)"
    return None


@register
class DET003SeedLineage(Rule):
    """Every RNG in a seeded package must trace to a caller-supplied root."""

    rule_id = "DET003"
    severity = "error"
    summary = "Generator/seed conjured inside a seeded package instead of flowing from the caller"
    rationale = (
        "Seed lineage is an end-to-end property: the paper's campaigns are "
        "reproducible because one root SeedSequence fans out through spawn() "
        "and explicit seed parameters. A constant seed invented mid-library "
        "breaks the lineage invisibly — both DET001 and DET002 pass, yet two "
        "entry points share (or fork) streams they believe are independent. "
        "Checking each function and each resolved call edge locally proves "
        "the global property by induction over call-graph paths."
    )
    needs_project = True

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package(*SEEDED_PACKAGES):
            return []
        findings = list(self._local_roots(ctx))
        if ctx.project is not None:
            findings.extend(self._edge_taint(ctx))
        return findings

    # -- part A: conjured roots at the definition site -------------------
    def _local_roots(self, ctx: ModuleContext) -> Iterable[Finding]:
        # Module-level factory calls: always a conjured root in a library.
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and ctx.resolve(node.func) in RNG_FACTORIES:
                    if node.args or node.keywords:  # zero-arg is DET002's finding
                        yield self.finding(
                            ctx,
                            node,
                            "module-level RNG construction in a seeded package — "
                            "roots must be created by the entry point and threaded in",
                        )
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = set(_param_names(fn))
            rng_params = {p for p in params if p == "rng" or p.endswith("_rng")}
            collector = _OwnCalls()
            for stmt in fn.body:
                collector.visit(stmt)
            guarded = _none_guarded_calls(fn, {p for p in params if _is_rng_param(p)})
            tainted = _tainted_names(fn, params)
            for call in collector.calls:
                qualified = ctx.resolve(call.func)
                if qualified not in RNG_FACTORIES:
                    continue
                if not call.args and not call.keywords:
                    continue  # DET002 flags zero-arg OS entropy
                if _references_any(call, tainted):
                    continue  # derives (transitively) from a parameter or self state
                if call in guarded:
                    continue  # `rng is None` / `seed is None` fallback idiom
                if rng_params:
                    continue  # DET002 already flags re-seeding past an rng param
                yield self.finding(
                    ctx,
                    call,
                    f"{fn.name}() conjures an RNG root via {qualified}(...) from "
                    "values not derived from its inputs — accept an rng/seed "
                    "parameter and derive from it",
                )

    # -- part B: conjured values crossing a call edge --------------------
    def _edge_taint(self, ctx: ModuleContext) -> Iterable[Finding]:
        from repro.devtools.graph import bind_arguments

        index = ctx.project
        graph = index.call_graph()
        for site in graph.sites_in(ctx.module):
            if site.kind != "resolved" or site.target is None or site.node is None:
                continue
            callee = index.functions.get(site.target)
            if callee is None:
                continue
            callee_pkg = any(
                callee.module == p or callee.module.startswith(p + ".")
                for p in SEEDED_PACKAGES
            )
            if not callee_pkg:
                continue
            caller_fn = index.functions.get(site.caller)
            if caller_fn is not None:
                caller_params = _tainted_names(caller_fn.node, set(_param_names(caller_fn.node)))
            else:
                caller_params = set()
            for param, expr in bind_arguments(site, callee).items():
                if not _is_rng_param(param):
                    continue
                reason = _is_conjured(expr, ctx, caller_params)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        expr,
                        f"call to {site.target}() binds {reason} to parameter "
                        f"{param!r} — thread the caller's seed lineage instead",
                    )
