"""Pareto study bench: the single-pick simplicity claim.

Shape assertions: every measured EDP/ED2P selection lies on the
(energy, time) Pareto front — the paper's single configuration gives up
choice, not optimality, relative to the Pareto-set related work [8, 11].
"""

import pytest

from repro.experiments.pareto_study import render_pareto_study, run_pareto_study


@pytest.fixture(scope="module")
def study(ctx, suite):
    return run_pareto_study(ctx, suite=suite)


def test_pareto_report(benchmark, study, report):
    benchmark(render_pareto_study, study)
    report("Pareto study - selection optimality", render_pareto_study(study))


def test_every_selection_on_front(study):
    assert study.all_selections_on_front()


def test_fronts_are_nontrivial(study):
    """The design space offers real choice (front >> 1 point).

    DVFS-insensitive apps (LSTM/GROMACS) have nearly flat time curves,
    so measurement noise collapses most of their front — only a floor of
    2 applies there; clock-sensitive apps must expose a rich front.
    """
    for row in study.rows:
        assert row.front_size >= 2, row.app
    rich = sum(1 for row in study.rows if row.front_size >= 10)
    assert rich >= 3


def test_knee_between_selections_or_nearby(study):
    """The geometric knee lands in the same clock region as EDP/ED2P."""
    for row in study.rows:
        lo = min(row.edp_freq_mhz, row.ed2p_freq_mhz) - 300.0
        hi = max(row.edp_freq_mhz, row.ed2p_freq_mhz) + 300.0
        assert lo <= row.knee_freq_mhz <= hi, row.app
