"""Table 1: GPU specifications (fidelity bench)."""

from repro.experiments.tab1 import render_tab1, run_tab1


def test_tab1_gpu_specs(benchmark, report):
    result = benchmark(run_tab1)
    report("Table 1 - GPU specifications", render_tab1(result))
    assert result.rows["GA100"]["used_dvfs_configs"] == 61
    assert result.rows["GV100"]["used_dvfs_configs"] == 117
    assert result.rows["GA100"]["tdp_w"] == 500.0
