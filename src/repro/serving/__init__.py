"""Online frequency-selection serving layer.

Production-facing frontend over the paper's online phase: a thread-safe
:class:`~repro.serving.service.SelectionService` that micro-batches many
concurrent requests into single packed forward passes through the fused
inference engine (:mod:`repro.serving.engine`) and memoizes prediction
curves in a bounded LRU, with per-stage service stats.  See DESIGN.md
§9 for the batching/caching contracts and §13 for the packed-weight
engine.
"""

from repro.serving.cache import LRUCache
from repro.serving.engine import FusedInferenceEngine, PackedModel, ShardPool
from repro.serving.microbatch import MicroBatcher
from repro.serving.service import (
    SelectionRequest,
    SelectionService,
    ServiceResponse,
    ServiceStats,
)

__all__ = [
    "FusedInferenceEngine",
    "LRUCache",
    "MicroBatcher",
    "PackedModel",
    "SelectionRequest",
    "SelectionService",
    "ServiceResponse",
    "ServiceStats",
    "ShardPool",
]
