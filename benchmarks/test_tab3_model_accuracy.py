"""Table 3: model accuracy per app on GA100 and GV100 (portability).

Shape assertions (paper Section 5.1 / abstract): accuracies in the high
band on GA100 and >~90 % means on GV100 with the *same* GA100-trained
weights — the cross-architecture portability claim.
"""

import numpy as np
import pytest

from repro.experiments.tab3 import render_tab3, run_tab3


@pytest.fixture(scope="module")
def tab3(ctx, suite):
    return run_tab3(ctx, suite=suite)


def test_tab3_report(benchmark, tab3, report):
    benchmark(render_tab3, tab3)
    report("Table 3 - model accuracy (GA100 + GV100)", render_tab3(tab3))


def test_tab3_ga100_accuracy_band(tab3):
    rows = [r for r in tab3.rows if r.arch == "GA100"]
    assert np.mean([r.power_accuracy for r in rows]) > 90.0
    assert np.mean([r.time_accuracy for r in rows]) > 85.0
    assert tab3.min_accuracy("GA100") > 78.0


def test_tab3_gv100_portability(tab3):
    """GA100-trained weights on Volta (paper: >93 % there)."""
    rows = [r for r in tab3.rows if r.arch == "GV100"]
    assert np.mean([r.power_accuracy for r in rows]) > 85.0
    assert np.mean([r.time_accuracy for r in rows]) > 82.0


def test_tab3_portability_gap_small(tab3):
    ga = np.mean([min(r.power_accuracy, r.time_accuracy) for r in tab3.rows if r.arch == "GA100"])
    gv = np.mean([min(r.power_accuracy, r.time_accuracy) for r in tab3.rows if r.arch == "GV100"])
    assert abs(ga - gv) < 8.0
