"""Serving-layer throughput micro-benchmark.

Times one flush of 64 selection requests through
:class:`repro.serving.SelectionService` against the pre-PR path — a
sequential per-request predict+select loop (what ``run_online`` does per
application) — and records selections/sec per scenario in
``BENCH_serving.json`` at the repo root.

Scenarios:

* **cold** — 64 unique profiles, empty cache: measures pure batching.
* **hot** — 8 distinct applications x 8 repeats in one flush: intra-flush
  dedup computes 8 curves and memoizes 8 Algorithm 1 passes for 64
  responses.  This is the realistic datacenter mix (most submissions are
  re-runs of known applications) and the PR's >= 5x acceptance bar.
* **cached** — the hot flush again on a warm service: every curve comes
  out of the LRU, no DNN forward at all.

On this machine BLAS matmul cost is linear in rows (no batching economy
of scale), so the speedup comes from dedup + caching; batching still buys
one lock acquisition and one Python dispatch per *flush* instead of per
request.  Throughput numbers are machine-dependent; the recorded file
also guards against regressions via ``REGRESSION_FACTOR``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:  # tests.golden holds the tiny-pipeline config
    sys.path.insert(0, str(_REPO_ROOT))

import numpy as np
import pytest

from repro.core.energy import ED2P, EDP, energy_from_power_time
from repro.core.dataset import FeatureVector
from repro.core.selection import select_optimal_frequency
from repro.serving import SelectionRequest, SelectionService

from tests.golden.tiny_pipeline import make_tiny_pipeline, train_tiny_models

BENCH_PATH = _REPO_ROOT / "BENCH_serving.json"

N_REQUESTS = 64
N_DISTINCT_HOT = 8
#: The PR's acceptance bar: hot-mix serving vs the sequential loop.
SPEEDUP_BAR = 5.0
#: Fail when throughput drops more than this factor below the best record.
REGRESSION_FACTOR = 3.0


@pytest.fixture(scope="module")
def pipeline():
    return make_tiny_pipeline(train_tiny_models())


def _profiles(n_distinct: int) -> list[SelectionRequest]:
    """Deterministic pre-profiled requests spread over the feature plane."""
    rng = np.random.default_rng(42)
    requests = []
    for i in range(n_distinct):
        fv = FeatureVector(
            float(rng.uniform(0.05, 0.95)), float(rng.uniform(0.05, 0.95)), 1410.0
        )
        requests.append(
            SelectionRequest.from_features(
                fv, float(rng.uniform(0.5, 20.0)), name=f"app-{i}"
            )
        )
    return requests


def _sequential_select(pipeline, requests) -> list[dict]:
    """The pre-PR path: run_online's predict+select stages, one at a time."""
    freqs = pipeline.device.dvfs.usable_array()
    scale = pipeline.device.arch.tdp_watts
    out = []
    for req in requests:
        power = pipeline.power_model.predict_power(
            req.features, freqs, target_power_scale_w=scale
        )
        time_s = pipeline.time_model.predict_time(
            req.features, freqs, time_at_max_s=req.time_at_max_s
        )
        energy = energy_from_power_time(power, time_s)
        out.append(
            {
                obj.name: select_optimal_frequency(freqs, energy, time_s, objective=obj)
                for obj in (EDP, ED2P)
            }
        )
    return out


def _best_of(fn, repeats: int = 5) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _throughput(seconds: float) -> float:
    return round(N_REQUESTS / seconds, 1)


def _measure_all(pipeline) -> dict:
    cold_requests = _profiles(N_REQUESTS)
    hot_requests = (_profiles(N_DISTINCT_HOT) * (N_REQUESTS // N_DISTINCT_HOT))[:N_REQUESTS]

    seq_s = _best_of(lambda: _sequential_select(pipeline, hot_requests))

    def cold():
        SelectionService(pipeline, max_batch_size=N_REQUESTS).select_many(cold_requests)

    def hot():
        SelectionService(pipeline, max_batch_size=N_REQUESTS).select_many(hot_requests)

    cold_s = _best_of(cold)
    hot_s = _best_of(hot)

    warm = SelectionService(pipeline, max_batch_size=N_REQUESTS)
    warm.select_many(hot_requests)  # prime the LRU
    cached_s = _best_of(lambda: warm.select_many(hot_requests))

    sequential = {"seconds": round(seq_s, 6), "selections_per_s": _throughput(seq_s)}
    scenarios = {}
    for name, elapsed in (("cold", cold_s), ("hot", hot_s), ("cached", cached_s)):
        scenarios[name] = {
            "seconds": round(elapsed, 6),
            "selections_per_s": _throughput(elapsed),
            "speedup_vs_sequential": round(seq_s / elapsed, 2),
        }
    return {"sequential": sequential, "scenarios": scenarios}


def test_serving_throughput_tracked(pipeline):
    """Record the serving perf trajectory and enforce the 5x bar."""
    # Correctness sanity before timing: the hot flush must agree with the
    # sequential loop decision-for-decision (the full bitwise contract is
    # asserted in tests/serving).
    hot_requests = (_profiles(N_DISTINCT_HOT) * (N_REQUESTS // N_DISTINCT_HOT))[:N_REQUESTS]
    expected = _sequential_select(pipeline, hot_requests)
    responses = SelectionService(pipeline, max_batch_size=N_REQUESTS).select_many(hot_requests)
    for response, want in zip(responses, expected):
        for obj_name, sel in want.items():
            assert response.selection(obj_name).freq_mhz == sel.freq_mhz
            assert response.selection(obj_name).index == sel.index

    previous = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    measured = _measure_all(pipeline)
    current = measured["scenarios"]["hot"]

    best = previous.get("best")
    if best is None or current["selections_per_s"] > best["selections_per_s"]:
        best = current

    payload = {
        "bench": "serving-batch-throughput",
        "config": {
            "n_requests": N_REQUESTS,
            "n_distinct_hot": N_DISTINCT_HOT,
            "objectives": ["EDP", "ED2P"],
            "speedup_bar": SPEEDUP_BAR,
        },
        # The pre-PR path is the sequential per-request loop itself.
        "pre_pr_baseline": previous.get("pre_pr_baseline") or measured["sequential"],
        "sequential": measured["sequential"],
        "scenarios": measured["scenarios"],
        "best": best,
        "current": current,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert current["speedup_vs_sequential"] >= SPEEDUP_BAR, (
        f"hot-mix serving speedup {current['speedup_vs_sequential']:.1f}x is below the "
        f"{SPEEDUP_BAR:.0f}x acceptance bar (sequential "
        f"{measured['sequential']['selections_per_s']:.0f} vs batched "
        f"{current['selections_per_s']:.0f} selections/s)"
    )

    floor = best["selections_per_s"] / REGRESSION_FACTOR
    assert current["selections_per_s"] >= floor, (
        f"serving throughput regressed: {current['selections_per_s']:.0f} selections/s "
        f"is below the {floor:.0f} floor ({REGRESSION_FACTOR}x under the best recorded "
        f"{best['selections_per_s']:.0f})"
    )


def test_cached_flush_is_fastest_path(pipeline):
    """A warm LRU must beat (or match) recomputing the same flush."""
    recorded = json.loads(BENCH_PATH.read_text())
    scenarios = recorded["scenarios"]
    assert scenarios["cached"]["selections_per_s"] >= scenarios["cold"]["selections_per_s"]
