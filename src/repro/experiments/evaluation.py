"""Shared evaluation computation behind Figures 7-10 and Tables 3-6.

For every (architecture, real application) pair this produces:

* the online-phase prediction curves (power / time / energy),
* the measured ground-truth curves from a brute-force sweep,
* model accuracies (paper's ``100 - MAPE``),
* the four selections: M-EDP, P-EDP, M-ED2P, P-ED2P, and
* the energy/time changes each selection realises **on the measured
  curves** (a predicted frequency is judged by what it actually does,
  exactly as the paper evaluates Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import FeatureVector
from repro.core.energy import ED2P, EDP, energy_from_power_time
from repro.core.metrics import accuracy_percent
from repro.core.selection import SelectionResult, select_optimal_frequency
from repro.experiments.context import ExperimentContext

__all__ = ["AppEvaluation", "EvaluationSuite"]


@dataclass(frozen=True)
class AppEvaluation:
    """Everything measured and predicted for one app on one GPU."""

    app: str
    arch: str
    #: The online-phase feature vector (activities measured at f_max).
    features: "FeatureVector"
    freqs_mhz: np.ndarray
    power_measured_w: np.ndarray
    power_predicted_w: np.ndarray
    time_measured_s: np.ndarray
    time_predicted_s: np.ndarray
    power_accuracy: float
    time_accuracy: float
    #: Keys: "M-EDP", "P-EDP", "M-ED2P", "P-ED2P".
    selections: dict[str, SelectionResult]

    @property
    def energy_measured_j(self) -> np.ndarray:
        """Measured energy curve."""
        return self.power_measured_w * self.time_measured_s

    @property
    def energy_predicted_j(self) -> np.ndarray:
        """Predicted energy curve."""
        return self.power_predicted_w * self.time_predicted_s

    def realised_changes(self, method: str) -> tuple[float, float]:
        """(energy saving %, time change %) a selection realises.

        Both are evaluated on the *measured* curves at the selected clock,
        relative to the maximum clock.  Positive energy = saving; negative
        time = slowdown (paper Table 5 sign convention).
        """
        sel = self.selections[method]
        i = int(np.argmin(np.abs(self.freqs_mhz - sel.freq_mhz)))
        e = self.energy_measured_j
        t = self.time_measured_s
        energy_saving = 100.0 * (1.0 - e[i] / e[-1])
        time_change = 100.0 * (1.0 - t[i] / t[-1])  # negative when slower
        return float(energy_saving), float(time_change)


class EvaluationSuite:
    """Computes and caches :class:`AppEvaluation` for every app/arch."""

    def __init__(self, ctx: ExperimentContext) -> None:
        self.ctx = ctx
        self._cache: dict[tuple[str, str], AppEvaluation] = {}

    def evaluate(self, app_name: str, arch_name: str = "GA100") -> AppEvaluation:
        """Evaluate one application on one architecture (cached)."""
        key = (app_name.lower(), arch_name.upper())
        if key in self._cache:
            return self._cache[key]

        pipe = self.ctx.pipeline(arch_name)
        online = pipe.run_online(self.ctx.registry.get(app_name), objectives=(EDP, ED2P))
        truth = self.ctx.truth_sweep(app_name, arch_name)
        freqs, p_meas = truth.mean_curve("power")
        _, t_meas = truth.mean_curve("time")
        if freqs.shape != online.freqs_mhz.shape or not np.allclose(freqs, online.freqs_mhz):
            raise RuntimeError("measured and predicted clock grids disagree")

        e_meas = energy_from_power_time(p_meas, t_meas)
        selections = {
            "M-EDP": select_optimal_frequency(freqs, e_meas, t_meas, objective=EDP),
            "M-ED2P": select_optimal_frequency(freqs, e_meas, t_meas, objective=ED2P),
            "P-EDP": online.selection("EDP"),
            "P-ED2P": online.selection("ED2P"),
        }
        result = AppEvaluation(
            app=app_name.lower(),
            arch=arch_name.upper(),
            features=online.features,
            freqs_mhz=freqs,
            power_measured_w=p_meas,
            power_predicted_w=online.power_w,
            time_measured_s=t_meas,
            time_predicted_s=online.time_s,
            power_accuracy=accuracy_percent(p_meas, online.power_w),
            time_accuracy=accuracy_percent(t_meas / t_meas[-1], online.time_s / online.time_s[-1]),
            selections=selections,
        )
        self._cache[key] = result
        return result

    def evaluate_all(self, arch_name: str = "GA100") -> list[AppEvaluation]:
        """All six real applications on one architecture."""
        return [self.evaluate(w.name, arch_name) for w in self.ctx.evaluation_workloads()]
