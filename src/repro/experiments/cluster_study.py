"""Cluster study: the paper's per-GPU method at machine-room scale.

A small GPU partition (2 nodes x 2 GPUs) executes a mixed 36-job
campaign of the six real applications under three policies:

* **default-clock** — everything at boost (status quo),
* **static-cap** — one site-wide 900 MHz cap (the blunt instrument),
* **model-driven** — the paper's per-application ED2P selection.

Expected shapes: the model-driven policy saves a large fraction of the
default policy's energy at a single-digit makespan increase, and beats
the static cap on makespan at comparable (or better) energy; peak
partition power drops under both non-default policies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import (
    ClusterReport,
    DefaultClockPolicy,
    FIFOScheduler,
    GPUNode,
    Job,
    ModelDrivenPolicy,
    StaticClockPolicy,
    summarize,
)
from repro.experiments.context import ExperimentContext
from repro.experiments.report import render_table
from repro.gpusim.arch import get_architecture

__all__ = ["ClusterStudyResult", "run_cluster_study", "render_cluster_study"]

#: Jobs per application in the campaign (arrival staggered).
_JOBS_PER_APP = 6
_STATIC_CAP_MHZ = 900.0


@dataclass(frozen=True)
class ClusterStudyResult:
    """Reports per policy plus the model policy's decisions."""

    reports: dict[str, ClusterReport]
    decisions_mhz: dict[str, float]

    def report(self, policy: str) -> ClusterReport:
        """Report accessor by policy name."""
        try:
            return self.reports[policy]
        except KeyError:
            raise KeyError(f"no report for {policy!r}; have {sorted(self.reports)}") from None


def _campaign(ctx: ExperimentContext) -> list[Job]:
    jobs: list[Job] = []
    job_id = 0
    for burst in range(_JOBS_PER_APP):
        for workload in ctx.evaluation_workloads():
            jobs.append(Job(job_id, workload, arrival_s=2.0 * burst))
            job_id += 1
    return jobs


def run_cluster_study(ctx: ExperimentContext) -> ClusterStudyResult:
    """Run the campaign under all three policies on fresh partitions."""
    pipeline = ctx.pipeline("GA100")
    arch = get_architecture("GA100")
    model_policy = ModelDrivenPolicy(pipeline)
    policies = {
        "default-clock": DefaultClockPolicy(),
        "static-cap": StaticClockPolicy(_STATIC_CAP_MHZ),
        "model-driven": model_policy,
    }
    reports: dict[str, ClusterReport] = {}
    for name, policy in policies.items():
        # Fresh nodes per policy so board noise streams are identical.
        nodes = [
            GPUNode(i, arch, gpus_per_node=2, seed=ctx.settings.seed,
                    max_samples_per_run=ctx.settings.max_samples_per_run)
            for i in range(2)
        ]
        records = FIFOScheduler(nodes, policy).run(_campaign(ctx))
        reports[name] = summarize(name, records)
    return ClusterStudyResult(reports=reports, decisions_mhz=model_policy.decisions)


def render_cluster_study(result: ClusterStudyResult) -> str:
    """Policy comparison table plus the per-app clock decisions."""
    base = result.report("default-clock")
    rows = []
    for name, report in result.reports.items():
        rows.append(
            [
                name,
                report.makespan_s,
                report.total_energy_j / 1e3,
                report.peak_power_w / 1e3,
                100.0 * report.energy_saving_vs(base),
                100.0 * report.makespan_change_vs(base),
            ]
        )
    table = render_table(
        ["policy", "makespan (s)", "energy (kJ)", "peak power (kW)", "E save (%)", "makespan (+%)"],
        rows,
        title="Cluster study - 36 mixed jobs on 2 nodes x 2 GA100 (FIFO)",
    )
    decisions = ", ".join(f"{k}:{v:.0f}" for k, v in sorted(result.decisions_mhz.items()))
    return f"{table}\nmodel-driven clocks (MHz): {decisions}"
