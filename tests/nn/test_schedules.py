"""Learning-rate schedule + regularisation tests."""

import numpy as np
import pytest

from repro.nn import FeedForwardNetwork, RMSprop, TrainConfig, train
from repro.nn.schedules import (
    ConstantSchedule,
    CosineAnnealing,
    ExponentialDecay,
    StepDecay,
    WarmupSchedule,
)


class TestScheduleValues:
    def test_constant(self):
        s = ConstantSchedule()
        assert s(0) == 1.0
        assert s(100) == 1.0

    def test_step_decay(self):
        s = StepDecay(step_epochs=10, gamma=0.5)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(20) == 0.25

    def test_exponential_decay(self):
        s = ExponentialDecay(rate=0.9)
        assert s(0) == 1.0
        assert s(2) == pytest.approx(0.81)

    def test_cosine_endpoints(self):
        s = CosineAnnealing(total_epochs=50, floor=0.02)
        assert s(0) == pytest.approx(1.0)
        assert s(50) == pytest.approx(0.02)
        assert s(25) == pytest.approx(0.51, abs=1e-9)

    def test_cosine_clamps_past_horizon(self):
        s = CosineAnnealing(total_epochs=10, floor=0.1)
        assert s(100) == pytest.approx(0.1)

    def test_warmup_then_after(self):
        s = WarmupSchedule(warmup_epochs=4, after=StepDecay(2, 0.5))
        assert s(0) == pytest.approx(0.25)
        assert s(3) == pytest.approx(1.0)
        assert s(4) == pytest.approx(1.0)  # first post-warmup epoch
        assert s(6) == pytest.approx(0.5)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError, match="epoch"):
            ConstantSchedule()(-1)

    def test_validation(self):
        with pytest.raises(ValueError, match="step_epochs"):
            StepDecay(0)
        with pytest.raises(ValueError, match="gamma"):
            StepDecay(5, gamma=0.0)
        with pytest.raises(ValueError, match="rate"):
            ExponentialDecay(rate=1.5)
        with pytest.raises(ValueError, match="total_epochs"):
            CosineAnnealing(0)
        with pytest.raises(ValueError, match="floor"):
            CosineAnnealing(10, floor=0.0)
        with pytest.raises(ValueError, match="warmup_epochs"):
            WarmupSchedule(0)

    def test_monotone_nonincreasing_decays(self):
        for s in (StepDecay(3, 0.7), ExponentialDecay(0.95), CosineAnnealing(30)):
            values = [s(e) for e in range(40)]
            assert all(a >= b - 1e-12 for a, b in zip(values, values[1:])), type(s).__name__


def _toy():
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(300, 3))
    y = x[:, 0] ** 2 + 0.5 * x[:, 1]
    return x, y


class TestTrainingIntegration:
    def test_schedule_restores_base_lr(self):
        x, y = _toy()
        net = FeedForwardNetwork.build(3, (8,), 1, seed=0)
        opt = RMSprop(0.005)
        train(net, x, y, optimizer=opt, config=TrainConfig(epochs=5), schedule=ExponentialDecay(0.5), seed=0)
        assert opt.learning_rate == 0.005

    def test_decayed_training_converges(self):
        x, y = _toy()
        net = FeedForwardNetwork.build(3, (16, 16), 1, seed=0)
        hist = train(
            net, x, y,
            optimizer=RMSprop(0.005),
            config=TrainConfig(epochs=40),
            schedule=CosineAnnealing(40),
            seed=0,
        )
        assert hist.train_loss[-1] < 0.3 * hist.train_loss[0]

    def test_weight_decay_shrinks_weights(self):
        x, y = _toy()
        free = FeedForwardNetwork.build(3, (16,), 1, seed=1)
        decayed = FeedForwardNetwork.build(3, (16,), 1, seed=1)
        train(free, x, y, config=TrainConfig(epochs=20), seed=0)
        train(decayed, x, y, config=TrainConfig(epochs=20, weight_decay=0.05), seed=0)
        norm_free = sum(np.linalg.norm(l.params["W"]) for l in free.layers)
        norm_decayed = sum(np.linalg.norm(l.params["W"]) for l in decayed.layers)
        assert norm_decayed < norm_free

    def test_grad_clipping_survives_extreme_targets(self):
        """Huge targets produce huge gradients; clipping keeps training finite."""
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(100, 2))
        y = 1e8 * x[:, 0]
        net = FeedForwardNetwork.build(2, (8,), 1, seed=0)
        hist = train(
            net, x, y,
            optimizer=RMSprop(0.01),
            config=TrainConfig(epochs=5, grad_clip_norm=1.0, validation_split=0.0),
            seed=0,
        )
        assert np.isfinite(hist.train_loss[-1])
        for layer in net.layers:
            assert np.all(np.isfinite(layer.params["W"]))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="weight_decay"):
            TrainConfig(weight_decay=-1.0)
        with pytest.raises(ValueError, match="grad_clip_norm"):
            TrainConfig(grad_clip_norm=0.0)
