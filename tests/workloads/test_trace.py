"""Phase/trace workload tests."""

import numpy as np
import pytest

from repro.gpusim import GA100, KernelCensus, NoiseModel, SimulatedGPU
from repro.workloads.trace import Phase, PhasedWorkload, RecommenderTraining, merge_censuses


def phase(name, *, flops=1e12, dram=1e11, weight=1.0, **kw):
    return Phase(name, KernelCensus(flops_fp64=flops, dram_bytes=dram, **kw), duration_weight=weight)


class TestMerge:
    def test_extensive_quantities_sum(self):
        merged = merge_censuses([phase("a", flops=1e12, dram=1e11), phase("b", flops=2e12, dram=3e11)])
        assert merged.flops_fp64 == pytest.approx(3e12)
        assert merged.dram_bytes == pytest.approx(4e11)

    def test_intensive_quantities_weighted(self):
        a = phase("a", occupancy=0.4, weight=1.0)
        b = phase("b", occupancy=0.8, weight=3.0)
        merged = merge_censuses([a, b])
        assert merged.occupancy == pytest.approx(0.4 * 0.25 + 0.8 * 0.75)

    def test_single_phase_identity(self):
        p = phase("solo", flops=5e11, dram=2e11, occupancy=0.66)
        merged = merge_censuses([p])
        assert merged.flops_fp64 == p.census.flops_fp64
        assert merged.occupancy == pytest.approx(0.66)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_censuses([])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="duration_weight"):
            phase("bad", weight=0.0)


class TestRecommender:
    def test_two_phases(self):
        phases = RecommenderTraining().phases()
        assert [p.name for p in phases] == ["embedding", "mlp"]

    def test_phases_scale_with_steps(self):
        w = RecommenderTraining()
        small = w.phases(100)
        large = w.phases(1000)
        for s, l in zip(small, large):
            assert l.census.total_flops == pytest.approx(10.0 * s.census.total_flops, rel=0.01)

    def test_phases_occupy_opposite_corners(self):
        dev = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())
        phases = RecommenderTraining().phases()
        bd = {p.name: dev.timing.evaluate(p.census, 1410.0) for p in phases}
        assert bd["mlp"].fp_active > 0.5
        assert bd["mlp"].dram_active < 0.2
        assert bd["embedding"].fp_active < 0.1
        assert bd["embedding"].dram_active > 0.3

    def test_merged_census_sits_between(self):
        dev = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())
        w = RecommenderTraining()
        merged_bd = dev.timing.evaluate(w.census(), 1410.0)
        phases = {p.name: dev.timing.evaluate(p.census, 1410.0) for p in w.phases()}
        assert phases["embedding"].fp_active < merged_bd.fp_active < phases["mlp"].fp_active

    def test_runtime_reasonable(self):
        dev = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())
        total = sum(dev.true_time(p.census, 1410.0) for p in RecommenderTraining().phases())
        assert 0.2 < total < 60.0

    def test_base_class_requires_phases(self):
        class Broken(PhasedWorkload):
            name = "broken"
            default_size = 1

        with pytest.raises(NotImplementedError):
            Broken().census()


class TestPhasedPipeline:
    def test_phased_online_runs(self, fast_ctx):
        pipe = fast_ctx.pipeline("GA100")
        result = pipe.run_online_phased(RecommenderTraining())
        assert result.freqs_mhz.size == 61
        assert np.all(result.power_w > 0)
        assert np.all(result.time_s > 0)
        assert "ED2P" in result.selections

    def test_phased_time_is_sum_of_measurable_phases(self, fast_ctx):
        pipe = fast_ctx.pipeline("GA100")
        result = pipe.run_online_phased(RecommenderTraining())
        # At f_max the composite prediction equals the measured total.
        assert result.time_s[-1] == pytest.approx(result.measured_time_at_max_s, rel=0.15)

    def test_unfitted_pipeline_rejected(self):
        from repro.core import FrequencySelectionPipeline

        pipe = FrequencySelectionPipeline(SimulatedGPU(GA100, seed=0))
        with pytest.raises(RuntimeError, match="fit_offline"):
            pipe.run_online_phased(RecommenderTraining())
