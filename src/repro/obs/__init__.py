"""Unified observability layer: metrics, tracing, and run manifests.

Three orthogonal pieces share this package (see DESIGN.md §10):

* :mod:`repro.obs.metrics` — process-local typed metrics
  (Counter / Gauge / Histogram) behind a named registry, exported as
  Prometheus text or round-trippable JSON.
* :mod:`repro.obs.trace` — span tracer with parent/child nesting, a
  JSONL sink plus bounded ring buffer, and a no-op fast path that makes
  permanent instrumentation of hot loops free when tracing is off.
* :mod:`repro.obs.manifest` — one structured provenance record per CLI
  invocation (config hash, seed, model fingerprints, git state, wall
  time, metric snapshot).

Three consumer modules sit on top of the emitters (DESIGN.md §15):

* :mod:`repro.obs.analyze` — span-tree reconstruction, self- vs
  cumulative-time attribution, critical path, collapsed-stack
  flamegraph export, and per-phase diffs between two runs.
* :mod:`repro.obs.store` — append-only, manifest-keyed run-history
  store ingesting bench payloads, fleet metrics, service stats and
  manifests into one queryable trajectory.
* :mod:`repro.obs.report` — ``repro report``: trajectory tables and the
  >10 % hot-path regression gate that CI runs.

The instrumentation contract for the rest of the codebase: importing
and calling into ``repro.obs`` must never perturb numerics, RNG
streams, or public APIs — the golden suite runs fully traced and is
asserted bitwise-identical to the untraced run.
"""

from repro.obs.analyze import (
    DiffRow,
    SpanNode,
    attribution,
    build_span_forest,
    critical_path,
    diff_attribution,
    forest_from_file,
    render_attribution,
    render_critical_path,
    render_diff,
    to_collapsed,
    write_collapsed,
)
from repro.obs.manifest import (
    RunContext,
    RunManifest,
    annotate,
    config_hash,
    current_run,
    git_describe,
    start_run,
    write_manifest,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    get_registry,
    registry_from_json,
)
from repro.obs.report import (
    collect_rows,
    evaluate_gate,
    load_bench_payloads,
    render_report,
)
from repro.obs.store import (
    FileLock,
    LockTimeout,
    RunRecord,
    RunStore,
    TrackedMetric,
    record_from_bench_payload,
    record_from_fleet_metrics,
    record_from_manifest,
    record_from_service_stats,
    tracked_metrics,
)
from repro.obs.summarize import (
    load_events,
    render_summary,
    summarize_events,
    summarize_file,
)
from repro.obs.trace import (
    Span,
    Tracer,
    configure,
    disable,
    event,
    get_tracer,
    is_enabled,
    span,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "get_registry",
    "registry_from_json",
    # trace
    "Span",
    "Tracer",
    "span",
    "event",
    "configure",
    "disable",
    "get_tracer",
    "is_enabled",
    # manifest
    "RunManifest",
    "RunContext",
    "start_run",
    "current_run",
    "annotate",
    "config_hash",
    "git_describe",
    "write_manifest",
    # summaries
    "load_events",
    "summarize_events",
    "summarize_file",
    "render_summary",
    # analyze
    "SpanNode",
    "DiffRow",
    "build_span_forest",
    "forest_from_file",
    "attribution",
    "critical_path",
    "diff_attribution",
    "to_collapsed",
    "write_collapsed",
    "render_attribution",
    "render_critical_path",
    "render_diff",
    # store
    "FileLock",
    "LockTimeout",
    "RunRecord",
    "RunStore",
    "TrackedMetric",
    "tracked_metrics",
    "record_from_bench_payload",
    "record_from_fleet_metrics",
    "record_from_service_stats",
    "record_from_manifest",
    # report
    "collect_rows",
    "evaluate_gate",
    "load_bench_payloads",
    "render_report",
]
