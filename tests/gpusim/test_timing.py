"""Timing-model tests: roofline behaviour, knees, invariances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import GA100, KernelCensus, TimingModel


@pytest.fixture()
def model() -> TimingModel:
    return TimingModel(GA100)


class TestComputeBound:
    def test_time_scales_inversely_with_clock(self, model, compute_census):
        """An ideal compute kernel at half clock takes ~2x longer (GPU part)."""
        bd_hi = model.evaluate(compute_census, 1410.0)
        bd_lo = model.evaluate(compute_census, 705.0)
        assert bd_lo.t_compute_fp64 == pytest.approx(2.0 * bd_hi.t_compute_fp64, rel=1e-9)

    def test_compute_dominates(self, model, compute_census):
        bd = model.evaluate(compute_census, 1410.0)
        assert bd.t_compute > bd.t_memory

    def test_fp_active_high(self, model, compute_census):
        bd = model.evaluate(compute_census, 1410.0)
        assert bd.fp_active > 0.7

    def test_fp64_only_census_has_zero_fp32(self, model, compute_census):
        bd = model.evaluate(compute_census, 1410.0)
        assert bd.t_compute_fp32 == 0.0
        assert bd.fp32_active == 0.0


class TestMemoryBound:
    def test_memory_dominates(self, model, memory_census):
        bd = model.evaluate(memory_census, 1410.0)
        assert bd.t_memory > bd.t_compute

    def test_dram_active_high(self, model, memory_census):
        bd = model.evaluate(memory_census, 1410.0)
        assert bd.dram_active > 0.6

    def test_bandwidth_saturates_above_knee(self, model, memory_census):
        """Paper Fig. 1 (h): bandwidth flattens around ~900 MHz on GA100."""
        bw_900 = model.memory_bandwidth(memory_census, 950.0)
        bw_1410 = model.memory_bandwidth(memory_census, 1410.0)
        assert bw_1410 / bw_900 < 1.10

    def test_bandwidth_linear_below_knee(self, model, memory_census):
        bw_300 = model.memory_bandwidth(memory_census, 300.0)
        bw_600 = model.memory_bandwidth(memory_census, 600.0)
        assert bw_600 / bw_300 == pytest.approx(2.0, rel=0.05)

    def test_memory_time_flat_above_knee(self, model, memory_census):
        t_hi = model.evaluate(memory_census, 1410.0).t_memory
        t_mid = model.evaluate(memory_census, 1000.0).t_memory
        assert t_mid / t_hi < 1.12


class TestMonotonicity:
    @given(
        f1=st.floats(min_value=510.0, max_value=1410.0),
        f2=st.floats(min_value=510.0, max_value=1410.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_time_nonincreasing_in_clock(self, model, f1, f2):
        census = KernelCensus(flops_fp64=1e12, dram_bytes=2e11, serial_fraction=0.05)
        lo, hi = min(f1, f2), max(f1, f2)
        assert model.execution_time(census, lo) >= model.execution_time(census, hi) - 1e-12

    @given(factor=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_time_scales_linearly_with_work(self, model, factor):
        """All census components scale together, so wall time scales exactly."""
        census = KernelCensus(
            flops_fp64=1e12, dram_bytes=2e11, pcie_rx_bytes=1e9, serial_fraction=0.05
        )
        t1 = model.execution_time(census, 900.0)
        t2 = model.execution_time(census.scaled(factor), 900.0)
        assert t2 == pytest.approx(factor * t1, rel=1e-9)


class TestActivityInvariance:
    """Paper Section 4.2.2: activities barely move under DVFS."""

    def test_fp_active_invariant_for_compute_bound(self, model, compute_census):
        acts = [model.evaluate(compute_census, f).fp_active for f in (510.0, 900.0, 1410.0)]
        assert max(acts) - min(acts) < 0.08

    def test_dram_active_bounded_variation_for_memory_bound(self, model, memory_census):
        acts = [model.evaluate(memory_census, f).dram_active for f in (510.0, 900.0, 1410.0)]
        assert max(acts) - min(acts) < 0.20

    def test_activity_scale_applied(self, model):
        census = KernelCensus(flops_fp64=1e13, dram_bytes=1.0, compute_efficiency=0.5)
        bd = model.evaluate(census, 1410.0)
        # Pipe activity is capped by achieved efficiency.
        assert bd.fp_active <= 0.5 + 1e-9


class TestSerialAndHostOverlap:
    def test_serial_time_constant_across_clocks(self, model):
        census = KernelCensus(flops_fp64=1e12, dram_bytes=1e10, serial_fraction=0.2)
        s1 = model.evaluate(census, 510.0).t_serial
        s2 = model.evaluate(census, 1410.0).t_serial
        assert s1 == pytest.approx(s2, rel=1e-12)

    def test_serial_fraction_realised_at_fmax(self, model):
        census = KernelCensus(flops_fp64=1e12, dram_bytes=1e10, serial_fraction=0.3)
        bd = model.evaluate(census, 1410.0)
        assert bd.t_serial / bd.t_total == pytest.approx(0.3, rel=0.02)

    def test_host_overlap_hides_gpu_speedup(self, model):
        """With a dominant concurrent host pipeline, wall time is flat."""
        census = KernelCensus(
            flops_fp64=1e12, dram_bytes=1e10, concurrent_host_fraction=2.0
        )
        t_hi = model.execution_time(census, 1410.0)
        t_mid = model.execution_time(census, 800.0)
        assert t_mid == pytest.approx(t_hi, rel=0.02)

    def test_host_overlap_exposed_at_low_clock(self, model):
        census = KernelCensus(
            flops_fp64=1e12, dram_bytes=1e10, concurrent_host_fraction=1.2
        )
        t_hi = model.execution_time(census, 1410.0)
        t_lo = model.execution_time(census, 510.0)
        assert t_lo > 1.5 * t_hi  # GPU became the critical path


class TestLatencyFraction:
    def test_latency_fraction_flattens_time(self, model):
        sensitive = KernelCensus(flops_fp64=1e12, dram_bytes=1e9, compute_latency_fraction=0.0)
        flat = KernelCensus(flops_fp64=1e12, dram_bytes=1e9, compute_latency_fraction=0.6)
        slow_sensitive = model.execution_time(sensitive, 510.0) / model.execution_time(sensitive, 1410.0)
        slow_flat = model.execution_time(flat, 510.0) / model.execution_time(flat, 1410.0)
        assert slow_flat < slow_sensitive

    def test_latency_fraction_no_effect_at_fmax(self, model):
        a = KernelCensus(flops_fp64=1e12, dram_bytes=1e9, compute_latency_fraction=0.0)
        b = KernelCensus(flops_fp64=1e12, dram_bytes=1e9, compute_latency_fraction=0.6)
        assert model.execution_time(a, 1410.0) == pytest.approx(model.execution_time(b, 1410.0))


class TestValidationAndMisc:
    def test_nonpositive_clock_rejected(self, model, compute_census):
        with pytest.raises(ValueError, match="freq_mhz"):
            model.evaluate(compute_census, 0.0)

    def test_overlap_p_below_one_rejected(self):
        with pytest.raises(ValueError, match="overlap_p"):
            TimingModel(GA100, overlap_p=0.5)

    def test_pcie_overlap_bounds(self):
        with pytest.raises(ValueError, match="pcie_overlap"):
            TimingModel(GA100, pcie_overlap=1.5)

    def test_sweep_matches_pointwise(self, model, compute_census):
        freqs = np.array([600.0, 900.0, 1200.0])
        sweep = model.sweep(compute_census, freqs)
        for f, bd in zip(freqs, sweep):
            assert bd.t_total == pytest.approx(model.execution_time(compute_census, float(f)))

    def test_overlap_is_between_sum_and_max(self, model):
        census = KernelCensus(flops_fp64=5e11, dram_bytes=3e11)
        bd = model.evaluate(census, 1410.0)
        assert max(bd.t_compute, bd.t_memory) <= bd.t_gpu <= bd.t_compute + bd.t_memory

    def test_breakdown_components_sum(self, model, compute_census):
        bd = model.evaluate(compute_census, 1000.0)
        assert bd.t_total == pytest.approx(
            max(bd.t_gpu, bd.t_host_overlap) + bd.t_pcie_exposed + bd.t_serial
        )
