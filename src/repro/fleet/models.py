"""Per-architecture model training for fleet campaigns.

The fleet trains one tiny (power, time) model pair per architecture —
fixed seeds, fixed workload order, strided clock grid — and shares the
weights across every node of that architecture (services are read-only
consumers at inference time).  Training happens on a dedicated device
whose RNG stream is outside the campaign's seed lineage, so the weights
are a pure function of the constants below and the golden fleet metrics
survive any change to how a campaign spends its own seeds.
"""

from __future__ import annotations

from repro.core.models import PowerModel, TimeModel
from repro.core.pipeline import FrequencySelectionPipeline
from repro.gpusim import GA100, GV100, SimulatedGPU
from repro.gpusim.arch import GPUArchitecture
from repro.workloads import get_workload

__all__ = ["fleet_models", "clear_model_cache", "TRAINING_WORKLOADS"]

TRAINING_WORKLOADS = ("dgemm", "stream", "spmv", "lud")
MODEL_SEED = 0
TRAIN_DEVICE_SEED = 7
MAX_SAMPLES_PER_RUN = 4
POWER_EPOCHS = 12
TIME_EPOCHS = 8
CLOCK_STRIDE = 10

_ARCHS: dict[str, GPUArchitecture] = {"GA100": GA100, "GV100": GV100}
_CACHE: dict[str, tuple[PowerModel, TimeModel]] = {}


def _training_freqs(device: SimulatedGPU) -> tuple[float, ...]:
    """Strided clock grid always including the reference (max) clock."""
    usable = tuple(device.dvfs.usable_mhz)
    freqs = usable[::CLOCK_STRIDE]
    if freqs[-1] < usable[-1]:
        freqs = freqs + (usable[-1],)
    return freqs


def fleet_models(arch_name: str) -> tuple[PowerModel, TimeModel]:
    """The (power, time) model pair for one architecture, cached."""
    if arch_name in _CACHE:
        return _CACHE[arch_name]
    try:
        arch = _ARCHS[arch_name]
    except KeyError:
        raise ValueError(f"unknown arch {arch_name!r}; known: {sorted(_ARCHS)}") from None
    device = SimulatedGPU(arch, seed=TRAIN_DEVICE_SEED, max_samples_per_run=MAX_SAMPLES_PER_RUN)
    pipe = FrequencySelectionPipeline(
        device,
        power_model=PowerModel(reference_power_w=device.arch.tdp_watts, seed=MODEL_SEED),
        time_model=TimeModel(seed=MODEL_SEED),
    )
    pipe.power_model.epochs = POWER_EPOCHS
    pipe.time_model.epochs = TIME_EPOCHS
    pipe.fit_offline(
        [get_workload(name) for name in TRAINING_WORKLOADS],
        runs_per_config=1,
        freqs_mhz=_training_freqs(device),
    )
    _CACHE[arch_name] = (pipe.power_model, pipe.time_model)
    return _CACHE[arch_name]


def clear_model_cache() -> None:
    """Drop cached model pairs (tests exercising retraining)."""
    _CACHE.clear()
