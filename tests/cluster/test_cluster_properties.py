"""Property-based tests for the cluster layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DefaultClockPolicy, FIFOScheduler, GPUNode, Job, StaticClockPolicy, summarize
from repro.cluster.job import JobRecord
from repro.cluster.metrics import power_series
from repro.gpusim import GA100
from repro.workloads import get_workload


@st.composite
def synthetic_records(draw):
    """Random but consistent completed-job records."""
    n = draw(st.integers(1, 20))
    records = []
    for i in range(n):
        arrival = draw(st.floats(0.0, 50.0))
        start = arrival + draw(st.floats(0.0, 20.0))
        duration = draw(st.floats(0.1, 30.0))
        power = draw(st.floats(60.0, 500.0))
        records.append(
            JobRecord(
                job_id=i,
                workload="synthetic",
                node_id=0,
                gpu_index=i % 4,
                clock_mhz=1410.0,
                arrival_s=arrival,
                start_s=start,
                end_s=start + duration,
                energy_j=power * duration,
                mean_power_w=power,
            )
        )
    return records


@given(records=synthetic_records())
@settings(max_examples=40, deadline=None)
def test_power_series_integral_matches_energy(records):
    """The facility meter must integrate to the jobs' total energy."""
    resolution = 0.1
    t, p = power_series(records, resolution_s=resolution)
    integral = float(np.sum(p) * resolution)
    total = sum(r.energy_j for r in records)
    assert integral == pytest.approx(total, rel=0.10, abs=5.0 * resolution * 500.0)


@given(records=synthetic_records())
@settings(max_examples=40, deadline=None)
def test_summary_invariants(records):
    report = summarize("synthetic", records)
    assert report.makespan_s == pytest.approx(max(r.end_s for r in records))
    assert report.total_energy_j == pytest.approx(sum(r.energy_j for r in records))
    assert report.peak_power_w <= sum(r.mean_power_w for r in records) + 1e-9
    assert report.mean_job_wait_s >= 0.0


@given(n_jobs=st.integers(1, 24), gpus=st.integers(1, 4))
@settings(max_examples=10, deadline=None)
def test_scheduler_work_conservation(n_jobs, gpus):
    """Makespan is bounded below by total work / GPU count and above by
    serial execution."""
    node = GPUNode(0, GA100, gpus_per_node=gpus, seed=0)
    stream = get_workload("stream")
    jobs = [Job(i, stream, arrival_s=0.0, size=2**20) for i in range(n_jobs)]
    records = FIFOScheduler([node], DefaultClockPolicy()).run(jobs)
    total_work = sum(r.duration_s for r in records)
    makespan = max(r.end_s for r in records)
    assert makespan >= total_work / gpus - 1e-9
    assert makespan <= total_work + 1e-9


def test_static_cap_never_exceeds_cap_clock():
    node = GPUNode(0, GA100, gpus_per_node=2, seed=0)
    jobs = [Job(i, get_workload("stream"), size=2**20) for i in range(6)]
    records = FIFOScheduler([node], StaticClockPolicy(750.0)).run(jobs)
    assert all(r.clock_mhz == 750.0 for r in records)
