"""Figure 7: predicted vs measured power for the six real applications.

One panel per application: the measured power curve across the 61 GA100
clocks against the curve the GA100-trained power model predicts from
features collected only at the maximum clock.  Expected shape: curves
overlay closely (paper: >96 % accuracy on GA100).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import AppEvaluation, EvaluationSuite
from repro.experiments.report import render_series

__all__ = ["Fig7Result", "run_fig7", "render_fig7"]


@dataclass(frozen=True)
class Fig7Result:
    """Per-application power curves and accuracies."""

    evaluations: list[AppEvaluation]


def run_fig7(ctx: ExperimentContext, *, suite: EvaluationSuite | None = None) -> Fig7Result:
    """Evaluate power prediction for all six apps on GA100."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    return Fig7Result(evaluations=suite.evaluate_all("GA100"))


def render_fig7(result: Fig7Result) -> str:
    """Measured vs predicted power series per app."""
    lines = ["Figure 7 - predicted vs measured power, real applications on GA100"]
    for ev in result.evaluations:
        lines.append(render_series(f"{ev.app} measured [W]", ev.freqs_mhz, ev.power_measured_w))
        lines.append(render_series(f"{ev.app} predicted [W]", ev.freqs_mhz, ev.power_predicted_w))
        lines.append(f"{ev.app}: power accuracy {ev.power_accuracy:.1f}%")
    return "\n".join(lines)
