"""Uncertainty-aware prediction and conservative selection.

Extension beyond the paper: a deep ensemble (k networks differing only
in initialisation/shuffling seed) yields a predictive mean and spread
for both power and time.  The spread feeds a *conservative* variant of
Algorithm 1: instead of trusting the point estimate of performance
degradation, the selection must satisfy the threshold at the upper
confidence bound — "pick a lower clock only when we are confident it is
safe".  This directly addresses the paper's observed failure mode
(P-ED2P choosing clocks whose realised degradation exceeded
expectations for LAMMPS/ResNet50, Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import DVFSDataset, FeatureVector
from repro.core.energy import EDP, ObjectiveFunction, energy_from_power_time
from repro.core.models import PowerModel, TimeModel
from repro.core.selection import SelectionResult, select_optimal_frequency

__all__ = ["EnsemblePrediction", "EnsembleModel", "select_conservative"]


@dataclass(frozen=True)
class EnsemblePrediction:
    """Per-clock predictive mean and standard deviation."""

    freqs_mhz: np.ndarray
    mean: np.ndarray
    std: np.ndarray

    def upper(self, z: float = 1.64) -> np.ndarray:
        """Mean + z sigma (default ~90th percentile under normality)."""
        return self.mean + z * self.std

    def lower(self, z: float = 1.64) -> np.ndarray:
        """Mean - z sigma, floored at zero (physical quantities)."""
        return np.maximum(self.mean - z * self.std, 0.0)

    @property
    def relative_std(self) -> np.ndarray:
        """Coefficient of variation per clock."""
        return self.std / np.maximum(self.mean, 1e-12)


class EnsembleModel:
    """Deep ensemble of the paper's power and time models."""

    def __init__(
        self,
        *,
        n_members: int = 5,
        reference_power_w: float | None = None,
        time_target: str = "relative",
        seed: int = 0,
    ) -> None:
        if n_members < 2:
            raise ValueError("n_members must be >= 2")
        self.n_members = n_members
        self.power_members = [
            PowerModel(reference_power_w=reference_power_w, seed=seed + i) for i in range(n_members)
        ]
        self.time_members = [
            TimeModel(target=time_target, seed=seed + i) for i in range(n_members)
        ]

    def fit(self, dataset: DVFSDataset, *, power_epochs: int | None = None, time_epochs: int | None = None) -> None:
        """Train every member (different init + shuffle seeds)."""
        for m in self.power_members:
            m.fit(dataset, epochs=power_epochs)
        for m in self.time_members:
            m.fit(dataset, epochs=time_epochs)

    @property
    def is_fitted(self) -> bool:
        """Whether all members are trained."""
        return all(m.network is not None for m in [*self.power_members, *self.time_members])

    def predict_power(
        self,
        features: FeatureVector,
        freqs_mhz: np.ndarray,
        *,
        target_power_scale_w: float | None = None,
    ) -> EnsemblePrediction:
        """Ensemble power prediction (watts)."""
        if not self.is_fitted:
            raise RuntimeError("ensemble used before fit()")
        freqs = np.asarray(freqs_mhz, dtype=float)
        curves = np.stack(
            [
                m.predict_power(features, freqs, target_power_scale_w=target_power_scale_w)
                for m in self.power_members
            ]
        )
        return EnsemblePrediction(freqs_mhz=freqs, mean=curves.mean(axis=0), std=curves.std(axis=0))

    def predict_time(
        self,
        features: FeatureVector,
        freqs_mhz: np.ndarray,
        *,
        time_at_max_s: float,
    ) -> EnsemblePrediction:
        """Ensemble time prediction (seconds)."""
        if not self.is_fitted:
            raise RuntimeError("ensemble used before fit()")
        freqs = np.asarray(freqs_mhz, dtype=float)
        curves = np.stack(
            [m.predict_time(features, freqs, time_at_max_s=time_at_max_s) for m in self.time_members]
        )
        return EnsemblePrediction(freqs_mhz=freqs, mean=curves.mean(axis=0), std=curves.std(axis=0))


def select_conservative(
    power: EnsemblePrediction,
    time: EnsemblePrediction,
    *,
    objective: ObjectiveFunction = EDP,
    threshold: float = 0.05,
    z: float = 1.64,
) -> SelectionResult:
    """Algorithm 1 with an uncertainty-padded degradation constraint.

    The objective is scored on the predictive means, but the threshold
    walk uses the *upper confidence bound* of execution time: a clock is
    admissible only if even its pessimistic time stays under the
    degradation budget.  With z = 0 this reduces to the paper's
    thresholded Algorithm 1 on the means.
    """
    if z < 0:
        raise ValueError("z must be non-negative")
    freqs = power.freqs_mhz
    if not np.array_equal(freqs, time.freqs_mhz):
        raise ValueError("power and time grids disagree")

    energy = energy_from_power_time(power.mean, time.mean)
    base = select_optimal_frequency(freqs, energy, time.mean, objective=objective)

    # Pessimistic degradation per clock: slowest plausible time at f
    # versus the *mean* time at f_max (the reference the user observes).
    t_upper = time.upper(z)
    degradation = 1.0 - time.mean[-1] / np.maximum(t_upper, 1e-300)

    index = base.index
    threshold_applied = False
    if degradation[index] >= threshold:
        for i in range(index + 1, freqs.size):
            if degradation[i] < threshold:
                index = i
                threshold_applied = True
                break
        else:
            index = freqs.size - 1
            threshold_applied = True

    return SelectionResult(
        freq_mhz=float(freqs[index]),
        index=index,
        objective_name=f"{objective.name}-conservative",
        scores=base.scores,
        perf_degradation=float(degradation[index]),
        energy_saving=float(1.0 - energy[index] / energy[-1]) if energy[-1] > 0 else 0.0,
        threshold_applied=threshold_applied,
    )
