"""Deterministic price/carbon signals.

A signal maps simulation time to a multiplicative factor on the
facility power cap.  Both built-in shapes are smooth diurnal profiles —
no RNG is involved, so signals never perturb the campaign's seed
lineage:

* ``price``  — a sinusoid peaking mid-period (business-hours pricing),
* ``carbon`` — a cosine dip around mid-period (solar-heavy noon grid →
  *more* headroom at midday, tighter cap overnight),
* ``flat``   — constant 1.0.
"""

from __future__ import annotations

import numpy as np

from repro.fleet.scenario import SignalSpec

__all__ = ["signal_factor"]


def signal_factor(spec: SignalSpec | None, t_s: float) -> float:
    """Cap multiplier at time ``t_s`` (1.0 without a signal)."""
    if spec is None or spec.kind == "flat":
        return 1.0
    x = 2.0 * np.pi * (t_s + spec.phase_s) / spec.period_s
    if spec.kind == "price":
        # Price peaks at quarter-period: cap = 1 - a there, 1 + a at
        # the trough.
        return float(1.0 - spec.amplitude * np.sin(x))
    # carbon: dirtiest overnight (t = 0), cleanest mid-period.
    return float(1.0 - spec.amplitude * np.cos(x))
