"""Cluster-level simulation: from one GPU to the machine room.

The paper's motivation (Section 1) is fleet-scale: future HPC systems
draw >90 % of their compute power from GPUs, so per-GPU DVFS policies
compound into megawatts.  This package closes that loop:

* :mod:`~repro.cluster.job` — jobs (workload + size + arrival time),
* :mod:`~repro.cluster.node` — multi-GPU nodes built from
  :class:`~repro.gpusim.device.SimulatedGPU`,
* :mod:`~repro.cluster.policy` — per-job clock policies: the default
  boost clock, a static cap, and the paper's model-driven ED2P policy,
* :mod:`~repro.cluster.engine` — the discrete-event engine: event
  queue + tick loop, admission control, node-outage injection,
* :mod:`~repro.cluster.scheduler` — an event-driven FIFO scheduler that
  places jobs on free GPUs under the chosen policy,
* :mod:`~repro.cluster.metrics` — makespan, energy, and power-series
  accounting for a completed schedule.
"""

from repro.cluster.engine import (
    AdmissionControl,
    ClusterEngine,
    EngineResult,
    EngineStats,
    NodeOutage,
    TickView,
)
from repro.cluster.job import Job, JobRecord
from repro.cluster.metrics import ClusterReport, power_series, summarize
from repro.cluster.node import GPUNode
from repro.cluster.policy import (
    ClockDecision,
    ClockPolicy,
    DefaultClockPolicy,
    ModelDrivenPolicy,
    ServiceDrivenPolicy,
    StaticClockPolicy,
)
from repro.cluster.scheduler import FIFOScheduler

__all__ = [
    "Job",
    "JobRecord",
    "GPUNode",
    "AdmissionControl",
    "ClusterEngine",
    "EngineResult",
    "EngineStats",
    "NodeOutage",
    "TickView",
    "ClockDecision",
    "ClockPolicy",
    "DefaultClockPolicy",
    "StaticClockPolicy",
    "ModelDrivenPolicy",
    "ServiceDrivenPolicy",
    "FIFOScheduler",
    "ClusterReport",
    "power_series",
    "summarize",
]
