"""Power-cap study: driving site power caps from predicted curves.

Operational extension of the paper's method: instead of (or alongside)
energy objectives, a site imposes instantaneous power caps.  The study
uses the *predicted* power curve of each application to pick the fastest
under-cap clock, then validates the pick against the measured curve —
the same predict-then-verify structure as Figures 7-10.

The cap is derated by a guard band before consulting the predictions,
as any production cap controller derates for model error.

Expected shapes: guard-banded predicted picks respect the raw cap on
measured power; tighter caps mean lower clocks and larger slowdowns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.capping import clock_for_power_cap
from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import EvaluationSuite
from repro.experiments.report import render_table

__all__ = ["CapStudyRow", "CapStudyResult", "run_capping_study", "render_capping_study"]

#: Site-level caps studied, as fractions of GA100 TDP.
CAP_FRACTIONS: tuple[float, ...] = (0.8, 0.6, 0.4)
#: Guard band applied to the cap before consulting the predicted curve.
#: Sites always derate model-driven caps: the band absorbs the power
#: model's single-digit-percent prediction error so the *measured* draw
#: stays under the facility limit.
GUARD_BAND: float = 0.10


@dataclass(frozen=True)
class CapStudyRow:
    """One (application, cap) decision with measured validation."""

    app: str
    cap_w: float
    freq_mhz: float
    predicted_power_w: float
    measured_power_w: float
    measured_slowdown: float

    @property
    def cap_violation_w(self) -> float:
        """How far measured power exceeds the cap (<= 0 when honoured)."""
        return self.measured_power_w - self.cap_w


@dataclass(frozen=True)
class CapStudyResult:
    """All rows, apps x caps."""

    rows: list[CapStudyRow]

    def worst_violation_w(self) -> float:
        """Largest measured cap violation across all decisions."""
        return max(r.cap_violation_w for r in self.rows)


def run_capping_study(ctx: ExperimentContext, *, suite: EvaluationSuite | None = None) -> CapStudyResult:
    """Pick under-cap clocks from predictions; validate on measurements."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    tdp = ctx.device("GA100").arch.tdp_watts
    rows: list[CapStudyRow] = []
    for ev in suite.evaluate_all("GA100"):
        for fraction in CAP_FRACTIONS:
            cap = fraction * tdp
            idx = clock_for_power_cap(ev.freqs_mhz, ev.power_predicted_w, (1.0 - GUARD_BAND) * cap)
            rows.append(
                CapStudyRow(
                    app=ev.app,
                    cap_w=cap,
                    freq_mhz=float(ev.freqs_mhz[idx]),
                    predicted_power_w=float(ev.power_predicted_w[idx]),
                    measured_power_w=float(ev.power_measured_w[idx]),
                    measured_slowdown=float(ev.time_measured_s[idx] / ev.time_measured_s[-1]),
                )
            )
    return CapStudyResult(rows=rows)


def render_capping_study(result: CapStudyResult) -> str:
    """Cap-policy table with measured validation columns."""
    table = render_table(
        ["app", "cap (W)", "clock (MHz)", "pred P (W)", "meas P (W)", "slowdown"],
        [
            [r.app, r.cap_w, r.freq_mhz, r.predicted_power_w, r.measured_power_w, r.measured_slowdown]
            for r in result.rows
        ],
        title="Power-cap study - predicted clock picks validated on measured curves, GA100",
    )
    return f"{table}\nworst measured cap violation: {result.worst_violation_w():+.1f} W"
