"""Benchmark harness fixtures.

One paper-faithful experiment context is shared across every bench
(training the DNNs and measuring ground-truth sweeps once).  Every bench
registers its rendered figure/table through the ``report`` fixture; the
terminal-summary hook prints them all after the pytest-benchmark timing
tables, so ``pytest benchmarks/ --benchmark-only`` reproduces the paper's
rows/series verbatim in the captured output.  Rendered text is also
written to ``benchmarks/results/`` for later inspection.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import EvaluationSuite, ExperimentContext, ExperimentSettings

_RESULTS_DIR = Path(__file__).parent / "results"
_RENDERED: list[tuple[str, str]] = []


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """Shared bench-profile context.

    Paper protocol (3 runs per config) with a bounded per-run sample
    count so the full campaign stays in benchmark-friendly time.
    """
    return ExperimentContext(
        ExperimentSettings(seed=0, runs_per_config=2, max_samples_per_run=16, truth_runs_per_config=2)
    )


@pytest.fixture(scope="session")
def suite(ctx: ExperimentContext) -> EvaluationSuite:
    """Shared evaluation suite (Figures 7-10, Tables 3-6)."""
    return EvaluationSuite(ctx)


@pytest.fixture()
def report():
    """Register a rendered table/series block for end-of-run printing."""

    def _record(title: str, text: str) -> None:
        _RENDERED.append((title, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        slug = title.lower().replace(" ", "_").replace("/", "-")
        (_RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")

    return _record


#: Bench modules cheap enough to run on every invocation (no shared
#: paper-profile context; at most seconds of tiny-model training) —
#: everything else is ``slow``.
_FAST_BENCH_MODULES = {"test_perf_collection.py", "test_perf_serving.py", "test_perf_obs.py"}


def pytest_collection_modifyitems(config, items):
    """Mark the full-sweep paper benches ``slow``.

    They train the DNNs and measure brute-force ground-truth sweeps, so
    tier-1 and quick perf checks can deselect them with ``-m 'not slow'``.
    """
    for item in items:
        if item.path.name not in _FAST_BENCH_MODULES:
            item.add_marker(pytest.mark.slow)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every registered figure/table after the timing results."""
    if not _RENDERED:
        return
    terminalreporter.write_sep("=", "reproduced paper figures and tables")
    for title, text in _RENDERED:
        terminalreporter.write_sep("-", title)
        terminalreporter.write_line(text)
