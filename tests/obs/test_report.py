"""`repro report` gate + rendering.

The acceptance contract (ISSUE 8): the gate must reproduce the historic
``scripts/bench_gate.py`` verdict on the *checked-in* BENCH files, and
must catch an injected >10 % synthetic regression.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.report import (
    BENCH_FILES,
    collect_rows,
    default_root,
    evaluate_gate,
    load_bench_payloads,
    record_rows,
    render_report,
)
from repro.obs.store import RunStore, TrackedMetric

REPO_ROOT = Path(__file__).resolve().parents[2]


def _row(current, best, *, higher=True, bench="b", metric="m"):
    return TrackedMetric(
        bench=bench, metric=metric, current=current, best=best, higher_is_better=higher
    )


class TestEvaluateGate:
    def test_within_tolerance_passes(self):
        assert evaluate_gate([_row(91.0, 100.0)]) == []

    def test_higher_is_better_regression_fails(self):
        (failure,) = evaluate_gate([_row(85.0, 100.0)])
        assert failure.regression == pytest.approx(0.15)
        assert "below the best record" in failure.message

    def test_lower_is_better_regression_fails(self):
        (failure,) = evaluate_gate([_row(1.3, 1.0, higher=False)])
        assert failure.regression == pytest.approx(0.3)
        assert "above the best record" in failure.message

    def test_lower_is_better_improvement_passes(self):
        assert evaluate_gate([_row(0.5, 1.0, higher=False)]) == []

    def test_store_history_tightens_the_bar(self, tmp_path):
        store = RunStore(tmp_path / "h.jsonl")
        from tests.obs.test_store import _record

        store.append(_record(bench="b", m=200.0))
        # Fine vs the committed best (100), regressed vs history (200).
        assert evaluate_gate([_row(95.0, 100.0)]) == []
        (failure,) = evaluate_gate([_row(95.0, 100.0)], store=store)
        assert failure.row.best == 200.0

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            evaluate_gate([], tolerance=1.5)


class TestCheckedInTrajectories:
    """The gate on the real committed files reproduces the old verdict."""

    def test_all_bench_files_load(self):
        payloads = load_bench_payloads(REPO_ROOT)
        assert set(payloads) == set(BENCH_FILES)

    def test_gate_passes_on_checked_in_files(self):
        rows = collect_rows(load_bench_payloads(REPO_ROOT))
        assert len(rows) >= 10  # 7 serving scenarios + 2 collection + 1 obs
        assert evaluate_gate(rows, tolerance=0.10) == []

    def test_default_root_finds_the_checkout(self):
        assert (default_root() / "BENCH_serving.json").exists()

    def test_matches_legacy_serving_verdict(self):
        """Row-for-row parity with the old scripts/bench_gate.py check."""
        payload = json.loads((REPO_ROOT / "BENCH_serving.json").read_text())
        rows = [r for r in collect_rows({"BENCH_serving.json": payload}) if r.higher_is_better]
        for tolerance in (0.0, 0.10, 0.5):
            ours = {f.row.metric.split(".")[0] for f in evaluate_gate(rows, tolerance=tolerance)}
            legacy = set()
            for name, record in payload["scenarios"].items():
                current = float(record["selections_per_s"])
                best = float(record["best"]["selections_per_s"])
                if current < (1.0 - tolerance) * best:
                    legacy.add(name)
            assert ours == legacy


def _inject_regression(tmp_path, *, factor=0.8):
    """Copy the bench files, scaling one serving current to 80% of best."""
    for name in BENCH_FILES:
        shutil.copy(REPO_ROOT / name, tmp_path / name)
    path = tmp_path / "BENCH_serving.json"
    payload = json.loads(path.read_text())
    record = payload["scenarios"]["hot"]
    record["selections_per_s"] = factor * float(record["best"]["selections_per_s"])
    path.write_text(json.dumps(payload, indent=2))
    return tmp_path


class TestInjectedRegression:
    def test_synthetic_20pct_drop_detected(self, tmp_path):
        root = _inject_regression(tmp_path)
        rows = collect_rows(load_bench_payloads(root))
        failures = evaluate_gate(rows, tolerance=0.10)
        assert [f.row.metric for f in failures] == ["hot.selections_per_s"]
        assert failures[0].regression == pytest.approx(0.2)

    def test_drop_inside_tolerance_passes(self, tmp_path):
        root = _inject_regression(tmp_path, factor=0.95)
        rows = collect_rows(load_bench_payloads(root))
        assert evaluate_gate(rows, tolerance=0.10) == []


class TestRendering:
    def test_markdown_report_has_table_and_summary(self):
        rows = [_row(95.0, 100.0), _row(50.0, 100.0, metric="bad")]
        failures = evaluate_gate(rows)
        text = render_report(rows, failures, fmt="markdown")
        assert "| bench | metric | current | best | status |" in text
        assert "**1 regression(s)**" in text
        assert "REGRESSED 50.0%" in text

    def test_github_format_emits_error_annotations(self):
        rows = [_row(50.0, 100.0)]
        text = render_report(rows, evaluate_gate(rows), fmt="github")
        assert text.splitlines()[0].startswith("::error ::bench gate:")

    def test_text_format_lists_failures(self):
        rows = [_row(50.0, 100.0)]
        text = render_report(rows, evaluate_gate(rows), fmt="text")
        assert "bench gate:" in text

    def test_clean_report_mentions_tolerance(self):
        text = render_report([_row(100.0, 100.0)], [], fmt="markdown", tolerance=0.2)
        assert "20%" in text
        assert "all within tolerance" in text


class TestReportCli:
    def test_report_on_checkout_exits_zero(self, capsys):
        assert main(["report", "--root", str(REPO_ROOT), "--gate"]) == 0
        out = capsys.readouterr().out
        assert "Performance trajectory report" in out

    def test_gate_exit_2_on_injected_regression(self, tmp_path, capsys):
        root = _inject_regression(tmp_path)
        assert main(["report", "--root", str(root), "--gate"]) == 2
        captured = capsys.readouterr()
        assert "bench gate:" in captured.err
        assert "REGRESSED" in captured.out

    def test_regression_without_gate_reports_but_exits_zero(self, tmp_path, capsys):
        root = _inject_regression(tmp_path)
        assert main(["report", "--root", str(root)]) == 0
        assert "REGRESSED" in capsys.readouterr().out

    def test_record_appends_to_store(self, tmp_path, capsys):
        store_path = tmp_path / "history.jsonl"
        code = main(
            [
                "report",
                "--root",
                str(REPO_ROOT),
                "--store",
                str(store_path),
                "--record",
            ]
        )
        assert code == 0
        store = RunStore(store_path)
        assert len(store) == len(BENCH_FILES)
        assert "run-history store" in capsys.readouterr().out

    def test_record_requires_store(self, capsys):
        assert main(["report", "--root", str(REPO_ROOT), "--record"]) == 2
        assert "--record needs --store" in capsys.readouterr().err

    def test_empty_root_exits_2(self, tmp_path, capsys):
        assert main(["report", "--root", str(tmp_path)]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_unusable_file_exits_2(self, tmp_path, capsys):
        (tmp_path / "BENCH_serving.json").write_text("{not json")
        assert main(["report", "--root", str(tmp_path)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_bad_tolerance_exits_2(self, capsys):
        assert main(["report", "--tolerance", "2.0"]) == 2

    def test_github_format_cli(self, tmp_path, capsys):
        root = _inject_regression(tmp_path)
        assert main(["report", "--root", str(root), "--format", "github"]) == 0
        assert "::error ::" in capsys.readouterr().out


class TestLegacyShim:
    """scripts/bench_gate.py still honours its old exit-code contract."""

    @pytest.fixture()
    def shim(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "bench_gate_shim", REPO_ROOT / "scripts" / "bench_gate.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_passes_on_checked_in_file(self, shim, capsys):
        assert shim.main([]) == 0
        assert "bench gate:" in capsys.readouterr().out

    def test_exit_1_on_regression(self, shim, tmp_path, capsys):
        root = _inject_regression(tmp_path)
        assert shim.main([str(root / "BENCH_serving.json")]) == 1
        assert "below the best record" in capsys.readouterr().err

    def test_exit_2_on_missing_file(self, shim, tmp_path):
        assert shim.main([str(tmp_path / "nope.json")]) == 2
