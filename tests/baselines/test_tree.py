"""CART regression tree tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DecisionTreeRegressor


class TestFitting:
    def test_perfect_fit_unbounded_depth(self, rng):
        x = np.arange(32.0)[:, None]
        y = rng.standard_normal(32)
        tree = DecisionTreeRegressor().fit(x, y)
        assert np.allclose(tree.predict(x), y)

    def test_single_sample(self):
        tree = DecisionTreeRegressor().fit(np.array([[1.0]]), np.array([5.0]))
        assert tree.predict(np.array([[99.0]]))[0] == 5.0

    def test_constant_target_is_single_leaf(self):
        x = np.arange(20.0)[:, None]
        tree = DecisionTreeRegressor().fit(x, np.full(20, 3.0))
        assert tree.node_count == 1
        assert tree.depth == 0

    def test_max_depth_respected(self, rng):
        x = rng.standard_normal((200, 3))
        y = rng.standard_normal(200)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth <= 3

    def test_min_samples_leaf_respected(self, rng):
        x = rng.standard_normal((100, 2))
        y = rng.standard_normal(100)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(x, y)

        # Count samples landing in each leaf.
        feature = np.asarray(tree._feature)
        nodes = np.zeros(100, dtype=int)
        active = feature[nodes] != -1
        while np.any(active):
            cur = nodes[active]
            go_left = x[active, np.asarray(tree._feature)[cur]] <= np.asarray(tree._threshold)[cur]
            nodes[active] = np.where(go_left, np.asarray(tree._left)[cur], np.asarray(tree._right)[cur])
            active = feature[nodes] != -1
        _, counts = np.unique(nodes, return_counts=True)
        assert counts.min() >= 10

    def test_step_function_learned_exactly(self):
        x = np.linspace(0, 1, 100)[:, None]
        y = (x[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=1).fit(x, y)
        assert np.allclose(tree.predict(x), y)

    def test_axis_aligned_interaction(self, rng):
        x = rng.uniform(-1, 1, size=(400, 2))
        y = np.where((x[:, 0] > 0) & (x[:, 1] > 0), 1.0, 0.0)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert np.mean((tree.predict(x) - y) ** 2) < 0.02


class TestPrediction:
    def test_predictions_within_target_range(self, rng):
        x = rng.standard_normal((150, 3))
        y = rng.uniform(5.0, 9.0, size=150)
        tree = DecisionTreeRegressor(max_depth=6).fit(x, y)
        pred = tree.predict(rng.standard_normal((50, 3)))
        assert pred.min() >= 5.0 - 1e-12
        assert pred.max() <= 9.0 + 1e-12

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))

    def test_depth_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            DecisionTreeRegressor().depth


class TestValidation:
    def test_invalid_max_depth(self):
        with pytest.raises(ValueError, match="max_depth"):
            DecisionTreeRegressor(max_depth=0)

    def test_invalid_min_samples_split(self):
        with pytest.raises(ValueError, match="min_samples_split"):
            DecisionTreeRegressor(min_samples_split=1)

    def test_invalid_min_samples_leaf(self):
        with pytest.raises(ValueError, match="min_samples_leaf"):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            DecisionTreeRegressor().fit(np.zeros((3, 1)), np.zeros(4))


@given(seed=st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_deeper_trees_fit_no_worse(seed):
    """Training error is monotone nonincreasing in depth."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((80, 2))
    y = rng.standard_normal(80)
    errors = []
    for depth in (1, 3, 6):
        tree = DecisionTreeRegressor(max_depth=depth, rng=np.random.default_rng(0)).fit(x, y)
        errors.append(float(np.mean((tree.predict(x) - y) ** 2)))
    assert errors[0] >= errors[1] - 1e-12 >= errors[2] - 2e-12
