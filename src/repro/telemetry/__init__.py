"""Transparent GPU data-acquisition framework (paper Section 4.1).

The paper built a three-module framework on top of NVIDIA DCGM; this
package mirrors it against the simulated device:

* :mod:`~repro.telemetry.fields` — DCGM-style field-id registry for the 12
  collected metrics,
* :mod:`~repro.telemetry.control` — applies the desired SM clocks
  ("control module"),
* :mod:`~repro.telemetry.profile` — runs an application and samples
  metrics on a fixed interval throughout execution ("profile module"),
* :mod:`~repro.telemetry.launch` — orchestrates DVFS sweeps x workloads x
  repeats and persists one CSV per run ("launch module"),
* :mod:`~repro.telemetry.parallel` — deterministic parallel campaign
  execution (independent per-cell RNG streams, any worker count),
* :mod:`~repro.telemetry.csvio` — the CSV persistence format.

No compiling or linking is needed to profile a new workload — exactly the
transparency property the paper claims — because workloads are plain
Python objects implementing :class:`repro.workloads.Workload`.
"""

from repro.telemetry.control import ClockController
from repro.telemetry.csvio import (
    read_columns_csv,
    read_samples_csv,
    write_columns_csv,
    write_samples_csv,
)
from repro.telemetry.fields import FIELDS, FieldDef, field_by_id, field_by_name
from repro.telemetry.launch import LaunchConfig, Launcher, RunArtifact
from repro.telemetry.parallel import CampaignCell, plan_cells, run_campaign
from repro.telemetry.profile import Profiler, record_as_rows, record_columns

__all__ = [
    "ClockController",
    "read_columns_csv",
    "read_samples_csv",
    "write_columns_csv",
    "write_samples_csv",
    "FIELDS",
    "FieldDef",
    "field_by_id",
    "field_by_name",
    "LaunchConfig",
    "Launcher",
    "RunArtifact",
    "CampaignCell",
    "plan_cells",
    "run_campaign",
    "Profiler",
    "record_as_rows",
    "record_columns",
]
