"""Process-local metrics registry: typed Counter / Gauge / Histogram.

The serving, telemetry, and cluster layers each used to keep private
float accumulators (``ServiceStats`` stage sums, ad-hoc per-campaign
counts).  This module centralises them behind three lock-protected
primitives registered by name in a :class:`MetricsRegistry`:

* :class:`Counter` — monotonically increasing float (requests served,
  cells collected).
* :class:`Gauge` — settable value with ``set_max`` for high-water marks
  (largest batch seen).
* :class:`Histogram` — fixed upper-bound buckets (Prometheus-style
  cumulative export) plus exact sum/count/min/max, with linear
  within-bucket :meth:`~Histogram.percentile` interpolation.
  ``observe_many`` takes a numpy array and bins it in one
  ``searchsorted`` pass.

Registries are cheap, process-local objects: the module-level default
(:func:`get_registry`) is what CLI commands and campaign instrumentation
share; a :class:`~repro.serving.service.SelectionService` defaults to a
private registry so two services never mix their stage histograms.

Exporters: :meth:`MetricsRegistry.to_prometheus_text` (text exposition
format) and :meth:`MetricsRegistry.to_json` /
:func:`registry_from_json`, which round-trip exactly (asserted by the
``repro obs export`` smoke test).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "get_registry",
    "registry_from_json",
]

#: Geometric 1-2.5-5 ladder from 1 µs to 10 s — wide enough for a no-op
#: span (~100 ns rounds into the first bucket) and a full campaign cell.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-6, 1) for m in (1.0, 2.5, 5.0)
) + (10.0,)


class Counter:
    """Monotonically increasing value (floats allowed, decrements not)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for signed values")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {"kind": self.kind, "help": self.help, "value": self._value}

    def _restore(self, state: dict) -> None:
        with self._lock:
            self._value = float(state["value"])


class Gauge:
    """Last-set value, with helpers for deltas and high-water marks."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_max(self, value: float) -> None:
        """Keep the larger of the current value and ``value``."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {"kind": self.kind, "help": self.help, "value": self._value}

    def _restore(self, state: dict) -> None:
        with self._lock:
            self._value = float(state["value"])


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable histogram state with percentile/mean accessors.

    ``bounds`` are the finite upper bucket edges; ``counts`` has one
    extra trailing entry for the overflow (+inf) bucket.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    sum: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (p in [0, 100]).

        Linear interpolation inside the bucket that crosses the target
        rank, clamped to the exact observed min/max so single-value
        histograms report that value, not a bucket edge.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("p must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = (p / 100.0) * self.count
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            lo = self.bounds[i - 1] if i > 0 else self.min
            hi = self.bounds[i] if i < len(self.bounds) else self.max
            if cum + n >= target:
                frac = (target - cum) / n
                value = lo + frac * (hi - lo) if hi > lo else hi
                return float(min(max(value, self.min), self.max))
            cum += n
        return float(self.max)


class Histogram:
    """Fixed-bucket distribution tracker.

    Buckets are cumulative-exported (Prometheus ``le`` semantics) but
    stored as per-bucket counts; the trailing implicit bucket catches
    everything above the last finite bound.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> None:
        if not buckets:
            raise ValueError("need at least one bucket bound")
        bounds = tuple(float(b) for b in buckets)
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._bounds = np.asarray(bounds)
        self._counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    @property
    def bounds(self) -> tuple[float, ...]:
        return tuple(self._bounds.tolist())

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        idx = int(np.searchsorted(self._bounds, value, side="left"))
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values: np.ndarray) -> None:
        """Record a whole array in one binning pass."""
        arr = np.asarray(values, dtype=float).reshape(-1)
        if arr.size == 0:
            return
        idx = np.searchsorted(self._bounds, arr, side="left")
        binned = np.bincount(idx, minlength=self._counts.size)
        with self._lock:
            self._counts += binned
            self._sum += float(arr.sum())
            self._count += arr.size
            self._min = min(self._min, float(arr.min()))
            self._max = max(self._max, float(arr.max()))

    def percentile(self, p: float) -> float:
        """Estimated percentile over everything observed so far."""
        return self.snapshot().percentile(p)

    def snapshot(self) -> HistogramSnapshot:
        """Consistent immutable copy of the current state."""
        with self._lock:
            return HistogramSnapshot(
                bounds=self.bounds,
                counts=tuple(int(c) for c in self._counts),
                count=self._count,
                sum=self._sum,
                min=self._min if self._count else 0.0,
                max=self._max if self._count else 0.0,
            )

    def _restore(self, state: dict) -> None:
        with self._lock:
            self._counts = np.asarray(state["counts"], dtype=np.int64)
            self._sum = float(state["sum"])
            self._count = int(state["count"])
            self._min = float(state["min"]) if self._count else float("inf")
            self._max = float(state["max"]) if self._count else float("-inf")


class MetricsRegistry:
    """Named get-or-create store of metric instruments.

    Asking twice for the same name returns the same instrument (so
    modules can look instruments up where they use them, without a
    central wiring point); asking for the same name with a different
    kind is a bug and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"requested {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """Instrument by name, or None."""
        return self._metrics.get(name)

    def clear(self) -> None:
        """Drop every instrument (tests and long-lived processes)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """JSON-ready state of every instrument, keyed by name."""
        out: dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                snap = metric.snapshot()
                out[name] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "bounds": list(snap.bounds),
                    "counts": list(snap.counts),
                    "count": snap.count,
                    "sum": snap.sum,
                    "min": snap.min,
                    "max": snap.max,
                }
            else:
                out[name] = metric.snapshot()
        return out

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize the registry (schema-versioned, round-trippable)."""
        return json.dumps({"schema": 1, "metrics": self.snapshot()}, indent=indent)

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (cumulative ``le`` buckets)."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                snap = metric.snapshot()
                cum = 0
                for bound, count in zip(snap.bounds, snap.counts):
                    cum += count
                    lines.append(f'{name}_bucket{{le="{bound:g}"}} {cum}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {snap.count}')
                lines.append(f"{name}_sum {snap.sum:.9g}")
                lines.append(f"{name}_count {snap.count}")
            else:
                lines.append(f"{name} {metric.value:.9g}")
        return "\n".join(lines) + "\n"


def registry_from_json(text: str) -> MetricsRegistry:
    """Rebuild a registry from :meth:`MetricsRegistry.to_json` output.

    The reconstruction is exact: ``registry_from_json(r.to_json()).to_json()
    == r.to_json()``.
    """
    payload = json.loads(text)
    if payload.get("schema") != 1:
        raise ValueError(f"unsupported metrics schema: {payload.get('schema')!r}")
    registry = MetricsRegistry()
    for name, state in payload["metrics"].items():
        kind = state.get("kind")
        if kind == "counter":
            registry.counter(name, state.get("help", ""))._restore(state)
        elif kind == "gauge":
            registry.gauge(name, state.get("help", ""))._restore(state)
        elif kind == "histogram":
            hist = registry.histogram(
                name, state.get("help", ""), buckets=tuple(state["bounds"])
            )
            hist._restore(state)
        else:
            raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
    return registry


#: Process-wide default registry: what the CLI exports and what campaign
#: instrumentation (telemetry cells, cluster scheduling) publishes to.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
