"""Figure 9 + Table 4: optimal DVFS configurations per selection method.

For every real application on GA100 this reports the power/time curves
annotated with the four selected clocks: EDP and ED2P, each computed on
measured (M-) and predicted (P-) data.  Expected shapes: every selection
sits below the maximum clock for most apps, and ED2P selections sit at
or above the EDP selections (more delay-averse).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import AppEvaluation, EvaluationSuite
from repro.experiments.report import render_table

__all__ = ["Fig9Result", "run_fig9", "render_fig9", "METHODS"]

#: Column order used by the paper's Table 4.
METHODS: tuple[str, ...] = ("M-ED2P", "P-ED2P", "M-EDP", "P-EDP")


@dataclass(frozen=True)
class Fig9Result:
    """Selections for all apps (this is also Table 4's content)."""

    evaluations: list[AppEvaluation]

    def optimal_mhz(self, app: str, method: str) -> float:
        """Selected clock for one app and method."""
        for ev in self.evaluations:
            if ev.app == app.lower():
                return ev.selections[method].freq_mhz
        raise KeyError(f"no evaluation for app {app!r}")


def run_fig9(ctx: ExperimentContext, *, suite: EvaluationSuite | None = None) -> Fig9Result:
    """Compute the four selections for every app on GA100."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    return Fig9Result(evaluations=suite.evaluate_all("GA100"))


def render_fig9(result: Fig9Result) -> str:
    """Table 4-style optimal frequency matrix."""
    rows = [
        [ev.app, *(ev.selections[m].freq_mhz for m in METHODS)]
        for ev in result.evaluations
    ]
    return render_table(
        ["application", *METHODS],
        rows,
        title="Figure 9 / Table 4 - optimal frequencies (MHz) per method, GA100",
    )
