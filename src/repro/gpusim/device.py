"""The simulated GPU device: clock control, kernel execution, sensors.

:class:`SimulatedGPU` is the stand-in for one physical A100/V100 board.
It owns a DVFS config space, a timing model, a power model, and a noise
model, and exposes the two operations the paper's data-collection
framework performs:

* ``set_sm_clock`` — apply an application clock (snapped to a supported
  state, as the real driver does), and
* ``run`` — execute a workload (described by its :class:`KernelCensus`)
  at the current clock, sampling the 12 DCGM metrics of paper Section 4.1
  on a fixed interval for the duration of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.dvfs import DVFSConfigSpace
from repro.gpusim.kernel import KernelCensus
from repro.gpusim.noise import NoiseModel
from repro.gpusim.power import PowerModel
from repro.gpusim.thermal import ThermalModel
from repro.gpusim.timing import TimingModel
from repro.gpusim.voltage import VoltageCurve
from repro.units import Joules, MHz, Seconds, Watts

__all__ = ["SampleRecord", "RunRecord", "SimulatedGPU"]

#: The 12 utilization metrics collected in paper Section 4.1, in the
#: order the paper lists them.
METRIC_NAMES: tuple[str, ...] = (
    "fp64_active",
    "fp32_active",
    "sm_app_clock",
    "dram_active",
    "gr_engine_active",
    "gpu_utilization",
    "power_usage",
    "sm_active",
    "sm_occupancy",
    "pcie_tx_bytes",
    "pcie_rx_bytes",
    "exec_time",
)

#: Metric name -> column index into :attr:`RunRecord.metrics_block`.
METRIC_INDEX: dict[str, int] = {name: i for i, name in enumerate(METRIC_NAMES)}


@dataclass(frozen=True)
class SampleRecord:
    """One periodic sensor sample (one CSV row of the paper's framework)."""

    timestamp_s: Seconds
    fp64_active: float
    fp32_active: float
    sm_app_clock: float
    dram_active: float
    gr_engine_active: float
    gpu_utilization: float
    power_usage: Watts
    sm_active: float
    sm_occupancy: float
    pcie_tx_bytes: float
    pcie_rx_bytes: float
    exec_time: float

    def as_dict(self) -> dict[str, float]:
        """Metric name -> value, excluding the timestamp."""
        return {name: getattr(self, name) for name in METRIC_NAMES}


@dataclass(frozen=True)
class RunRecord:
    """Aggregate result of one application execution on the device.

    Sample storage is column-oriented: ``metrics_block`` is the
    ``(n_samples, 12)`` matrix of per-sample metric values in
    :data:`METRIC_NAMES` column order, with ``timestamps_s`` alongside.
    :attr:`samples` materializes the legacy row view (a tuple of
    :class:`SampleRecord`) lazily, so row-at-a-time consumers keep working
    while vectorized consumers read the columns directly.
    """

    workload: str
    arch: str
    freq_mhz: MHz
    exec_time_s: Seconds
    mean_power_w: Watts
    timestamps_s: np.ndarray = field(repr=False)
    #: (n_samples, 12) per-sample metric values, METRIC_NAMES column order.
    metrics_block: np.ndarray = field(repr=False)
    #: Whether hardware thermal throttling engaged during the run.
    throttled: bool = False
    #: Junction temperature at the end of the run (None without a
    #: thermal model).
    final_temperature_c: float | None = None

    @property
    def n_samples(self) -> int:
        """Number of periodic sensor samples taken during the run."""
        return int(self.metrics_block.shape[0])

    @property
    def samples(self) -> tuple[SampleRecord, ...]:
        """Row view of the sample block (built lazily, cached)."""
        cached = self.__dict__.get("_samples_cache")
        if cached is None:
            cached = tuple(
                SampleRecord(t, *row)
                for t, row in zip(self.timestamps_s.tolist(), self.metrics_block.tolist())
            )
            object.__setattr__(self, "_samples_cache", cached)
        return cached

    @property
    def energy_j(self) -> Joules:
        """Measured energy = mean power x wall time."""
        return self.mean_power_w * self.exec_time_s

    def metric_column(self, name: str) -> np.ndarray:
        """(n_samples,) per-sample values of one metric by name."""
        return self.metrics_block[:, METRIC_INDEX[name]]

    def metrics(self) -> dict[str, float]:
        """Run-level means of the 12 collected metrics.

        ``pcie_*_bytes`` are summed (they are traffic totals), everything
        else is averaged; ``exec_time`` is the wall time of the run.
        Computed once and cached — dataset assembly reads it repeatedly
        per artifact.
        """
        cached = self.__dict__.get("_metrics_cache")
        if cached is None:
            cached = {}
            for j, name in enumerate(METRIC_NAMES):
                column = self.metrics_block[:, j]
                if name.startswith("pcie_"):
                    cached[name] = float(column.sum())
                elif name == "exec_time":
                    cached[name] = self.exec_time_s
                elif name == "power_usage":
                    cached[name] = self.mean_power_w
                else:
                    cached[name] = float(column.mean())
            object.__setattr__(self, "_metrics_cache", cached)
        return dict(cached)


class SimulatedGPU:
    """One simulated GPU board with controllable application clocks."""

    def __init__(
        self,
        arch: GPUArchitecture,
        *,
        seed: int | np.random.SeedSequence = 0,
        noise: NoiseModel | None = None,
        timing: TimingModel | None = None,
        power: PowerModel | None = None,
        voltage: VoltageCurve | None = None,
        thermal: ThermalModel | None = None,
        sampling_interval_s: float = 0.020,
        max_samples_per_run: int = 512,
    ) -> None:
        if sampling_interval_s <= 0:
            raise ValueError("sampling_interval_s must be positive")
        if max_samples_per_run < 1:
            raise ValueError("max_samples_per_run must be >= 1")
        self.arch = arch
        self.dvfs = DVFSConfigSpace.for_architecture(arch)
        self.noise = noise if noise is not None else NoiseModel()
        self.voltage = voltage if voltage is not None else VoltageCurve(arch)
        self.timing = timing if timing is not None else TimingModel(arch)
        self.power = power if power is not None else PowerModel(arch, self.voltage)
        self.thermal = thermal
        self._temperature_c = thermal.ambient_c if thermal is not None else None
        self.sampling_interval_s = float(sampling_interval_s)
        self.max_samples_per_run = int(max_samples_per_run)
        self.seed = seed
        # The root SeedSequence feeds both the device's own stream (used by
        # sequential runs, exactly as default_rng(seed) would) and, via
        # spawn(), the independent per-cell child streams that make
        # parallel collection campaigns order- and worker-count-invariant.
        # A SeedSequence seed plugs the board into a caller-managed lineage
        # (the fleet simulator spawns one child per node, per board).
        self._seed_seq = (
            seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        )
        self._rng = np.random.default_rng(self._seed_seq)
        self._sm_clock = arch.default_core_freq_mhz
        self._mem_clock = arch.memory_freq_mhz

    # ------------------------------------------------------------------
    # Clock control (the paper's "control module" talks to this)
    # ------------------------------------------------------------------
    @property
    def current_sm_clock(self) -> MHz:
        """The applied SM application clock, MHz."""
        return self._sm_clock

    @property
    def current_mem_clock(self) -> MHz:
        """The applied memory clock, MHz."""
        return self._mem_clock

    @property
    def mem_ratio(self) -> float:
        """Applied memory clock relative to the default."""
        return self._mem_clock / self.arch.memory_freq_mhz

    def set_sm_clock(self, freq_mhz: MHz) -> MHz:
        """Apply an application clock; returns the snapped actual clock."""
        if freq_mhz <= 0:
            raise ValueError("freq_mhz must be positive")
        self._sm_clock = self.dvfs.snap(freq_mhz)
        return self._sm_clock

    def set_mem_clock(self, freq_mhz: MHz) -> MHz:
        """Apply a memory clock; snaps to the nearest supported state.

        Datacenter GPUs expose only a handful of memory clocks (the
        performance state plus idle states), so requests snap to
        ``arch.memory_clocks`` exactly as SM requests snap to their grid.
        """
        if freq_mhz <= 0:
            raise ValueError("freq_mhz must be positive")
        clocks = np.asarray(self.arch.memory_clocks)
        self._mem_clock = float(clocks[np.argmin(np.abs(clocks - freq_mhz))])
        return self._mem_clock

    def reset_clocks(self) -> MHz:
        """Restore default core and memory clocks (``nvidia-smi -rac``)."""
        self._sm_clock = self.arch.default_core_freq_mhz
        self._mem_clock = self.arch.memory_freq_mhz
        return self._sm_clock

    # ------------------------------------------------------------------
    # Execution + sensors (the paper's "profile module" talks to this)
    # ------------------------------------------------------------------
    def run(self, census: KernelCensus, *, workload_name: str = "anonymous") -> RunRecord:
        """Execute one workload at the current clock and sample sensors.

        The run's true time/power come from the analytical models; the
        returned record carries noisy periodic samples plus noisy run-level
        aggregates, mimicking what DCGM hands back on real hardware.
        Noise is drawn from the device's own stream, so consecutive runs
        differ (like the paper's three repeats do).
        """
        return self._execute(
            census, self._sm_clock, self._rng, workload_name, apply_thermal=True
        )

    def run_cell(
        self,
        census: KernelCensus,
        freq_mhz: MHz,
        rng: np.random.Generator,
        *,
        workload_name: str = "anonymous",
    ) -> RunRecord:
        """Stateless run of one campaign cell at an explicit clock.

        Unlike :meth:`run`, this neither reads nor mutates the device's
        applied clock or its shared RNG: the clock is snapped from
        ``freq_mhz`` and all noise comes from the caller-provided ``rng``
        (one independent child per cell, see :meth:`spawn_cell_rngs`).
        That makes cells safe to execute concurrently and their results
        independent of execution order.  Thermal state is inherently
        order-dependent, so devices with a thermal model must be swept
        sequentially via :meth:`run`.
        """
        if freq_mhz <= 0:
            raise ValueError("freq_mhz must be positive")
        if self.thermal is not None:
            raise RuntimeError(
                "run_cell cannot model thermal state (it is execution-order "
                "dependent); use run() on a thermally modelled device"
            )
        freq = self.dvfs.snap(freq_mhz)
        return self._execute(census, freq, rng, workload_name, apply_thermal=False)

    def spawn_cell_rngs(self, n: int) -> list[np.random.Generator]:
        """``n`` independent child RNGs from the device's root SeedSequence.

        Children are spawned in canonical cell order, so noise depends only
        on the device seed and the cell's position in the campaign plan —
        never on worker count or completion order.  Successive calls
        advance the spawn counter and yield fresh, non-overlapping streams,
        so repeated campaigns differ exactly like serial reruns do while
        staying reproducible from the seed.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        return [np.random.default_rng(child) for child in self._seed_seq.spawn(n)]

    def _execute(
        self,
        census: KernelCensus,
        freq: float,
        rng: np.random.Generator,
        workload_name: str,
        *,
        apply_thermal: bool,
    ) -> RunRecord:
        """Shared vectorized execution path behind run()/run_cell().

        All per-sample noise is drawn as one batched block (see
        :meth:`NoiseModel.perturb_columns`) and the record is backed by a
        column-oriented ``(n_samples, 12)`` metrics matrix — bitwise
        identical to the historical per-sample scalar loop, ~50x faster.
        """
        mem_ratio = self.mem_ratio
        breakdown = self.timing.evaluate(census, freq, mem_ratio=mem_ratio)
        true_time = breakdown.t_total
        true_power = self.power.power_from_breakdown(breakdown, mem_ratio=mem_ratio)

        throttled = False
        if apply_thermal and self.thermal is not None:
            true_time, true_power, throttled = self._apply_thermal(
                census, freq, mem_ratio, true_time, true_power
            )

        exec_time = self.noise.perturb_time(rng, true_time)
        n_samples = int(np.ceil(exec_time / self.sampling_interval_s))
        n_samples = int(np.clip(n_samples, 1, self.max_samples_per_run))

        # Per-run drift of dram_active across clocks (paper Fig. 4).
        dram_drift = self.noise.dram_dvfs_drift_std

        timestamps = self.sampling_interval_s * (1.0 + np.arange(n_samples))
        pcie_tx_per_sample = census.pcie_tx_bytes / n_samples
        pcie_rx_per_sample = census.pcie_rx_bytes / n_samples

        # One batched draw covering (fp64, fp32, dram, sm, gr, occupancy,
        # power) — the same stream order the per-sample loop consumed.
        act_std = self.noise.activity_std()
        noisy = self.noise.perturb_columns(
            rng,
            n_samples,
            np.array(
                [
                    breakdown.fp64_active,
                    breakdown.fp32_active,
                    breakdown.dram_active,
                    breakdown.sm_active,
                    breakdown.gr_engine_active,
                    census.occupancy,
                    true_power,
                ]
            ),
            np.array(
                [
                    act_std,
                    act_std,
                    self.noise.activity_std(extra_std=dram_drift),
                    act_std,
                    act_std,
                    act_std,
                    self.noise.power_rel_std,
                ]
            ),
        )
        activities = np.clip(noisy[:, :6], 0.0, 1.0)
        power_values = np.ascontiguousarray(noisy[:, 6])

        block = np.empty((n_samples, len(METRIC_NAMES)))
        block[:, METRIC_INDEX["fp64_active"]] = activities[:, 0]
        block[:, METRIC_INDEX["fp32_active"]] = activities[:, 1]
        block[:, METRIC_INDEX["sm_app_clock"]] = freq
        block[:, METRIC_INDEX["dram_active"]] = activities[:, 2]
        block[:, METRIC_INDEX["gr_engine_active"]] = activities[:, 4]
        block[:, METRIC_INDEX["gpu_utilization"]] = np.round(100.0 * activities[:, 4])
        block[:, METRIC_INDEX["power_usage"]] = power_values
        block[:, METRIC_INDEX["sm_active"]] = activities[:, 3]
        block[:, METRIC_INDEX["sm_occupancy"]] = activities[:, 5]
        block[:, METRIC_INDEX["pcie_tx_bytes"]] = pcie_tx_per_sample
        block[:, METRIC_INDEX["pcie_rx_bytes"]] = pcie_rx_per_sample
        block[:, METRIC_INDEX["exec_time"]] = exec_time

        return RunRecord(
            workload=workload_name,
            arch=self.arch.name,
            freq_mhz=freq,
            exec_time_s=exec_time,
            mean_power_w=float(power_values.mean()),
            timestamps_s=timestamps,
            metrics_block=block,
            throttled=throttled,
            final_temperature_c=self._temperature_c,
        )

    # ------------------------------------------------------------------
    # Thermal behaviour
    # ------------------------------------------------------------------
    @property
    def temperature_c(self) -> float | None:
        """Current junction temperature (None without a thermal model)."""
        return self._temperature_c

    def cool_down(self, seconds: float) -> float | None:
        """Idle for ``seconds``; the junction relaxes toward idle-load
        steady state.  Returns the new temperature (None if no thermal
        model) — the per-run cooldown a careful power study inserts."""
        if self.thermal is None:
            return None
        self._temperature_c = self.thermal.evolve(
            self._temperature_c, self.power.idle_power(), seconds
        )
        return self._temperature_c

    def _throttle_clock(self, census: KernelCensus, mem_ratio: float) -> tuple[float, float, float]:
        """Highest usable clock whose steady-state temperature holds.

        Returns (clock, wall_time, power) at that clock; falls back to
        the lowest usable clock if nothing is sustainable.
        """
        for f in reversed(self.dvfs.usable_mhz):
            bd = self.timing.evaluate(census, f, mem_ratio=mem_ratio)
            p = self.power.power_from_breakdown(bd, mem_ratio=mem_ratio)
            if not self.thermal.would_throttle(p):
                return f, bd.t_total, p
        f = self.dvfs.usable_mhz[0]
        bd = self.timing.evaluate(census, f, mem_ratio=mem_ratio)
        return f, bd.t_total, self.power.power_from_breakdown(bd, mem_ratio=mem_ratio)

    def _apply_thermal(
        self,
        census: KernelCensus,
        freq: float,
        mem_ratio: float,
        true_time: float,
        true_power: float,
    ) -> tuple[float, float, bool]:
        """Evolve junction temperature; throttle if the limit is hit.

        If the limit is crossed mid-run, the remaining work executes at
        the highest thermally sustainable clock; wall time and mean power
        are blended accordingly.
        """
        thermal = self.thermal
        t_cross = thermal.time_to_reach(self._temperature_c, true_power, thermal.throttle_limit_c)
        if t_cross >= true_time:
            self._temperature_c = thermal.evolve(self._temperature_c, true_power, true_time)
            return true_time, true_power, False

        # Work completed before the limit, remainder at the safe clock.
        frac_done = t_cross / true_time if true_time > 0 else 1.0
        _f_safe, t_safe_full, p_safe = self._throttle_clock(census, mem_ratio)
        t_rest = (1.0 - frac_done) * t_safe_full
        total_time = t_cross + t_rest
        mean_power = (true_power * t_cross + p_safe * t_rest) / total_time
        temp_at_cross = thermal.evolve(self._temperature_c, true_power, t_cross)
        self._temperature_c = thermal.evolve(temp_at_cross, p_safe, t_rest)
        return total_time, mean_power, True

    def run_at(self, census: KernelCensus, freq_mhz: MHz, *, workload_name: str = "anonymous") -> RunRecord:
        """Convenience: set the clock, run, restore the previous clock."""
        previous = self._sm_clock
        try:
            self.set_sm_clock(freq_mhz)
            return self.run(census, workload_name=workload_name)
        finally:
            self._sm_clock = previous

    # ------------------------------------------------------------------
    # Noise-free ground truth (for validation and plotting)
    # ------------------------------------------------------------------
    def true_time(self, census: KernelCensus, freq_mhz: MHz, *, mem_ratio: float = 1.0) -> Seconds:
        """Noise-free wall time at a clock (not necessarily the current)."""
        return self.timing.execution_time(census, self.dvfs.snap(freq_mhz), mem_ratio=mem_ratio)

    def true_power(self, census: KernelCensus, freq_mhz: MHz, *, mem_ratio: float = 1.0) -> Watts:
        """Noise-free board power at a clock."""
        breakdown = self.timing.evaluate(census, self.dvfs.snap(freq_mhz), mem_ratio=mem_ratio)
        return self.power.power_from_breakdown(breakdown, mem_ratio=mem_ratio)

    def true_energy(self, census: KernelCensus, freq_mhz: MHz, *, mem_ratio: float = 1.0) -> Joules:
        """Noise-free energy at a clock."""
        f = self.dvfs.snap(freq_mhz)
        return self.true_power(census, f, mem_ratio=mem_ratio) * self.true_time(
            census, f, mem_ratio=mem_ratio
        )
