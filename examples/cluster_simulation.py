"""Fleet-scale simulation: the paper's method as a scheduler policy.

Builds a small GPU partition, trains the paper's models once, and runs
the same mixed job campaign under three scheduler policies: the boost
clock status quo, a blunt site-wide static cap, and per-application
ED2P selection.  The output is the trade-off a facility manager would
look at: energy, makespan, and peak partition power.

Run:  python examples/cluster_simulation.py
"""

from repro.cluster import (
    DefaultClockPolicy,
    FIFOScheduler,
    GPUNode,
    Job,
    ModelDrivenPolicy,
    StaticClockPolicy,
    summarize,
)
from repro.core import FrequencySelectionPipeline
from repro.gpusim import GA100, SimulatedGPU
from repro.workloads import evaluation_workloads, training_workloads


def build_campaign(n_bursts: int = 5) -> list[Job]:
    """Bursts of the six production apps arriving every 2 s."""
    jobs, job_id = [], 0
    for burst in range(n_bursts):
        for workload in evaluation_workloads():
            jobs.append(Job(job_id, workload, arrival_s=2.0 * burst))
            job_id += 1
    return jobs


def main() -> None:
    print("training the paper's models (offline, once per site)...")
    trainer_device = SimulatedGPU(GA100, seed=3, max_samples_per_run=8)
    pipeline = FrequencySelectionPipeline(trainer_device, seed=0)
    pipeline.fit_offline(training_workloads(), runs_per_config=1)

    policies = {
        "default boost clock": DefaultClockPolicy(),
        "static 900 MHz cap": StaticClockPolicy(900.0),
        "per-app ED2P (paper)": ModelDrivenPolicy(pipeline),
    }
    jobs = build_campaign()

    print(f"\nscheduling {len(jobs)} jobs on 2 nodes x 2 GPUs under each policy:\n")
    print(f"{'policy':22s} {'makespan':>9s} {'energy':>9s} {'peak power':>11s}")
    reports = {}
    for name, policy in policies.items():
        nodes = [GPUNode(i, GA100, gpus_per_node=2, seed=7) for i in range(2)]
        records = FIFOScheduler(nodes, policy).run(jobs)
        report = summarize(name, records)
        reports[name] = report
        print(
            f"{name:22s} {report.makespan_s:8.1f}s {report.total_energy_j / 1e3:7.1f}kJ "
            f"{report.peak_power_w / 1e3:9.2f}kW"
        )

    base = reports["default boost clock"]
    model = reports["per-app ED2P (paper)"]
    print(
        f"\nper-app ED2P: {100 * model.energy_saving_vs(base):.1f}% energy saved "
        f"for {100 * model.makespan_change_vs(base):.1f}% longer makespan"
    )
    decisions = getattr(policies["per-app ED2P (paper)"], "decisions")
    print("clock decisions:", ", ".join(f"{k}={v:.0f}MHz" for k, v in sorted(decisions.items())))


if __name__ == "__main__":
    main()
