"""Run-history store: append/query round-trips and ingestion adapters."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.obs.store import (
    FileLock,
    LockTimeout,
    RunRecord,
    RunStore,
    record_from_bench_payload,
    record_from_fleet_metrics,
    record_from_manifest,
    record_from_service_stats,
    tracked_metrics,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _record(bench="b", value=1.0, when=0.0, **metrics):
    metrics = metrics or {"m": value}
    return RunRecord(
        schema=1,
        bench=bench,
        config_hash="c" * 8,
        git="deadbeef",
        recorded_unix=when,
        source="test",
        metrics=metrics,
    )


class TestRunStore:
    def test_append_and_read_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "h.jsonl")
        store.append(_record(value=1.5))
        store.append(_record(value=2.5, when=1.0))
        records = store.records()
        assert len(records) == 2
        assert records[0].metrics == {"m": 1.5}
        assert records[1].recorded_unix == pytest.approx(1.0)

    def test_directory_target_gets_default_name(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(_record())
        assert (tmp_path / "run_history.jsonl").exists()

    def test_bench_filter_and_names(self, tmp_path):
        store = RunStore(tmp_path / "h.jsonl")
        store.append(_record(bench="x"))
        store.append(_record(bench="y"))
        store.append(_record(bench="x", when=2.0))
        assert len(store.records("x")) == 2
        assert store.benches() == ["x", "y"]
        assert store.latest("x").recorded_unix == pytest.approx(2.0)

    def test_trajectory_and_best_both_directions(self, tmp_path):
        store = RunStore(tmp_path / "h.jsonl")
        for i, v in enumerate((3.0, 1.0, 2.0)):
            store.append(_record(when=float(i), m=v))
        assert store.trajectory("b", "m") == [(0.0, 3.0), (1.0, 1.0), (2.0, 2.0)]
        assert store.best("b", "m") == 3.0
        assert store.best("b", "m", higher_is_better=False) == 1.0
        assert store.best("b", "absent") is None
        assert store.best("nope", "m") is None

    def test_tolerates_crash_tail(self, tmp_path):
        path = tmp_path / "h.jsonl"
        store = RunStore(path)
        store.append(_record())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"bench": "trunc')  # interrupted mid-write
        assert len(store.records()) == 1

    def test_empty_store_reads_empty(self, tmp_path):
        assert RunStore(tmp_path / "missing.jsonl").records() == []


class TestFileLock:
    """Inter-process append lock: clean release and stale-pid takeover."""

    def test_append_leaves_no_lock_file(self, tmp_path):
        store = RunStore(tmp_path / "h.jsonl")
        store.append(_record())
        assert not store.lock_path.exists()

    def test_context_manager_releases_on_exception(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with pytest.raises(RuntimeError):
            with lock:
                assert (tmp_path / "x.lock").exists()
                raise RuntimeError("mid-append crash")
        assert not (tmp_path / "x.lock").exists()

    def test_stale_lock_from_dead_pid_is_taken_over(self, tmp_path):
        path = tmp_path / "h.jsonl"
        # Fabricate the crash artifact: a lock file naming a pid that no
        # longer exists (max pid + spawn churn makes 2**22+1 safely dead).
        dead_pid = 2**22 + 1
        store = RunStore(path, lock_timeout_s=2.0)
        store.lock_path.write_text(str(dead_pid), encoding="ascii")
        store.append(_record())
        assert len(store.records()) == 1
        assert not store.lock_path.exists()

    def test_empty_lock_file_counts_as_stale(self, tmp_path):
        # Holder died between open and write: file exists, no pid inside.
        lock = FileLock(tmp_path / "x.lock", timeout_s=2.0)
        (tmp_path / "x.lock").write_text("", encoding="ascii")
        with lock:
            assert (tmp_path / "x.lock").read_text(encoding="ascii").strip() != ""

    def test_live_holder_times_out(self, tmp_path):
        import os

        # Our own pid is alive by definition — a waiter must not steal it.
        (tmp_path / "x.lock").write_text(str(os.getpid()), encoding="ascii")
        lock = FileLock(tmp_path / "x.lock", timeout_s=0.2, poll_s=0.02)
        with pytest.raises(LockTimeout):
            lock.acquire()
        assert (tmp_path / "x.lock").exists()

    def test_reentry_after_release(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            pass
        with lock:
            assert (tmp_path / "x.lock").exists()
        assert not (tmp_path / "x.lock").exists()


class TestTrackedMetrics:
    """Extraction over the three *checked-in* BENCH payload schemas."""

    def test_serving_payload_tracks_every_scenario(self):
        payload = json.loads((REPO_ROOT / "BENCH_serving.json").read_text())
        rows = tracked_metrics(payload)
        names = {r.metric for r in rows}
        assert {f"{s}.selections_per_s" for s in payload["scenarios"]} == names
        assert all(r.higher_is_better for r in rows)

    def test_collection_payload_tracks_rates(self):
        payload = json.loads((REPO_ROOT / "BENCH_collection.json").read_text())
        rows = tracked_metrics(payload)
        assert {r.metric for r in rows} == {"runs_per_s", "samples_per_s"}

    def test_obs_payload_tracks_slowdown_lower_is_better(self):
        payload = json.loads((REPO_ROOT / "BENCH_obs.json").read_text())
        (row,) = tracked_metrics(payload)
        assert row.metric == "slowdown_vs_disabled"
        assert not row.higher_is_better

    def test_unknown_bench_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            tracked_metrics({"bench": "mystery"})
        with pytest.raises(ValueError, match="bench"):
            tracked_metrics({})

    def test_malformed_serving_rejected(self):
        with pytest.raises(ValueError, match="no scenarios"):
            tracked_metrics({"bench": "serving-batch-throughput", "scenarios": {}})
        with pytest.raises(ValueError, match="malformed"):
            tracked_metrics(
                {"bench": "serving-batch-throughput", "scenarios": {"cold": {}}}
            )


class TestIngestion:
    def test_bench_payload_record(self, tmp_path):
        payload = json.loads((REPO_ROOT / "BENCH_obs.json").read_text())
        record = record_from_bench_payload(payload, source="BENCH_obs.json")
        assert record.bench == "obs-tracer-overhead"
        assert record.metrics["slowdown_vs_disabled"] == payload["current"]["slowdown_vs_disabled"]
        assert record.meta["higher_is_better"]["slowdown_vs_disabled"] is False
        assert len(record.config_hash) == 64
        RunStore(tmp_path / "h.jsonl").append(record)  # serializes cleanly

    def test_fleet_metrics_record_from_golden(self, tmp_path):
        metrics = json.loads(
            (REPO_ROOT / "tests/golden/golden_fleet_baseline.json").read_text()
        )
        record = record_from_fleet_metrics(metrics)
        assert record.bench == f"fleet-{metrics['scenario']}"
        assert record.metrics["total_energy_j"] == metrics["total_energy_j"]
        # Non-numeric fields (scenario name) stay out of the metric dict.
        assert "scenario" not in record.metrics
        store = RunStore(tmp_path / "h.jsonl")
        store.append(record)
        assert store.best(record.bench, "jobs_completed") == metrics["jobs_completed"]

    def test_service_stats_record(self):
        class FakeStats:
            requests = 10
            batches = 2
            mean_batch_size = 5.0
            max_batch_size = 8
            cache_hits = 6
            cache_misses = 4
            hit_rate = 0.6
            curves_computed = 4
            measure_s = 0.1
            lookup_s = 0.2
            predict_s = 0.3
            select_s = 0.4
            engine = "exact"

        record = record_from_service_stats(FakeStats())
        assert record.bench == "serving-service"
        assert record.metrics["hit_rate"] == pytest.approx(0.6)
        assert record.meta == {"engine": "exact", "max_batch_size": 8}

    def test_manifest_record(self):
        run = obs.RunContext("train", ["train", "--seed", "3"], {"seed": 3})
        registry = obs.MetricsRegistry()
        registry.counter("train_rows_total", "rows").inc(42)
        registry.histogram("epoch_seconds", "per-epoch").observe(0.5)
        manifest = run.finish(exit_code=0, registry=registry)
        record = record_from_manifest(manifest)
        assert record.bench == "run-train"
        assert record.config_hash == manifest.config_hash
        assert record.metrics["train_rows_total"] == 42.0
        assert record.metrics["epoch_seconds.count"] == 1.0
        assert record.metrics["epoch_seconds.sum"] == pytest.approx(0.5)
        assert record.meta["exit_code"] == 0

    def test_manifest_record_from_parsed_json(self):
        run = obs.RunContext("fleet", ["fleet"], {"scenario": "baseline"})
        manifest = run.finish(exit_code=0)
        parsed = json.loads(manifest.to_json())
        record = record_from_manifest(parsed)
        assert record.bench == "run-fleet"
        assert record.git == manifest.git
