"""MicroBatcher / concurrent-submission tests.

Concurrency note: submission *order* is nondeterministic under a thread
pool, so these tests use pre-profiled feature requests — each response
depends only on its own request (curves are pure functions of the
profile), which is exactly why cross-thread serving can still meet the
bitwise bar per request.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.dataset import features_at_max
from repro.serving import MicroBatcher, SelectionRequest, SelectionService
from repro.workloads import get_workload

from tests.serving.asserts import assert_online_results_identical


@pytest.fixture()
def profiled_requests(quiet_pipeline):
    """Feature-vector requests profiled once on the quiet device."""
    requests = []
    for name in ("lammps", "lstm", "resnet50"):
        fv, p_max, t_max = features_at_max(quiet_pipeline.device, get_workload(name))
        requests.append(
            SelectionRequest.from_features(fv, t_max, power_at_max_w=p_max, name=name)
        )
    return requests


class TestSubmit:
    @pytest.mark.parametrize("n_workers", [1, 2, 8])
    def test_threaded_submit_matches_direct_flush(
        self, quiet_pipeline, profiled_requests, n_workers
    ):
        """Every future resolves to the same response a direct flush gives."""
        expected = {
            req.name: SelectionService(quiet_pipeline).select_one(req)
            for req in profiled_requests
        }
        stream = profiled_requests * 8  # 24 submissions
        with SelectionService(quiet_pipeline, batch_window_s=0.01) as service:
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                futures = list(pool.map(service.submit, stream))
            responses = [f.result(timeout=30) for f in futures]
        for req, response in zip(stream, responses):
            assert response.name == req.name
            assert_online_results_identical(
                response.to_online_result(), expected[req.name].to_online_result()
            )

    def test_submissions_coalesce_into_batches(self, quiet_pipeline, profiled_requests):
        """Requests landing inside one window share a flush."""
        with SelectionService(quiet_pipeline, batch_window_s=0.25) as service:
            futures = [service.submit(req) for req in profiled_requests * 4]
            for f in futures:
                f.result(timeout=30)
            stats = service.stats()
        assert stats.requests == 12
        # The dispatcher may split the stream, but a per-request flush
        # pattern would mean the window never coalesced anything.
        assert stats.batches < stats.requests
        assert stats.max_batch_size > 1

    def test_max_batch_size_respected(self, quiet_pipeline, profiled_requests):
        with SelectionService(
            quiet_pipeline, max_batch_size=2, batch_window_s=0.25
        ) as service:
            futures = [service.submit(req) for req in profiled_requests * 4]
            for f in futures:
                f.result(timeout=30)
            assert service.stats().max_batch_size <= 2

    def test_concurrent_select_many_is_serialized(self, quiet_pipeline, profiled_requests):
        """Racing synchronous flushes never corrupt responses or counters."""
        service = SelectionService(quiet_pipeline)
        expected = {
            req.name: service.select_one(req) for req in profiled_requests
        }
        errors = []

        def worker():
            try:
                for _ in range(5):
                    for req, resp in zip(
                        profiled_requests, service.select_many(profiled_requests)
                    ):
                        assert_online_results_identical(
                            resp.to_online_result(), expected[req.name].to_online_result()
                        )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # 3 initial + 6 threads * 5 rounds * 3 requests
        assert service.stats().requests == 3 + 6 * 5 * 3


class _RecordingService:
    """select_many stub that records batch sizes and simulates flush cost."""

    def __init__(self, delay_s: float = 0.0) -> None:
        self.delay_s = delay_s
        self.batches: list[int] = []

    def select_many(self, requests):
        self.batches.append(len(requests))
        if self.delay_s:
            time.sleep(self.delay_s)
        return list(requests)


class TestBurstLatency:
    def test_burst_drains_all_pending_per_wakeup(self):
        """A burst queued during a slow flush drains in back-to-back
        max_batch_size chunks — paying the batch window once, not once
        per chunk (and never once per request)."""
        service = _RecordingService(delay_s=0.5)
        batcher = MicroBatcher(service, max_batch_size=4, batch_window_s=0.05)
        try:
            start = time.monotonic()
            first = batcher.submit("warm")
            time.sleep(0.2)  # lands mid-flush of the first batch
            burst = [batcher.submit(i) for i in range(6)]
            for f in (first, *burst):
                f.result(timeout=10)
            elapsed = time.monotonic() - start
        finally:
            batcher.close()
        assert service.batches == [1, 4, 2]
        # 3 flushes + one window; a per-request dispatcher would need
        # 7 x 0.5s of flush time alone.
        assert elapsed < 2.5

    def test_full_batch_skips_window_wait(self):
        """Once the batch is full, waiting out the window is pure latency."""
        service = _RecordingService()
        batcher = MicroBatcher(service, max_batch_size=2, batch_window_s=30.0)
        try:
            futures = [batcher.submit(i) for i in range(2)]
            for f in futures:
                f.result(timeout=10)
        finally:
            batcher.close()
        assert service.batches == [2]


class TestLifecycle:
    def test_submit_after_close_raises(self, quiet_pipeline, profiled_requests):
        batcher = MicroBatcher(SelectionService(quiet_pipeline))
        batcher.submit(profiled_requests[0]).result(timeout=30)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(profiled_requests[0])

    def test_close_drains_pending(self, quiet_pipeline, profiled_requests):
        service = SelectionService(quiet_pipeline, batch_window_s=0.5)
        futures = [service.submit(req) for req in profiled_requests]
        service.close()  # must flush the open window, not drop it
        for f in futures:
            assert f.result(timeout=5) is not None

    def test_service_reusable_after_close(self, quiet_pipeline, profiled_requests):
        service = SelectionService(quiet_pipeline)
        service.submit(profiled_requests[0]).result(timeout=30)
        service.close()
        # A new dispatcher spins up lazily on the next submit.
        assert service.submit(profiled_requests[1]).result(timeout=30).name == "lstm"
        service.close()

    def test_close_idempotent(self, quiet_pipeline):
        service = SelectionService(quiet_pipeline)
        service.close()
        service.close()
