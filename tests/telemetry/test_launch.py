"""Launcher (collection campaign) tests."""

import pytest

from repro.telemetry import LaunchConfig, Launcher, read_samples_csv
from repro.workloads import get_workload


@pytest.fixture()
def small_config():
    return LaunchConfig(freqs_mhz=(600.0, 1005.0, 1410.0), runs_per_config=2)


class TestLaunchConfig:
    def test_empty_freqs_rejected(self):
        with pytest.raises(ValueError, match="freqs"):
            LaunchConfig(freqs_mhz=())

    def test_zero_runs_rejected(self):
        with pytest.raises(ValueError, match="runs_per_config"):
            LaunchConfig(freqs_mhz=(1410.0,), runs_per_config=0)


class TestCampaign:
    def test_artifact_count(self, ga100, small_config):
        launcher = Launcher(ga100)
        artifacts = launcher.collect([get_workload("stream"), get_workload("dgemm")], small_config)
        assert len(artifacts) == 2 * 3 * 2  # workloads x freqs x runs

    def test_artifacts_cover_grid(self, ga100, small_config):
        launcher = Launcher(ga100)
        artifacts = launcher.collect([get_workload("stream")], small_config)
        assert {a.freq_mhz for a in artifacts} == {600.0, 1005.0, 1410.0}
        assert {a.run_index for a in artifacts} == {0, 1}

    def test_clock_restored_after_campaign(self, ga100, small_config):
        launcher = Launcher(ga100)
        launcher.collect([get_workload("stream")], small_config)
        assert ga100.current_sm_clock == 1410.0

    def test_clock_restored_on_failure(self, ga100, small_config):
        class Boom:
            name = "boom"

            def census(self, size=None):
                raise RuntimeError("kaboom")

        launcher = Launcher(ga100)
        with pytest.raises(RuntimeError, match="kaboom"):
            launcher.collect([Boom()], small_config)
        assert ga100.current_sm_clock == 1410.0

    def test_csv_output(self, ga100, tmp_path):
        config = LaunchConfig(freqs_mhz=(1410.0,), runs_per_config=1, output_dir=tmp_path)
        launcher = Launcher(ga100)
        artifacts = launcher.collect([get_workload("stream")], config)
        assert artifacts[0].csv_path is not None
        rows = read_samples_csv(artifacts[0].csv_path)
        assert len(rows) == len(artifacts[0].record.samples)
        assert "power_usage" in rows[0]

    def test_size_override_applies(self, ga100):
        config = LaunchConfig(freqs_mhz=(1410.0,), runs_per_config=1, sizes={"stream": 4096})
        launcher = Launcher(ga100)
        small = launcher.collect([get_workload("stream")], config)[0]
        full = launcher.collect_at_max([get_workload("stream")])[0]
        assert small.record.exec_time_s < full.record.exec_time_s

    def test_collect_at_max_uses_default_clock(self, ga100):
        launcher = Launcher(ga100)
        artifacts = launcher.collect_at_max([get_workload("stream")], runs=2)
        assert len(artifacts) == 2
        assert all(a.freq_mhz == 1410.0 for a in artifacts)

    def test_collect_at_max_forwards_sizes(self, ga100):
        """Regression: size overrides must reach the profiler through the
        online-phase path, not silently fall back to default sizes."""
        launcher = Launcher(ga100)
        small = launcher.collect_at_max([get_workload("stream")], sizes={"stream": 4096})[0]
        full = launcher.collect_at_max([get_workload("stream")])[0]
        assert small.record.exec_time_s < full.record.exec_time_s
