"""Table 3: power/performance model accuracy per app, GA100 and GV100.

The GV100 rows are the paper's portability experiment: the *same*
GA100-trained networks predict Volta behaviour (power rescaled through
the TDP normalisation, time as the dimensionless slowdown factor).

Expected shape: all accuracies high (paper: 89-98 %), with GV100 within
a few points of GA100.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import EvaluationSuite
from repro.experiments.report import render_table

__all__ = ["AccuracyRow", "Tab3Result", "run_tab3", "render_tab3"]


@dataclass(frozen=True)
class AccuracyRow:
    """One (GPU, application) accuracy pair."""

    arch: str
    app: str
    power_accuracy: float
    time_accuracy: float


@dataclass(frozen=True)
class Tab3Result:
    """All accuracy rows, GA100 first."""

    rows: list[AccuracyRow]

    def row(self, arch: str, app: str) -> AccuracyRow:
        """Look up one row."""
        for r in self.rows:
            if r.arch == arch.upper() and r.app == app.lower():
                return r
        raise KeyError(f"no row for {arch}/{app}")

    def min_accuracy(self, arch: str) -> float:
        """Worst accuracy (power or time) on one architecture."""
        vals = [
            min(r.power_accuracy, r.time_accuracy) for r in self.rows if r.arch == arch.upper()
        ]
        return min(vals)


def run_tab3(ctx: ExperimentContext, *, suite: EvaluationSuite | None = None) -> Tab3Result:
    """Evaluate all apps on both architectures."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    rows: list[AccuracyRow] = []
    for arch in ("GA100", "GV100"):
        for ev in suite.evaluate_all(arch):
            rows.append(
                AccuracyRow(
                    arch=arch,
                    app=ev.app,
                    power_accuracy=ev.power_accuracy,
                    time_accuracy=ev.time_accuracy,
                )
            )
    return Tab3Result(rows=rows)


def render_tab3(result: Tab3Result) -> str:
    """Table 3 layout."""
    table_rows = [[r.arch, r.app, r.power_accuracy, r.time_accuracy] for r in result.rows]
    return render_table(
        ["GPU", "application", "power acc (%)", "time acc (%)"],
        table_rows,
        title="Table 3 - model accuracy per real application (GA100-trained models)",
    )
