"""Jobs and their completion records."""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import Workload

__all__ = ["Job", "JobRecord"]


@dataclass(frozen=True)
class Job:
    """One GPU job submitted to the cluster."""

    job_id: int
    workload: Workload
    #: Simulation time at which the job becomes runnable, seconds.
    arrival_s: float = 0.0
    #: Optional workload size override.
    size: int | None = None
    #: Optional completion deadline (absolute simulation time, seconds);
    #: None means the job carries no SLA.
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError("job_id must be non-negative")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.deadline_s is not None and self.deadline_s < self.arrival_s:
            raise ValueError("deadline_s must not precede arrival_s")


@dataclass(frozen=True)
class JobRecord:
    """Completion record of one scheduled job."""

    job_id: int
    workload: str
    node_id: int
    gpu_index: int
    #: Clock the policy applied for this job, MHz.
    clock_mhz: float
    arrival_s: float
    start_s: float
    end_s: float
    energy_j: float
    mean_power_w: float
    #: Placement attempts consumed (1 = first try; >1 means the job was
    #: requeued after a node failure killed an earlier attempt).
    attempts: int = 1
    #: Deadline carried over from the job (None = no SLA).
    deadline_s: float | None = None

    @property
    def duration_s(self) -> float:
        """Execution time on the GPU."""
        return self.end_s - self.start_s

    @property
    def wait_s(self) -> float:
        """Queue wait before the job started."""
        return self.start_s - self.arrival_s

    @property
    def met_deadline(self) -> bool | None:
        """Whether the job finished by its deadline (None without one)."""
        if self.deadline_s is None:
            return None
        return self.end_s <= self.deadline_s
