"""Failure-plan construction.

Turns a declarative :class:`~repro.fleet.scenario.FailureSpec` into the
concrete :class:`~repro.cluster.engine.NodeOutage` list the engine
injects.  Random churn draws exclusively from the ``rng`` argument —
the simulator passes a generator built from the campaign's dedicated
failure SeedSequence child, so the same failure seed always yields the
same outage plan no matter what else changed.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.engine import NodeOutage
from repro.fleet.scenario import FailureSpec

__all__ = ["build_outages"]


def build_outages(
    spec: FailureSpec,
    *,
    node_ids: list[int],
    duration_s: float,
    rng: np.random.Generator,
) -> tuple[NodeOutage, ...]:
    """The campaign's outage plan (explicit windows + random churn)."""
    outages = [NodeOutage(node_id=n, down_s=d, up_s=u) for n, d, u in spec.outages]
    lo, hi = spec.window
    for _ in range(spec.random_outages):
        node_id = node_ids[int(rng.integers(0, len(node_ids)))]
        down = float(rng.uniform(lo, hi)) * duration_s
        downtime = max(1.0, float(rng.exponential(spec.mean_downtime_s)))
        outages.append(NodeOutage(node_id=node_id, down_s=down, up_s=down + downtime))
    outages.sort(key=lambda o: (o.down_s, o.node_id))
    return tuple(outages)
