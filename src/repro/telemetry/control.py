"""Clock control module (paper Section 4.1, "control module").

Thin, auditable wrapper over the device's clock interface: every applied
configuration is recorded so an experiment can prove exactly which clocks
each run executed under — the provenance a real power study needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.device import SimulatedGPU

__all__ = ["ClockController"]


@dataclass
class ClockController:
    """Applies SM/memory clocks to one device and logs the history.

    The paper's control module "applies the desired operating frequency
    to the GPU cores *and memory*"; both axes are exposed here.  History
    entries are ``(domain, snapped_mhz)`` pairs.
    """

    device: SimulatedGPU
    history: list[tuple[str, float]] = field(default_factory=list)

    def set_sm_clock(self, freq_mhz: float) -> float:
        """Apply a core clock; returns the snapped value actually in effect.

        Requests snap to the nearest supported state (driver semantics);
        the *snapped* value is what gets logged.
        """
        actual = self.device.set_sm_clock(freq_mhz)
        self.history.append(("sm", actual))
        return actual

    def set_mem_clock(self, freq_mhz: float) -> float:
        """Apply a memory clock; returns the snapped value in effect."""
        actual = self.device.set_mem_clock(freq_mhz)
        self.history.append(("mem", actual))
        return actual

    def reset(self) -> float:
        """Restore default core and memory clocks (and log it)."""
        actual = self.device.reset_clocks()
        self.history.append(("sm", actual))
        self.history.append(("mem", self.device.current_mem_clock))
        return actual

    @property
    def current_clock(self) -> float:
        """The core clock currently in effect on the device."""
        return self.device.current_sm_clock

    @property
    def current_mem_clock(self) -> float:
        """The memory clock currently in effect on the device."""
        return self.device.current_mem_clock

    def sweep(self, freqs_mhz: list[float]) -> list[float]:
        """Validate-and-snap a whole sweep without applying it.

        Used by the launch module to precompute the actual design space
        before starting a (simulated) multi-hour collection.
        """
        return [self.device.dvfs.snap(f) for f in freqs_mhz]
