"""Table 5: realised energy/time change per app per method."""

import pytest

from repro.experiments.tab5 import render_tab5, run_tab5


@pytest.fixture(scope="module")
def tab5(ctx, suite):
    return run_tab5(ctx, suite=suite)


def test_tab5_report(benchmark, tab5, report):
    benchmark(render_tab5, tab5)
    report("Table 5 - energy/time trade-off per method", render_tab5(tab5))


def test_tab5_energy_savings_everywhere(tab5):
    """Every measured-EDP selection saves energy (paper Table 5)."""
    for row in tab5.rows:
        assert row.energy_pct["M-EDP"] > 0.0, row.app


def test_tab5_edp_saves_at_least_as_much_energy(tab5):
    """EDP leans harder on energy than ED2P on average."""
    e_edp, _ = tab5.average("M-EDP")
    e_ed2p, _ = tab5.average("M-ED2P")
    assert e_edp >= e_ed2p - 2.0


def test_tab5_time_losses_bounded(tab5):
    for row in tab5.rows:
        assert row.time_pct["M-ED2P"] > -16.0, row.app
