"""Additional power-model behaviour: custom anchors, voltage coupling."""

import numpy as np
import pytest

from repro.gpusim import GA100, PowerCoefficients, PowerModel, VoltageCurve


class TestCustomCalibration:
    def test_custom_anchor_fractions(self):
        c = PowerCoefficients.calibrate(
            GA100, compute_power_fraction=0.9, memory_power_fraction=0.45
        )
        model = PowerModel(GA100, coefficients=c)
        from repro.gpusim.power import _COMPUTE_ANCHOR

        fp, dram, sm = _COMPUTE_ANCHOR
        p = model.power(1410.0, fp_active=fp, dram_active=dram, sm_active=sm)
        assert p == pytest.approx(0.9 * 500.0, rel=0.01)

    def test_equal_fractions_rejected(self):
        with pytest.raises(ValueError):
            PowerCoefficients.calibrate(GA100, compute_power_fraction=0.5, memory_power_fraction=0.5)


class TestVoltageCoupling:
    def test_undervolt_reduces_power(self):
        census_activities = dict(fp_active=0.8, dram_active=0.3, sm_active=0.9)
        stock = PowerModel(GA100)
        curve = VoltageCurve(GA100)
        curve.set_override(1200.0, 0.80)
        tuned = PowerModel(GA100, voltage=curve)
        assert tuned.power(1200.0, **census_activities) < stock.power(1200.0, **census_activities)

    def test_power_difference_scales_with_v_squared(self):
        activities = dict(fp_active=0.8, dram_active=0.3, sm_active=0.9)
        stock = PowerModel(GA100)
        v_stock = stock.voltage.volts(1200.0)
        curve = VoltageCurve(GA100)
        v_new = v_stock * 0.9
        curve.set_override(1200.0, v_new)
        tuned = PowerModel(GA100, voltage=curve)
        dyn_stock = stock.power(1200.0, **activities) - GA100.idle_power_watts
        dyn_tuned = tuned.power(1200.0, **activities) - GA100.idle_power_watts
        assert dyn_tuned / dyn_stock == pytest.approx(0.81, rel=1e-6)


class TestBroadcasting:
    def test_array_activities_scalar_clock(self):
        model = PowerModel(GA100)
        fp = np.array([0.1, 0.5, 0.9])
        p = model.power(1200.0, fp_active=fp, dram_active=0.3, sm_active=0.8)
        assert p.shape == (3,)
        assert np.all(np.diff(p) > 0)

    def test_grid_by_grid_broadcast(self):
        model = PowerModel(GA100)
        freqs = np.linspace(510, 1410, 61)
        p = model.power(freqs, fp_active=np.full(61, 0.5), dram_active=0.3, sm_active=0.8)
        assert p.shape == (61,)
