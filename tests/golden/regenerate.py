"""Regenerate the golden file for the tiny pipeline.

Run after an *intentional* change to model maths, the simulator, or the
selection algorithm::

    PYTHONPATH=src:. python tests/golden/regenerate.py

then review the diff of ``golden_tiny_pipeline.json`` — every changed
value is a behaviour change you are signing off on.
"""

from __future__ import annotations

from tests.golden.tiny_pipeline import golden_payload, write_golden


def main() -> None:
    path = write_golden(golden_payload())
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
