"""Execution-time model: latency-aware roofline over the DVFS space.

The model decomposes one application execution into

* **compute time** — FLOPs divided by achievable FLOP rate; the rate scales
  linearly with the SM clock (paper Fig. 1 (d): FLOPS is a direct linear
  function of core frequency),
* **memory time** — DRAM bytes divided by achievable bandwidth; bandwidth
  scales with the clock up to a saturation knee at
  ``arch.bandwidth_knee_fraction * f_max`` and is flat above it (paper
  Fig. 1 (h): bandwidth flattens at ~900 MHz on GA100),
* **exposed host-link time** — PCIe traffic, partially overlapped with GPU
  work and insensitive to the SM clock,
* **serial time** — host-side fraction of wall time (launch gaps, CPU
  phases), fixed in absolute terms and insensitive to the SM clock.

Compute and memory time overlap through a smooth-maximum with exponent
``overlap_p``: ``t_gpu = (t_c^p + t_m^p)^(1/p)``.  ``p -> inf`` is perfect
overlap (pure roofline max); ``p = 1`` is fully serialized.

The DCGM-style activity fractions (``fp64_active``, ``dram_active``, …)
fall out of the same breakdown, which is why they are nearly invariant to
the clock: for compute-bound work, both numerator (pipe-busy time) and
denominator (wall time) scale as ``1/f`` and the ratio cancels — exactly
the invariance paper Section 4.2.2 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.gpusim.kernel import KernelCensus
from repro.units import MHz, MHzArray, Seconds

__all__ = ["TimingBreakdown", "TimingModel"]


@dataclass(frozen=True)
class TimingBreakdown:
    """Per-component time (seconds) of one execution at one clock.

    The ``*_activity_scale`` fields convert busy *time* into counter
    *activity*: DCGM's ``fp64_active`` counts cycles the pipe actually
    issues, so a kernel achieving 70 % of peak shows ~0.7 pipe activity
    even while compute time dominates the run.  The scales are the
    census's compute/memory efficiencies.
    """

    freq_mhz: MHz
    t_compute_fp64: Seconds
    t_compute_fp32: Seconds
    t_memory: Seconds
    t_gpu: Seconds
    t_pcie_exposed: Seconds
    t_serial: Seconds
    #: Concurrent host pipeline time; overlaps t_gpu, so only the longer of
    #: the two reaches the wall clock.
    t_host_overlap: Seconds = 0.0
    compute_activity_scale: float = 1.0
    memory_activity_scale: float = 1.0

    @property
    def t_compute(self) -> Seconds:
        """Total FP pipe busy time."""
        return self.t_compute_fp64 + self.t_compute_fp32

    @property
    def t_total(self) -> Seconds:
        """Wall-clock execution time."""
        return max(self.t_gpu, self.t_host_overlap) + self.t_pcie_exposed + self.t_serial

    # ------------------------------------------------------------------
    # DCGM-style activity fractions (all in [0, 1]).
    # ------------------------------------------------------------------
    @property
    def fp64_active(self) -> float:
        """Fraction of cycles the FP64 pipes issue work."""
        return min(1.0, self.compute_activity_scale * self.t_compute_fp64 / self.t_total)

    @property
    def fp32_active(self) -> float:
        """Fraction of cycles the FP32 pipes issue work."""
        return min(1.0, self.compute_activity_scale * self.t_compute_fp32 / self.t_total)

    @property
    def fp_active(self) -> float:
        """Combined FP pipe activity — the paper's ``fp_active`` feature."""
        return min(1.0, self.compute_activity_scale * self.t_compute / self.t_total)

    @property
    def dram_active(self) -> float:
        """Fraction of cycles the DRAM interface transfers data."""
        return min(1.0, self.memory_activity_scale * self.t_memory / self.t_total)

    @property
    def sm_active(self) -> float:
        """Fraction of wall time at least one warp is resident on an SM."""
        return min(1.0, self.t_gpu / self.t_total)

    @property
    def gr_engine_active(self) -> float:
        """Fraction of wall time the graphics/compute engine is busy."""
        return min(1.0, (self.t_gpu + self.t_pcie_exposed) / self.t_total)


class TimingModel:
    """Maps (census, SM clock) to a :class:`TimingBreakdown`.

    Parameters
    ----------
    arch:
        Architecture whose peak rates and knees parameterise the roofline.
    overlap_p:
        Smooth-max exponent for compute/memory overlap.  The default (4)
        models the high-but-imperfect overlap of a well-pipelined kernel.
    pcie_overlap:
        Fraction of host-link time hidden under GPU work.
    bandwidth_softness:
        Exponent of the smooth bandwidth saturation curve; higher is a
        sharper knee.
    """

    def __init__(
        self,
        arch: GPUArchitecture,
        *,
        overlap_p: float = 4.0,
        pcie_overlap: float = 0.7,
        bandwidth_softness: float = 8.0,
    ) -> None:
        if overlap_p < 1.0:
            raise ValueError("overlap_p must be >= 1")
        if not 0.0 <= pcie_overlap <= 1.0:
            raise ValueError("pcie_overlap must be in [0, 1]")
        if bandwidth_softness <= 0:
            raise ValueError("bandwidth_softness must be positive")
        self.arch = arch
        self.overlap_p = float(overlap_p)
        self.pcie_overlap = float(pcie_overlap)
        self.bandwidth_softness = float(bandwidth_softness)

    # ------------------------------------------------------------------
    # Rate curves
    # ------------------------------------------------------------------
    def compute_rate(self, census: KernelCensus, freq_mhz: MHz, *, fp64: bool) -> float:
        """Achievable FLOP rate (FLOP/s) for one precision at one clock."""
        peak = self.arch.peak_flops_fp64 if fp64 else self.arch.peak_flops_fp32
        f_norm = freq_mhz / self.arch.core_freq_max_mhz
        return peak * census.compute_efficiency * f_norm

    def memory_bandwidth(self, census: KernelCensus, freq_mhz: MHz, *, mem_ratio: float = 1.0) -> float:
        """Achievable DRAM bandwidth (bytes/s) at one clock.

        Uses a smooth saturating curve: linear in the SM clock well below
        the knee, flat well above it (the SM clock stops being the
        bottleneck once the memory clock dominates).  ``mem_ratio`` is the
        applied memory clock relative to the default: the saturated
        plateau scales with it, and the saturation knee moves with it too
        (a slower memory clock is saturated by a slower SM clock).
        """
        if mem_ratio <= 0:
            raise ValueError("mem_ratio must be positive")
        knee = self.arch.bandwidth_knee_fraction * self.arch.core_freq_max_mhz * mem_ratio
        x = freq_mhz / knee
        p = self.bandwidth_softness
        saturation = x / (1.0 + x**p) ** (1.0 / p)
        return self.arch.peak_memory_bandwidth * mem_ratio * census.memory_efficiency * saturation

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, census: KernelCensus, freq_mhz: MHz, *, mem_ratio: float = 1.0) -> TimingBreakdown:
        """Time breakdown of one execution of ``census`` at ``freq_mhz``.

        ``mem_ratio`` is the applied memory clock relative to the default
        (1.0 unless the control module changed the memory clock).
        """
        if freq_mhz <= 0:
            raise ValueError("freq_mhz must be positive")
        t_c64 = self._compute_time(census, freq_mhz, fp64=True)
        t_c32 = self._compute_time(census, freq_mhz, fp64=False)
        t_mem = census.dram_bytes / self.memory_bandwidth(census, freq_mhz, mem_ratio=mem_ratio)
        t_gpu = self._overlap(t_c64 + t_c32, t_mem)
        t_pcie_exposed = (1.0 - self.pcie_overlap) * census.total_pcie_bytes / self.arch.pcie_bandwidth
        gpu_at_fmax = self._gpu_time_at_fmax(census)
        t_serial = census.serial_fraction / (1.0 - census.serial_fraction) * (gpu_at_fmax + t_pcie_exposed)
        t_host = census.concurrent_host_fraction * gpu_at_fmax
        return TimingBreakdown(
            freq_mhz=float(freq_mhz),
            t_compute_fp64=t_c64,
            t_compute_fp32=t_c32,
            t_memory=t_mem,
            t_gpu=t_gpu,
            t_pcie_exposed=t_pcie_exposed,
            t_serial=t_serial,
            t_host_overlap=t_host,
            compute_activity_scale=census.compute_efficiency,
            memory_activity_scale=census.memory_efficiency,
        )

    def execution_time(self, census: KernelCensus, freq_mhz: MHz, *, mem_ratio: float = 1.0) -> Seconds:
        """Wall-clock seconds for one execution (noise-free)."""
        return self.evaluate(census, freq_mhz, mem_ratio=mem_ratio).t_total

    def sweep(self, census: KernelCensus, freqs_mhz: MHzArray) -> list[TimingBreakdown]:
        """Breakdowns across a clock grid (ascending or arbitrary order)."""
        return [self.evaluate(census, float(f)) for f in np.asarray(freqs_mhz, dtype=float)]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compute_time(self, census: KernelCensus, freq_mhz: MHz, *, fp64: bool) -> Seconds:
        """Compute-pipe busy time with a clock-insensitive latency share.

        The clock-scaled share (1 - lambda) stretches as 1/f; the latency
        share lambda is pinned to its f_max value, flattening the time
        curve of latency-limited applications.
        """
        flops = census.flops_fp64 if fp64 else census.flops_fp32
        if flops == 0:
            return 0.0
        peak = self.arch.peak_flops_fp64 if fp64 else self.arch.peak_flops_fp32
        t_base = flops / (peak * census.compute_efficiency)
        lam = census.compute_latency_fraction
        f_norm = freq_mhz / self.arch.core_freq_max_mhz
        return t_base * ((1.0 - lam) / f_norm + lam)

    def _overlap(self, t_compute: Seconds, t_memory: Seconds) -> Seconds:
        if t_compute <= 0.0:
            return t_memory
        if t_memory <= 0.0:
            return t_compute
        p = self.overlap_p
        return float((t_compute**p + t_memory**p) ** (1.0 / p))

    def _gpu_time_at_fmax(self, census: KernelCensus) -> float:
        """Overlapped GPU time at the maximum clock.

        Both the serial time (``serial_fraction`` is defined as the serial
        share of wall time at f_max) and the concurrent host pipeline time
        are anchored here and stay constant as the clock drops — which is
        what makes DVFS-insensitive applications (paper: GROMACS) flat in
        time.
        """
        fmax = self.arch.core_freq_max_mhz
        t_c64 = self._compute_time(census, fmax, fp64=True)
        t_c32 = self._compute_time(census, fmax, fp64=False)
        t_mem = census.dram_bytes / self.memory_bandwidth(census, fmax)
        return self._overlap(t_c64 + t_c32, t_mem)
