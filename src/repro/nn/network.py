"""Feedforward network: a stack of Dense layers with backprop training.

The paper's architecture — 3 hidden layers x 64 SELU neurons with a
linear regression output — is ``FeedForwardNetwork.build(3, (64, 64, 64),
1, activation="selu", seed=...)``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.layers import Dense
from repro.nn.losses import Loss
from repro.nn.optimizers import Optimizer

__all__ = ["FeedForwardNetwork"]


class FeedForwardNetwork:
    """A sequential stack of :class:`~repro.nn.layers.Dense` layers."""

    def __init__(self, layers: Sequence[Dense]) -> None:
        if not layers:
            raise ValueError("network needs at least one layer")
        for prev, nxt in zip(layers, layers[1:]):
            if prev.out_features != nxt.in_features:
                raise ValueError(
                    f"layer size mismatch: {prev.out_features} outputs feeding {nxt.in_features} inputs"
                )
        self.layers = list(layers)

    @classmethod
    def build(
        cls,
        input_dim: int,
        hidden: Sequence[int],
        output_dim: int,
        *,
        activation: str = "selu",
        output_activation: str = "linear",
        seed: int | None = None,
    ) -> "FeedForwardNetwork":
        """Construct input -> hidden* -> output with one activation family."""
        rng = np.random.default_rng(seed)
        dims = [input_dim, *hidden]
        layers = [
            Dense(d_in, d_out, activation, rng=rng) for d_in, d_out in zip(dims, dims[1:])
        ]
        layers.append(Dense(dims[-1], output_dim, output_activation, rng=rng))
        return cls(layers)

    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int:
        """Expected feature count."""
        return self.layers[0].in_features

    @property
    def output_dim(self) -> int:
        """Prediction width."""
        return self.layers[-1].out_features

    def num_parameters(self) -> int:
        """Total trainable scalars."""
        return sum(layer.num_parameters() for layer in self.layers)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        """Full forward pass over a (batch, features) array."""
        out = np.asarray(x, dtype=float)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass."""
        return self.forward(x, training=False)

    def predict_blocked(self, x: np.ndarray, block_rows: int) -> np.ndarray:
        """Inference over a stack of fixed-size row blocks.

        Bitwise-identical to calling :meth:`predict` on each
        ``block_rows``-row slice separately (see
        :meth:`~repro.nn.layers.Dense.forward_blocked` for why a single
        full-stack gemm is not), while keeping every elementwise stage
        vectorized across the whole stack.  This is the serving layer's
        batched-inference primitive.
        """
        out = np.asarray(x, dtype=float)
        for layer in self.layers:
            out = layer.forward_blocked(out, block_rows)
        return out

    def layer_specs(self) -> tuple[tuple[np.ndarray, np.ndarray, str], ...]:
        """Packed-inference export of every layer (see :meth:`Dense.spec`).

        The tuple is the raw material for fused inference engines
        (:mod:`repro.serving.engine`): contiguous weight/bias copies plus
        activation names, in forward order.
        """
        return tuple(layer.spec() for layer in self.layers)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop through all layers; returns dL/dinput."""
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def train_batch(self, x: np.ndarray, y: np.ndarray, loss: Loss, optimizer: Optimizer) -> float:
        """One forward/backward/update step on a mini-batch; returns loss."""
        y_pred = self.forward(x, training=True)
        value = loss(y_pred, y)
        self.backward(loss.gradient(y_pred, y))
        optimizer.begin_step()
        for i, layer in enumerate(self.layers):
            for name, param in layer.params.items():
                optimizer.update((i, name), param, layer.grads[name])
        return value

    def evaluate(self, x: np.ndarray, y: np.ndarray, loss: Loss) -> float:
        """Loss on held-out data (no parameter updates)."""
        return loss(self.predict(x), np.asarray(y, dtype=float))
