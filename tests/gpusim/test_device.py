"""SimulatedGPU integration tests: clocks, runs, sensors, energy."""

import numpy as np
import pytest

from repro.gpusim import GA100, NoiseModel, SimulatedGPU
from repro.gpusim.device import METRIC_INDEX, METRIC_NAMES


class TestClockControl:
    def test_default_clock_on_boot(self, ga100):
        assert ga100.current_sm_clock == 1410.0

    def test_set_clock_snaps(self, ga100):
        actual = ga100.set_sm_clock(1001.0)
        assert actual == 1005.0
        assert ga100.current_sm_clock == 1005.0

    def test_reset_restores_default(self, ga100):
        ga100.set_sm_clock(600.0)
        assert ga100.reset_clocks() == 1410.0

    def test_nonpositive_clock_rejected(self, ga100):
        with pytest.raises(ValueError, match="freq_mhz"):
            ga100.set_sm_clock(-5.0)

    def test_run_at_restores_previous_clock(self, ga100, compute_census):
        ga100.set_sm_clock(900.0)
        ga100.run_at(compute_census, 600.0)
        assert ga100.current_sm_clock == 900.0


class TestRunRecords:
    def test_run_produces_samples(self, ga100, compute_census):
        record = ga100.run(compute_census, workload_name="x")
        assert record.workload == "x"
        assert record.arch == "GA100"
        assert len(record.samples) >= 1

    def test_sample_count_follows_interval(self, quiet_ga100, compute_census):
        record = quiet_ga100.run(compute_census)
        expected = int(np.ceil(record.exec_time_s / quiet_ga100.sampling_interval_s))
        assert len(record.samples) == min(expected, quiet_ga100.max_samples_per_run)

    def test_sample_cap_respected(self, compute_census):
        dev = SimulatedGPU(GA100, seed=0, max_samples_per_run=5)
        record = dev.run(compute_census.scaled(100.0))
        assert len(record.samples) == 5

    def test_metrics_contain_all_twelve_fields(self, ga100, compute_census):
        metrics = ga100.run(compute_census).metrics()
        assert set(metrics) == set(METRIC_NAMES)

    def test_pcie_totals_preserved(self, quiet_ga100, compute_census):
        metrics = quiet_ga100.run(compute_census).metrics()
        assert metrics["pcie_rx_bytes"] == pytest.approx(compute_census.pcie_rx_bytes, rel=1e-6)
        assert metrics["pcie_tx_bytes"] == pytest.approx(compute_census.pcie_tx_bytes, rel=1e-6)

    def test_energy_is_power_times_time(self, ga100, compute_census):
        record = ga100.run(compute_census)
        assert record.energy_j == pytest.approx(record.mean_power_w * record.exec_time_s)

    def test_sample_clock_matches_applied(self, ga100, compute_census):
        ga100.set_sm_clock(750.0)
        record = ga100.run(compute_census)
        assert all(s.sm_app_clock == 750.0 for s in record.samples)

    def test_sample_as_dict_roundtrip(self, ga100, compute_census):
        sample = ga100.run(compute_census).samples[0]
        d = sample.as_dict()
        assert set(d) == set(METRIC_NAMES)
        assert d["power_usage"] == sample.power_usage


class TestColumnLayout:
    """The record's primary storage is the (n_samples, 12) metric block."""

    def test_block_shape_and_timestamps(self, ga100, compute_census):
        record = ga100.run(compute_census)
        assert record.metrics_block.shape == (record.n_samples, len(METRIC_NAMES))
        assert record.timestamps_s.shape == (record.n_samples,)

    def test_samples_view_mirrors_block(self, ga100, compute_census):
        record = ga100.run(compute_census)
        for name in ("fp64_active", "power_usage", "sm_occupancy"):
            column = record.metrics_block[:, METRIC_INDEX[name]]
            assert [getattr(s, name) for s in record.samples] == column.tolist()

    def test_samples_view_is_cached(self, ga100, compute_census):
        record = ga100.run(compute_census)
        assert record.samples is record.samples

    def test_metric_column_by_name(self, ga100, compute_census):
        record = ga100.run(compute_census)
        assert np.array_equal(
            record.metric_column("dram_active"),
            record.metrics_block[:, METRIC_INDEX["dram_active"]],
        )

    def test_metrics_cached_and_copy_safe(self, ga100, compute_census):
        record = ga100.run(compute_census)
        first = record.metrics()
        first["power_usage"] = -1.0  # mutating the returned dict ...
        assert record.metrics()["power_usage"] != -1.0  # ... must not poison the cache


class TestRunCell:
    def test_run_cell_matches_spawned_stream(self, compute_census):
        """Same child seed, same cell -> identical records, independent of
        whatever the device's own stream did in between."""
        dev_a = SimulatedGPU(GA100, seed=5)
        dev_b = SimulatedGPU(GA100, seed=5)
        dev_b.run(compute_census)  # advance the device stream on one of them
        rec_a = dev_a.run_cell(compute_census, 900.0, dev_a.spawn_cell_rngs(1)[0])
        rec_b = dev_b.run_cell(compute_census, 900.0, dev_b.spawn_cell_rngs(1)[0])
        assert rec_a.exec_time_s == rec_b.exec_time_s
        assert np.array_equal(rec_a.metrics_block, rec_b.metrics_block)

    def test_run_cell_snaps_clock_without_applying_it(self, ga100, compute_census):
        record = ga100.run_cell(compute_census, 1001.0, np.random.default_rng(0))
        assert record.freq_mhz == 1005.0
        assert ga100.current_sm_clock == 1410.0

    def test_run_cell_rejects_nonpositive_clock(self, ga100, compute_census):
        with pytest.raises(ValueError, match="freq_mhz"):
            ga100.run_cell(compute_census, 0.0, np.random.default_rng(0))


class TestDeterminism:
    def test_same_seed_identical_runs(self, compute_census):
        a = SimulatedGPU(GA100, seed=99).run(compute_census)
        b = SimulatedGPU(GA100, seed=99).run(compute_census)
        assert a.exec_time_s == b.exec_time_s
        assert a.mean_power_w == b.mean_power_w

    def test_consecutive_runs_differ_with_noise(self, ga100, compute_census):
        a = ga100.run(compute_census)
        b = ga100.run(compute_census)
        assert a.exec_time_s != b.exec_time_s

    def test_noise_free_matches_ground_truth(self, quiet_ga100, compute_census):
        record = quiet_ga100.run(compute_census)
        assert record.exec_time_s == pytest.approx(
            quiet_ga100.true_time(compute_census, 1410.0), rel=1e-9
        )
        assert record.mean_power_w == pytest.approx(
            quiet_ga100.true_power(compute_census, 1410.0), rel=1e-9
        )


class TestGroundTruthHelpers:
    def test_true_energy_consistency(self, ga100, compute_census):
        e = ga100.true_energy(compute_census, 1000.0)
        p = ga100.true_power(compute_census, 1000.0)
        t = ga100.true_time(compute_census, 1000.0)
        assert e == pytest.approx(p * t)

    def test_true_time_decreases_with_clock(self, ga100, compute_census):
        assert ga100.true_time(compute_census, 510.0) > ga100.true_time(compute_census, 1410.0)

    def test_true_power_increases_with_clock(self, ga100, compute_census):
        assert ga100.true_power(compute_census, 510.0) < ga100.true_power(compute_census, 1410.0)


class TestConstruction:
    def test_invalid_sampling_interval(self):
        with pytest.raises(ValueError, match="sampling_interval"):
            SimulatedGPU(GA100, sampling_interval_s=0.0)

    def test_invalid_sample_cap(self):
        with pytest.raises(ValueError, match="max_samples"):
            SimulatedGPU(GA100, max_samples_per_run=0)

    def test_default_sampling_interval_is_20ms(self):
        """The paper's 20 ms collection interval is the default."""
        assert SimulatedGPU(GA100).sampling_interval_s == 0.020
