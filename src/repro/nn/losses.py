"""Regression losses with analytic gradients.

Gradients are with respect to the prediction and are normalized by the
total number of elements, so layer gradients stay batch-size invariant.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Loss", "MSE", "MAE", "Huber", "get_loss"]


def _check(y_pred: np.ndarray, y_true: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_pred = np.asarray(y_pred, dtype=float)
    y_true = np.asarray(y_true, dtype=float)
    if y_pred.shape != y_true.shape:
        raise ValueError(f"shape mismatch: predictions {y_pred.shape} vs targets {y_true.shape}")
    return y_pred, y_true


class Loss(ABC):
    """Scalar loss plus its gradient w.r.t. the predictions."""

    name: str = "abstract"

    @abstractmethod
    def __call__(self, y_pred: np.ndarray, y_true: np.ndarray) -> float:
        """Mean loss over all elements."""

    @abstractmethod
    def gradient(self, y_pred: np.ndarray, y_true: np.ndarray) -> np.ndarray:
        """dL/dy_pred, same shape as the predictions."""


class MSE(Loss):
    """Mean squared error — the paper's training loss."""

    name = "mse"

    def __call__(self, y_pred: np.ndarray, y_true: np.ndarray) -> float:
        y_pred, y_true = _check(y_pred, y_true)
        return float(np.mean((y_pred - y_true) ** 2))

    def gradient(self, y_pred: np.ndarray, y_true: np.ndarray) -> np.ndarray:
        y_pred, y_true = _check(y_pred, y_true)
        return 2.0 * (y_pred - y_true) / y_pred.size


class MAE(Loss):
    """Mean absolute error."""

    name = "mae"

    def __call__(self, y_pred: np.ndarray, y_true: np.ndarray) -> float:
        y_pred, y_true = _check(y_pred, y_true)
        return float(np.mean(np.abs(y_pred - y_true)))

    def gradient(self, y_pred: np.ndarray, y_true: np.ndarray) -> np.ndarray:
        y_pred, y_true = _check(y_pred, y_true)
        return np.sign(y_pred - y_true) / y_pred.size


class Huber(Loss):
    """Huber loss: quadratic near zero, linear in the tails."""

    name = "huber"

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = float(delta)

    def __call__(self, y_pred: np.ndarray, y_true: np.ndarray) -> float:
        y_pred, y_true = _check(y_pred, y_true)
        err = y_pred - y_true
        small = np.abs(err) <= self.delta
        quad = 0.5 * err**2
        lin = self.delta * (np.abs(err) - 0.5 * self.delta)
        return float(np.mean(np.where(small, quad, lin)))

    def gradient(self, y_pred: np.ndarray, y_true: np.ndarray) -> np.ndarray:
        y_pred, y_true = _check(y_pred, y_true)
        err = y_pred - y_true
        return np.clip(err, -self.delta, self.delta) / y_pred.size


_REGISTRY: dict[str, type[Loss]] = {cls.name: cls for cls in (MSE, MAE, Huber)}  # type: ignore[misc]


def get_loss(name: str) -> Loss:
    """Instantiate a loss by name (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise KeyError(f"unknown loss {name!r}; known: {sorted(_REGISTRY)}") from None
