"""Registry tests: paper Table 2 contents and grouping."""

import pytest

from repro.workloads import (
    WorkloadCategory,
    WorkloadRegistry,
    default_registry,
    evaluation_workloads,
    get_workload,
    training_workloads,
)
from repro.workloads.microbench import DGEMM

#: Paper Table 2, SPEC ACCEL row.
SPEC_NAMES = {
    "tpacf", "stencil", "lbm", "fft", "spmv", "mriq", "histo", "bfs", "cutcp",
    "kmeans", "lavamd", "cfd", "nw", "hotspot", "lud", "ge", "srad",
    "heartwall", "bplustree",
}
#: Paper Table 2, real-world row.
REAL_NAMES = {"lammps", "namd", "gromacs", "lstm", "bert", "resnet50"}


class TestTable2Contents:
    def test_total_workload_count(self):
        assert len(default_registry()) == 27

    def test_training_set_is_21(self):
        assert len(training_workloads()) == 21

    def test_evaluation_set_is_6(self):
        assert len(evaluation_workloads()) == 6

    def test_spec_accel_names(self):
        reg = default_registry()
        spec = {w.name for w in reg.by_category(WorkloadCategory.SPEC_ACCEL)}
        assert spec == SPEC_NAMES

    def test_microbench_names(self):
        reg = default_registry()
        micro = {w.name for w in reg.by_category(WorkloadCategory.MICROBENCH)}
        assert micro == {"dgemm", "stream"}

    def test_real_app_names(self):
        assert {w.name for w in evaluation_workloads()} == REAL_NAMES

    def test_training_and_evaluation_disjoint(self):
        train = {w.name for w in training_workloads()}
        evaluate = {w.name for w in evaluation_workloads()}
        assert not (train & evaluate)


class TestLookup:
    def test_case_insensitive(self):
        assert get_workload("DGEMM").name == "dgemm"
        assert get_workload("LaMmPs").name == "lammps"

    def test_unknown_raises_with_names(self):
        with pytest.raises(KeyError, match="dgemm"):
            get_workload("does-not-exist")

    def test_contains(self):
        reg = default_registry()
        assert "stream" in reg
        assert "STREAM" in reg
        assert "nope" not in reg


class TestCustomRegistry:
    def test_register_and_get(self):
        reg = WorkloadRegistry()
        reg.register(DGEMM())
        assert reg.get("dgemm").name == "dgemm"

    def test_duplicate_rejected(self):
        reg = WorkloadRegistry()
        reg.register(DGEMM())
        with pytest.raises(ValueError, match="already registered"):
            reg.register(DGEMM())

    def test_overwrite_allowed(self):
        reg = WorkloadRegistry()
        reg.register(DGEMM())
        replacement = DGEMM(repetitions=2)
        reg.register(replacement, overwrite=True)
        assert reg.get("dgemm") is replacement

    def test_names_sorted(self):
        names = default_registry().names()
        assert names == sorted(names)
