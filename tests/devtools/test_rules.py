"""Positive and negative fixtures for every shipped rule.

Each rule gets at least one source fragment that must fire and one that
must stay silent — the registry-level contract the tier-1 gate depends
on.  Fixtures are placed in scope (or out of scope) via the ``module``
argument of :func:`repro.devtools.check_source`.
"""

from __future__ import annotations

import textwrap

from repro.devtools import all_rules, check_source, get_rule, rule_ids


def _check(source: str, module: str, rules: list[str]) -> list:
    return check_source(textwrap.dedent(source), module=module, rules=rules)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_has_at_least_five_rules():
    assert len(rule_ids()) >= 5
    assert {"DET001", "DET002", "THR001", "NUM001", "OBS001"} <= set(rule_ids())


def test_rules_have_metadata():
    for rule in all_rules():
        assert rule.summary
        assert rule.rationale
        assert rule.severity in ("error", "warning")


def test_get_rule_unknown_raises():
    import pytest

    with pytest.raises(KeyError):
        get_rule("ZZZ999")


# ----------------------------------------------------------------------
# DET001 — ambient entropy in seeded packages
# ----------------------------------------------------------------------
def test_det001_flags_module_level_numpy_rng_in_seeded_package():
    findings = _check(
        """
        import numpy as np

        def draw():
            return np.random.rand(3)
        """,
        "repro.gpusim.fixture",
        ["DET001"],
    )
    assert [f.rule_id for f in findings] == ["DET001"]
    assert "numpy.random.rand" in findings[0].message


def test_det001_flags_wall_clock_and_stdlib_random():
    findings = _check(
        """
        import random
        import time

        def stamp():
            return time.time(), random.random()
        """,
        "repro.nn.fixture",
        ["DET001"],
    )
    assert sorted(f.rule_id for f in findings) == ["DET001", "DET001"]


def test_det001_silent_outside_seeded_packages():
    findings = _check(
        """
        import time

        def stamp():
            return time.time()
        """,
        "repro.analysis.fixture",
        ["DET001"],
    )
    assert findings == []


def test_det001_allows_generator_construction_apis():
    findings = _check(
        """
        import numpy as np

        def make(seed):
            return np.random.default_rng(np.random.SeedSequence(seed))
        """,
        "repro.gpusim.fixture",
        ["DET001"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# DET002 — rng threading
# ----------------------------------------------------------------------
def test_det002_flags_zero_arg_default_rng():
    findings = _check(
        """
        import numpy as np

        def fresh():
            return np.random.default_rng()
        """,
        "repro.analysis.fixture",
        ["DET002"],
    )
    assert [f.rule_id for f in findings] == ["DET002"]
    assert "OS entropy" in findings[0].message


def test_det002_flags_reseed_despite_rng_param():
    findings = _check(
        """
        import numpy as np

        def shuffle(data, rng):
            local = np.random.default_rng(1234)
            return local.permutation(data)
        """,
        "repro.analysis.fixture",
        ["DET002"],
    )
    assert [f.rule_id for f in findings] == ["DET002"]
    assert "shuffle" in findings[0].message


def test_det002_allows_child_derivation_and_none_fallback():
    findings = _check(
        """
        import numpy as np

        def child(rng):
            return np.random.default_rng(rng.integers(2**63))

        def fallback(rng=None):
            rng = rng if rng is not None else np.random.default_rng(0)
            return rng

        def fallback_stmt(rng=None):
            if rng is None:
                rng = np.random.default_rng(7)
            return rng
        """,
        "repro.analysis.fixture",
        ["DET002"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# THR001 — lock discipline
# ----------------------------------------------------------------------
_LOCKED_CLASS = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def add(self, item):
            with self._lock:
                self._items.append(item)

        def sneak(self, item):
            {sneak_body}
"""


def test_thr001_flags_unlocked_mutation_of_guarded_attr():
    findings = _check(
        _LOCKED_CLASS.format(sneak_body="self._items.append(item)"),
        "repro.serving.fixture",
        ["THR001"],
    )
    assert [f.rule_id for f in findings] == ["THR001"]
    assert "_items" in findings[0].message


def test_thr001_silent_when_all_mutations_locked():
    findings = _check(
        _LOCKED_CLASS.format(
            sneak_body="with self._lock:\n                self._items.append(item)"
        ),
        "repro.serving.fixture",
        ["THR001"],
    )
    assert findings == []


def test_thr001_init_may_initialise_without_lock():
    # Construction happens before the object is shared; __init__ writes
    # must not count as unlocked mutations.
    findings = _check(
        """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []
                self._items.append(0)

            def add(self, item):
                with self._lock:
                    self._items.append(item)
        """,
        "repro.serving.fixture",
        ["THR001"],
    )
    assert findings == []


def test_thr001_seeded_attrs_guarded_even_if_never_seen_under_lock():
    # repro.obs.metrics Counter._value is in the seeded registry, so an
    # unlocked mutation fires even when no locked mutation exists.
    findings = _check(
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._value = 0.0

            def inc(self, amount=1.0):
                self._value += amount
        """,
        "repro.obs.metrics",
        ["THR001"],
    )
    assert [f.rule_id for f in findings] == ["THR001"]


# ----------------------------------------------------------------------
# NUM001 — float equality
# ----------------------------------------------------------------------
def test_num001_flags_float_equality():
    findings = _check(
        """
        def f(x):
            if x == 1.5:
                return 0
            return 1
        """,
        "repro.core.fixture",
        ["NUM001"],
    )
    assert [f.rule_id for f in findings] == ["NUM001"]


def test_num001_flags_tracked_float_variable():
    findings = _check(
        """
        def f(a, b):
            ratio = a / b
            return ratio != 0.25
        """,
        "repro.core.fixture",
        ["NUM001"],
    )
    assert len(findings) == 1


def test_num001_silent_on_integer_comparison():
    findings = _check(
        """
        def f(items):
            n = len(items)
            if n == 0:
                return None
            return items[0] == "name"
        """,
        "repro.core.fixture",
        ["NUM001"],
    )
    assert findings == []


def test_num001_silent_on_ordered_guard():
    findings = _check(
        """
        def f(x):
            return x <= 0.0
        """,
        "repro.core.fixture",
        ["NUM001"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# OBS001 — observability hygiene
# ----------------------------------------------------------------------
def test_obs001_flags_print_in_library_code():
    findings = _check(
        """
        def report(x):
            print(x)
        """,
        "repro.core.fixture",
        ["OBS001"],
    )
    assert [f.rule_id for f in findings] == ["OBS001"]
    assert findings[0].severity == "warning"


def test_obs001_flags_adhoc_timing_without_obs():
    findings = _check(
        """
        import time

        def timed(fn):
            t0 = time.perf_counter()
            fn()
            return time.perf_counter() - t0
        """,
        "repro.core.fixture",
        ["OBS001"],
    )
    assert len(findings) == 2


def test_obs001_allows_timing_when_module_uses_obs():
    findings = _check(
        """
        import time

        from repro import obs

        def timed(fn):
            t0 = time.perf_counter()
            with obs.span("fixture.timed"):
                fn()
            return time.perf_counter() - t0
        """,
        "repro.core.fixture",
        ["OBS001"],
    )
    assert findings == []


def test_obs001_exempts_cli_and_experiments():
    source = """
        def report(x):
            print(x)
    """
    assert _check(source, "repro.cli", ["OBS001"]) == []
    assert _check(source, "repro.experiments.fixture", ["OBS001"]) == []
