"""Figure 8: normalized predicted vs measured execution time.

One panel per application: execution time across the GA100 clocks,
normalized to the time at the maximum clock, measured vs predicted.
Expected shapes: close overlay for most apps; GROMACS slightly
overpredicted at low clocks and underpredicted at high clocks — the
DVFS-insensitive case the paper calls out in Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import AppEvaluation, EvaluationSuite
from repro.experiments.report import render_series

__all__ = ["Fig8Result", "run_fig8", "render_fig8"]


@dataclass(frozen=True)
class Fig8Result:
    """Per-application normalized time curves and accuracies."""

    evaluations: list[AppEvaluation]

    def normalized(self, app: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(freqs, measured slowdown, predicted slowdown) for one app."""
        for ev in self.evaluations:
            if ev.app == app.lower():
                return (
                    ev.freqs_mhz,
                    ev.time_measured_s / ev.time_measured_s[-1],
                    ev.time_predicted_s / ev.time_predicted_s[-1],
                )
        raise KeyError(f"no evaluation for app {app!r}")


def run_fig8(ctx: ExperimentContext, *, suite: EvaluationSuite | None = None) -> Fig8Result:
    """Evaluate time prediction for all six apps on GA100."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    return Fig8Result(evaluations=suite.evaluate_all("GA100"))


def render_fig8(result: Fig8Result) -> str:
    """Measured vs predicted normalized time series per app."""
    lines = ["Figure 8 - normalized predicted vs measured execution time, GA100"]
    for ev in result.evaluations:
        freqs, meas, pred = result.normalized(ev.app)
        lines.append(render_series(f"{ev.app} measured T/Tmax", freqs, meas))
        lines.append(render_series(f"{ev.app} predicted T/Tmax", freqs, pred))
        lines.append(f"{ev.app}: time accuracy {ev.time_accuracy:.1f}%")
    return "\n".join(lines)
