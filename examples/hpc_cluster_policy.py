"""HPC-center scenario: a per-job frequency-capping policy.

The paper's motivating setting (Section 1) is an HPC center that wants
to cut GPU power with little or no performance impact.  This example
builds that policy: every production code is profiled once at the
default clock, the models predict its whole DVFS profile, and ED2P with
a 5 % performance-degradation threshold picks a per-job clock cap.

The output is the table a site operator would feed to the scheduler
prolog (job class -> application clock), plus the projected fleet-level
energy saving.

Run:  python examples/hpc_cluster_policy.py
"""

from repro.core import ED2P, FrequencySelectionPipeline
from repro.gpusim import GA100, SimulatedGPU
from repro.workloads import evaluation_workloads, training_workloads

#: The site's tolerated slowdown for throughput jobs.
PERF_THRESHOLD = 0.05
#: Assumed share of node-hours per application (toy job mix).
JOB_MIX = {
    "lammps": 0.25,
    "namd": 0.20,
    "gromacs": 0.20,
    "bert": 0.15,
    "resnet50": 0.10,
    "lstm": 0.10,
}


def main() -> None:
    device = SimulatedGPU(GA100, seed=7, max_samples_per_run=8)
    pipeline = FrequencySelectionPipeline(device, seed=1)

    print("training models on the benchmark suite (one-off, offline)...")
    pipeline.fit_offline(training_workloads(), runs_per_config=1)

    print(f"\nPer-job clock policy (ED2P, threshold {100 * PERF_THRESHOLD:.0f}%):")
    print(f"{'job':10s} {'clock cap':>10s} {'energy':>8s} {'slowdown':>9s}")
    weighted_saving = 0.0
    for workload in evaluation_workloads():
        result = pipeline.run_online(workload, objectives=(ED2P,), threshold=PERF_THRESHOLD)
        sel = result.selection("ED2P")
        share = JOB_MIX[workload.name]
        weighted_saving += share * sel.energy_saving
        print(
            f"{workload.name:10s} {sel.freq_mhz:7.0f} MHz "
            f"{100 * sel.energy_saving:7.1f}% {100 * sel.perf_degradation:8.2f}%"
        )

    tdp_fleet = 512 * device.arch.tdp_watts / 1e3  # a 512-GPU partition, kW
    print(f"\nprojected fleet-level energy saving: {100 * weighted_saving:.1f}%")
    print(f"on a 512-GPU partition (~{tdp_fleet:.0f} kW at TDP), that is roughly "
          f"{tdp_fleet * weighted_saving:.0f} kW of sustained draw avoided")

    print(f"mean projected saving across job mix: {100 * weighted_saving / sum(JOB_MIX.values()):.1f}%")


if __name__ == "__main__":
    main()
