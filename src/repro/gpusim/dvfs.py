"""DVFS configuration spaces.

The paper's design space is the set of supported SM application clocks.
Table 1 reports "61 out of 80" usable configurations for GA100 and
"117 out of 167" for GV100; Section 2 explains that clocks below 510 MHz
are excluded because of heavy performance degradation.

This module generates those grids from the architecture description and
provides the snap/validate helpers the frequency-control path needs:
real drivers only accept the discrete supported clocks, so requesting an
arbitrary MHz value must resolve to the nearest supported state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.arch import GPUArchitecture
from repro.units import MHz, MHzArray

__all__ = ["DVFSConfigSpace"]


@dataclass(frozen=True)
class DVFSConfigSpace:
    """The discrete set of SM clocks supported by an architecture.

    Attributes
    ----------
    supported_mhz:
        Every clock the hardware exposes (ascending, MHz).
    usable_mhz:
        The subset the paper's design space uses (>= ``usable_freq_min_mhz``).
    """

    arch: GPUArchitecture
    supported_mhz: tuple[MHz, ...]
    usable_mhz: tuple[MHz, ...]

    @classmethod
    def for_architecture(cls, arch: GPUArchitecture) -> "DVFSConfigSpace":
        """Build the clock grid for ``arch`` from its min/max/step."""
        n_steps = int(round((arch.core_freq_max_mhz - arch.core_freq_min_mhz) / arch.core_freq_step_mhz))
        grid = arch.core_freq_min_mhz + arch.core_freq_step_mhz * np.arange(n_steps + 1)
        # Guard against float drift so the top clock is exactly the max.
        grid[-1] = arch.core_freq_max_mhz
        supported = tuple(float(f) for f in grid)
        usable = tuple(f for f in supported if f >= arch.usable_freq_min_mhz - 1e-9)
        return cls(arch=arch, supported_mhz=supported, usable_mhz=usable)

    def __len__(self) -> int:
        return len(self.usable_mhz)

    @property
    def num_supported(self) -> int:
        """Total number of hardware clock states."""
        return len(self.supported_mhz)

    @property
    def max_mhz(self) -> MHz:
        """The maximum (default/boost) clock."""
        return self.supported_mhz[-1]

    @property
    def min_usable_mhz(self) -> MHz:
        """The lowest clock in the paper's design space."""
        return self.usable_mhz[0]

    def is_supported(self, freq_mhz: MHz, *, tol: float = 1e-6) -> bool:
        """Whether ``freq_mhz`` is exactly a hardware clock state."""
        arr = np.asarray(self.supported_mhz)
        return bool(np.any(np.abs(arr - freq_mhz) <= tol))

    def snap(self, freq_mhz: MHz) -> MHz:
        """Nearest supported clock to ``freq_mhz`` (ties resolve upward).

        Mirrors driver behaviour: any requested application clock is
        clamped into the supported range and rounded to a real state.
        """
        arr = np.asarray(self.supported_mhz)
        idx = int(np.argmin(np.abs(arr - freq_mhz)))
        # Prefer the higher clock on exact ties (conservative for perf).
        if idx + 1 < arr.size and abs(arr[idx + 1] - freq_mhz) == abs(arr[idx] - freq_mhz):
            idx += 1
        return float(arr[idx])

    def usable_array(self) -> MHzArray:
        """Usable clocks as a float ndarray (ascending)."""
        return np.asarray(self.usable_mhz, dtype=float)

    def normalized(self, freq_mhz: MHz | MHzArray) -> np.ndarray | float:
        """Clock expressed as a fraction of the maximum clock."""
        return np.asarray(freq_mhz, dtype=float) / self.max_mhz

    def index_of(self, freq_mhz: MHz) -> int:
        """Index of ``freq_mhz`` within the usable grid.

        Raises :class:`ValueError` if the clock is not a usable state; call
        :meth:`snap` first when handling free-form requests.
        """
        arr = self.usable_array()
        matches = np.nonzero(np.abs(arr - freq_mhz) <= 1e-6)[0]
        if matches.size == 0:
            raise ValueError(f"{freq_mhz} MHz is not a usable clock of {self.arch.name}")
        return int(matches[0])
