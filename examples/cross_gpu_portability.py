"""Cross-architecture portability: train on Ampere, deploy on Volta.

Reproduces the paper's portability claim (abstract / Section 5):
models trained *only* on GA100 data predict GV100 behaviour.  Power
transfers through TDP normalisation (fractions of the training GPU's
envelope rescale onto the target's 250 W); execution time transfers as
the dimensionless slowdown factor.

The script also round-trips the trained networks through ``.npz``
archives — the artefact you would actually ship between machines.

Run:  python examples/cross_gpu_portability.py
"""

import tempfile
from pathlib import Path

from repro.core import FrequencySelectionPipeline, PowerModel, TimeModel, accuracy_percent
from repro.gpusim import GA100, GV100, SimulatedGPU
from repro.workloads import evaluation_workloads, training_workloads


def main() -> None:
    ampere = SimulatedGPU(GA100, seed=3, max_samples_per_run=8)
    volta = SimulatedGPU(GV100, seed=4, max_samples_per_run=8)

    print("== Train on GA100 (TDP-normalised power, relative time) ==")
    trainer = FrequencySelectionPipeline(
        ampere,
        power_model=PowerModel(reference_power_w=GA100.tdp_watts, seed=0),
        time_model=TimeModel(seed=0),
    )
    trainer.fit_offline(training_workloads(), runs_per_config=1)

    with tempfile.TemporaryDirectory() as tmp:
        power_path = trainer.power_model.save(Path(tmp) / "power.npz")
        time_path = trainer.time_model.save(Path(tmp) / "time.npz")
        print(f"shipped weights: {power_path.name}, {time_path.name}")

        # "On the Volta node": load the shipped weights, no retraining.
        power = PowerModel(reference_power_w=GA100.tdp_watts)
        power.load(power_path)
        time = TimeModel()
        time.load(time_path)

    deployed = FrequencySelectionPipeline(volta, power_model=power, time_model=time)

    print("\n== Predict unseen apps on GV100 with the GA100 weights ==")
    print(f"{'app':10s} {'power acc':>9s} {'time acc':>9s} {'ED2P clock':>11s}")
    for workload in evaluation_workloads():
        result = deployed.run_online(workload)
        truth = deployed.measure_sweep(workload)
        freqs, p_meas = truth.mean_curve("power")
        _, t_meas = truth.mean_curve("time")
        p_acc = accuracy_percent(p_meas, result.power_w)
        t_acc = accuracy_percent(t_meas / t_meas[-1], result.time_s / result.time_s[-1])
        sel = result.selection("ED2P")
        print(f"{workload.name:10s} {p_acc:8.1f}% {t_acc:8.1f}% {sel.freq_mhz:8.0f} MHz")

    print("\n(paper: the same transfer achieves >93% accuracy on GV100)")


if __name__ == "__main__":
    main()
