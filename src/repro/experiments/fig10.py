"""Figure 10 + Table 5: energy and time changes at the selected clocks.

For every application and method this evaluates, on the *measured*
curves, the percentage energy saving and execution-time change the
selected clock realises relative to the maximum clock (paper's sign
convention: negative time = performance loss).

Expected shapes: substantial energy savings with small ED2P time losses;
ED2P's average time loss much smaller than EDP's; predicted selections
close to measured ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import AppEvaluation, EvaluationSuite
from repro.experiments.fig9 import METHODS
from repro.experiments.report import render_table

__all__ = ["TradeoffRow", "Fig10Result", "run_fig10", "render_fig10"]


@dataclass(frozen=True)
class TradeoffRow:
    """Energy/time change (%) per method for one application."""

    app: str
    energy_pct: dict[str, float]
    time_pct: dict[str, float]


@dataclass(frozen=True)
class Fig10Result:
    """All rows plus the per-method averages (Table 5's last row)."""

    rows: list[TradeoffRow]

    def average(self, method: str) -> tuple[float, float]:
        """(mean energy %, mean time %) across applications."""
        e = float(np.mean([r.energy_pct[method] for r in self.rows]))
        t = float(np.mean([r.time_pct[method] for r in self.rows]))
        return e, t


def run_fig10(ctx: ExperimentContext, *, suite: EvaluationSuite | None = None) -> Fig10Result:
    """Realised energy/time changes for all apps and methods on GA100."""
    suite = suite if suite is not None else EvaluationSuite(ctx)
    rows = []
    for ev in suite.evaluate_all("GA100"):
        energy: dict[str, float] = {}
        time: dict[str, float] = {}
        for method in METHODS:
            e, t = ev.realised_changes(method)
            energy[method] = e
            time[method] = t
        rows.append(TradeoffRow(app=ev.app, energy_pct=energy, time_pct=time))
    return Fig10Result(rows=rows)


def render_fig10(result: Fig10Result) -> str:
    """Table 5-style energy/time matrix with averages."""
    headers = ["application"]
    headers += [f"E% {m}" for m in METHODS]
    headers += [f"T% {m}" for m in METHODS]
    table_rows = [
        [r.app, *(r.energy_pct[m] for m in METHODS), *(r.time_pct[m] for m in METHODS)]
        for r in result.rows
    ]
    avg_row: list[object] = ["average"]
    avg_row += [result.average(m)[0] for m in METHODS]
    avg_row += [result.average(m)[1] for m in METHODS]
    table_rows.append(avg_row)
    return render_table(
        headers,
        table_rows,
        title="Figure 10 / Table 5 - realised energy & time change vs f_max, GA100 "
        "(positive energy = saving, negative time = slowdown)",
    )
