"""Numeric dataflow analysis: dtypes, shapes, hot-path perf, cache purity.

The serving chain is only trustworthy because float64 flows end to end:
the fused engine's 1e-9 equivalence gate, the golden suites and the LRU
curve cache all assume no silent ``float32`` narrowing, no shape
surprise inside the packed affine recurrence, and no impurity behind a
memoised value.  This module checks those assumptions statically, the
same way :mod:`repro.devtools.units` checks dimensions: an abstract
``(dtype, rank, symbolic dims)`` value is propagated through
assignments, numpy API calls and resolved call edges of the
:class:`~repro.devtools.graph.ProjectIndex`.

Four rule families consume the analysis (see
:mod:`repro.devtools.rules.numeric`):

* **NUM002** — dtype drift: a float64 value in the model/serving/gpusim
  packages is narrowed (``astype(np.float32)``, bare ``int()``
  truncation) or a sub-float64 float array is created in the float64
  pipeline.
* **SHAPE001** — broadcast/matmul dimension mismatch, proven by
  symbolic-dim unification (two *concrete* incompatible dims; symbols
  unify by name and stay silent otherwise).
* **PERF001** — hot-path hygiene inside the *hot set* (call-graph
  descendants of ``SelectionService._flush``/``_flush_traced``,
  ``FusedInferenceEngine.infer`` and the telemetry collection roots):
  ``np.append``, per-element Python loops over ndarrays,
  list-append-then-stack, loop-invariant allocation inside loops.
* **PURE001** — cache-safety purity: every function whose *result*
  feeds the serving curve cache, the fleet admission decision cache or
  an ``@lru_cache`` must be proven free of non-seeded RNG, wall clocks,
  I/O and mutated-global reads.  Purity is value-sensitive: an impure
  source only poisons a function if it taints the *returned* value, so
  ``perf_counter`` spans around a computation do not.

Everything the rules need is computed once per check run and cached on
the index (:func:`get_numeric_analysis`), mirroring
:mod:`repro.devtools.concurrency`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.devtools.context import ModuleContext
from repro.devtools.graph import FunctionInfo, ProjectIndex

__all__ = [
    "ArrayVal",
    "CacheFeed",
    "DTYPES",
    "NumericAnalysis",
    "NumericFinding",
    "broadcast_dims",
    "dtype_table",
    "get_numeric_analysis",
    "promote",
]

# ----------------------------------------------------------------------
# Dtype promotion lattice
# ----------------------------------------------------------------------
#: The closed dtype universe the analysis reasons about.
DTYPES = (
    "bool",
    "int8", "int16", "int32", "int64",
    "uint8", "uint16", "uint32", "uint64",
    "float16", "float32", "float64",
    "complex64", "complex128",
)

#: dtype -> (kind, bits): b(ool), i(nt), u(int), f(loat), c(omplex).
_KIND_BITS: dict[str, tuple[str, int]] = {
    "bool": ("b", 8),
    **{f"int{b}": ("i", b) for b in (8, 16, 32, 64)},
    **{f"uint{b}": ("u", b) for b in (8, 16, 32, 64)},
    **{f"float{b}": ("f", b) for b in (16, 32, 64)},
    "complex64": ("c", 64),
    "complex128": ("c", 128),
}


def _float_bits_needed(dtype: str) -> int:
    """Smallest float width that holds every value of ``dtype`` (numpy rules)."""
    kind, bits = _KIND_BITS[dtype]
    if kind == "f":
        return bits
    if kind == "c":
        return bits // 2
    # bool/int8/uint8 fit float16; int16/uint16 fit float32; wider ints
    # lose precision in anything below float64.
    return {8: 16, 16: 32}.get(bits, 64)


def promote(a: str, b: str) -> str:
    """``np.promote_types`` over the closed universe, in pure Python.

    The hypothesis suite (tests/devtools/test_numeric.py) checks this
    table against numpy exactly, plus associativity/commutativity, so
    the checker never needs numpy at analysis time.
    """
    if a == b:
        return a
    ka, _ = _KIND_BITS[a]
    kb, _ = _KIND_BITS[b]
    if ka == "b":
        return b
    if kb == "b":
        return a
    if ka in "iu" and kb in "iu":
        if ka == kb:
            bits = max(_KIND_BITS[a][1], _KIND_BITS[b][1])
            return f"int{bits}" if ka == "i" else f"uint{bits}"
        signed, unsigned = (a, b) if ka == "i" else (b, a)
        if _KIND_BITS[signed][1] > _KIND_BITS[unsigned][1]:
            return signed
        wider = _KIND_BITS[unsigned][1] * 2
        return f"int{wider}" if wider <= 64 else "float64"
    fbits = max(_float_bits_needed(a), _float_bits_needed(b))
    if "c" in (ka, kb):
        return f"complex{max(64, fbits * 2)}"
    return f"float{fbits}"


#: Weak (python-scalar) pseudo-dtypes — NEP 50: a python float does not
#: promote a float32 array, a python int does not promote anything.
_WEAK_INT = "~int"
_WEAK_FLOAT = "~float"
_WEAK = (_WEAK_INT, _WEAK_FLOAT)


def _combine(a: str | None, b: str | None) -> str | None:
    """Binary-op result dtype, with NEP 50 weak-scalar handling."""
    if a is None or b is None:
        return None
    if a in _WEAK and b in _WEAK:
        return _WEAK_FLOAT if _WEAK_FLOAT in (a, b) else _WEAK_INT
    if a in _WEAK:
        a, b = b, a
    if b == _WEAK_INT:
        return a
    if b == _WEAK_FLOAT:
        kind = _KIND_BITS[a][0]
        return a if kind in "fc" else "float64"
    return promote(a, b)


def _true_divide(dtype: str | None) -> str | None:
    """Result dtype of ``/`` given the promoted operand dtype."""
    if dtype is None:
        return None
    if dtype in _WEAK:
        return _WEAK_FLOAT
    kind = _KIND_BITS[dtype][0]
    return dtype if kind in "fc" else "float64"


def _is_narrow_float(dtype: str | None) -> bool:
    return dtype in ("float16", "float32")


# ----------------------------------------------------------------------
# Shapes: rank + symbolic dims
# ----------------------------------------------------------------------
#: One dimension: a concrete int, a symbol (source text), or unknown.
Dim = object  # int | str | None


@dataclass(frozen=True)
class ArrayVal:
    """Abstract ndarray/scalar value: ``(dtype, rank, symbolic dims)``.

    ``dtype`` is one of :data:`DTYPES`, a weak pseudo-dtype for python
    scalars, or ``None`` (unknown).  ``rank`` is ``ndim`` or ``None``;
    ``dims`` — when known — is a tuple of length ``rank`` of concrete
    ints, symbol strings or ``None``.  Anything unprovable stays
    unknown; unknowns never produce findings.
    """

    dtype: str | None = None
    rank: int | None = None
    dims: tuple | None = None

    def with_dtype(self, dtype: str | None) -> "ArrayVal":
        return ArrayVal(dtype, self.rank, self.dims)

    @property
    def is_array(self) -> bool:
        return self.rank is not None and self.rank >= 1


def _dims_compatible(a: Dim, b: Dim) -> bool:
    """Whether two aligned broadcast dims can coexist (conservative)."""
    if a is None or b is None or a == 1 or b == 1:
        return True
    return a == b  # equal ints, or identical symbols


def broadcast_dims(
    a: "ArrayVal", b: "ArrayVal"
) -> tuple[tuple | None, int | None, tuple[Dim, Dim] | None]:
    """Broadcast two shapes: ``(dims, rank, conflict)``.

    ``conflict`` is the offending ``(dim_a, dim_b)`` pair when both dims
    are concrete, unequal and neither is 1 — the only case the analysis
    is *sure* numpy would raise on.
    """
    if a.rank is None or b.rank is None:
        return None, None, None
    rank = max(a.rank, b.rank)
    if a.dims is None or b.dims is None:
        return None, rank, None
    out: list[Dim] = []
    for i in range(1, rank + 1):
        da = a.dims[-i] if i <= len(a.dims) else 1
        db = b.dims[-i] if i <= len(b.dims) else 1
        if not _dims_compatible(da, db):
            if isinstance(da, int) and isinstance(db, int):
                return None, rank, (da, db)
            out.append(None)
            continue
        if da == 1:
            out.append(db)
        elif db == 1 or da == db:
            out.append(da)
        else:
            out.append(da if db is None else db if da is None else None)
    return tuple(reversed(out)), rank, None


def _matmul_shape(
    a: "ArrayVal", b: "ArrayVal"
) -> tuple[int | None, tuple | None, tuple[Dim, Dim] | None]:
    """Result (rank, dims, inner-dim conflict) of ``a @ b``."""
    if a.rank is None or b.rank is None:
        return None, None, None
    if a.rank < 1 or b.rank < 1:
        return None, None, None
    inner_a = a.dims[-1] if a.dims else None
    inner_b = (b.dims[-2] if b.rank >= 2 else b.dims[-1]) if b.dims else None
    conflict = None
    if (
        isinstance(inner_a, int)
        and isinstance(inner_b, int)
        and inner_a != inner_b
    ):
        conflict = (inner_a, inner_b)
    if a.rank == 1 and b.rank == 1:
        return 0, (), conflict
    if a.rank == 1:
        rank = b.rank - 1
        dims = (*b.dims[:-2], b.dims[-1]) if b.dims else None
        return rank, dims, conflict
    if b.rank == 1:
        rank = a.rank - 1
        dims = a.dims[:-1] if a.dims else None
        return rank, dims, conflict
    rank = max(a.rank, b.rank)
    dims = None
    if a.dims is not None and b.dims is not None and a.rank == 2 and b.rank == 2:
        dims = (a.dims[0], b.dims[1])
    return rank, dims, conflict


# ----------------------------------------------------------------------
# Reading dtype/shape declarations out of expressions
# ----------------------------------------------------------------------
#: ``dtype=`` spellings -> lattice dtype.
_DTYPE_NAMES: dict[str, str] = {
    **{d: d for d in DTYPES},
    "float": "float64", "int": "int64", "bool": "bool", "complex": "complex128",
    "double": "float64", "single": "float32", "half": "float16",
    "intp": "int64", "uintp": "uint64", "longlong": "int64",
    "byte": "int8", "ubyte": "uint8",
}

#: repro.units Annotated ndarray aliases — float64 arrays by contract.
_F64_ARRAY_ALIASES = frozenset(
    {"MHzArray", "WattsArray", "SecondsArray", "JoulesArray",
     "EDPArray", "ED2PArray", "FractionArray"}
)
#: repro.units scalar aliases — float64 scalars by contract.
_F64_SCALAR_ALIASES = frozenset(
    {"MHz", "Watts", "Seconds", "Joules", "EDPScore", "ED2PScore", "Fraction"}
)

#: Packages where a bare ``np.ndarray`` annotation means float64: the
#: paper pipeline's end-to-end dtype contract (NUM002's seed roots).
F64_CONTRACT_PACKAGES = (
    "repro.core", "repro.nn", "repro.serving", "repro.gpusim"
)


def _dtype_of_expr(expr: ast.expr | None, ctx: ModuleContext) -> str | None:
    """Lattice dtype named by a ``dtype=`` argument expression, if any."""
    if expr is None:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return _DTYPE_NAMES.get(expr.value)
    if isinstance(expr, ast.Name):
        if expr.id in ("float", "int", "bool", "complex") and expr.id not in ctx.imports:
            return _DTYPE_NAMES[expr.id]
        return None
    if isinstance(expr, (ast.Attribute,)):
        dotted = ctx.resolve(expr)
        if dotted is not None and dotted.startswith("numpy."):
            return _DTYPE_NAMES.get(dotted.split(".", 1)[1])
        return None
    if isinstance(expr, ast.Call):  # np.dtype("float32")
        dotted = ctx.resolve(expr.func)
        if dotted == "numpy.dtype" and expr.args:
            return _dtype_of_expr(expr.args[0], ctx)
    return None


def _dim_of_expr(expr: ast.expr) -> Dim:
    """One shape entry: concrete int, symbol text, or unknown."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return int(expr.value)
    if isinstance(expr, (ast.Name, ast.Attribute, ast.Call, ast.Subscript)):
        try:
            return ast.unparse(expr)
        except Exception:  # pragma: no cover - unparse is total on valid ASTs
            return None
    return None


def _shape_of_expr(expr: ast.expr | None) -> tuple[int | None, tuple | None]:
    """(rank, dims) declared by a ``shape`` argument expression."""
    if expr is None:
        return None, None
    if isinstance(expr, (ast.Tuple, ast.List)):
        dims = tuple(_dim_of_expr(e) for e in expr.elts)
        return len(dims), dims
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return 1, (int(expr.value),)
    if isinstance(expr, (ast.Name, ast.Attribute, ast.Call, ast.Subscript)):
        # A scalar-valued expression (``np.zeros(n)``) is rank 1; an
        # unknown tuple stays rank-unknown.  Be conservative: symbol.
        return None, None
    return None, None


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


#: numpy constructors: name -> (shape-arg index, default dtype).
_CONSTRUCTORS: dict[str, str] = {
    "numpy.zeros": "float64",
    "numpy.ones": "float64",
    "numpy.empty": "float64",
}
#: *_like constructors propagate the prototype, dtype kwarg overrides.
_LIKE_CONSTRUCTORS = frozenset(
    {"numpy.zeros_like", "numpy.ones_like", "numpy.empty_like", "numpy.full_like"}
)
#: Coercions that keep dtype/shape unless told otherwise.
_COERCIONS = frozenset(
    {"numpy.asarray", "numpy.array", "numpy.ascontiguousarray",
     "numpy.asfortranarray", "numpy.atleast_1d", "numpy.atleast_2d"}
)
#: Float-valued ufuncs: float in -> same float out, int in -> float64.
_FLOAT_UFUNCS = frozenset(
    {"numpy.exp", "numpy.exp2", "numpy.expm1", "numpy.log", "numpy.log2",
     "numpy.log10", "numpy.log1p", "numpy.sqrt", "numpy.cbrt", "numpy.tanh",
     "numpy.sin", "numpy.cos", "numpy.tan", "numpy.arctan", "numpy.arctan2",
     "numpy.sinh", "numpy.cosh", "numpy.reciprocal", "numpy.true_divide",
     "numpy.divide", "numpy.interp", "numpy.hypot"}
)
#: Shape/dtype-preserving elementwise passthroughs.
_PASSTHROUGH_UFUNCS = frozenset(
    {"numpy.abs", "numpy.absolute", "numpy.clip", "numpy.copy", "numpy.sort",
     "numpy.negative", "numpy.positive", "numpy.square", "numpy.round",
     "numpy.rint", "numpy.floor", "numpy.ceil", "numpy.trunc", "numpy.diff",
     "numpy.cumsum", "numpy.nan_to_num", "numpy.ravel"}
)
#: Reductions: dtype-preserving (mean-family promotes ints to float64).
_REDUCTIONS = frozenset(
    {"numpy.sum", "numpy.min", "numpy.max", "numpy.amin", "numpy.amax",
     "numpy.prod", "numpy.ptp", "numpy.nansum", "numpy.nanmin", "numpy.nanmax"}
)
_FLOAT_REDUCTIONS = frozenset(
    {"numpy.mean", "numpy.median", "numpy.std", "numpy.var", "numpy.average",
     "numpy.nanmean", "numpy.nanmedian", "numpy.percentile", "numpy.quantile",
     "numpy.linalg.norm", "numpy.trapz", "numpy.dot"}
)
#: Index producers (always int64 on this platform).
_INT_CALLS = frozenset(
    {"numpy.argmin", "numpy.argmax", "numpy.argsort", "numpy.searchsorted",
     "numpy.count_nonzero", "numpy.lexsort", "numpy.digitize",
     "numpy.ravel_multi_index", "builtins.len", "builtins.int",
     "builtins.round"}
)
#: Joins promote their element dtypes; stack adds an axis.
_JOINS = frozenset(
    {"numpy.concatenate", "numpy.hstack", "numpy.vstack",
     "numpy.column_stack", "numpy.stack", "numpy.append"}
)
#: Elementwise binary numpy calls (promote both operand dtypes).
_BINARY_UFUNCS = frozenset(
    {"numpy.minimum", "numpy.maximum", "numpy.add", "numpy.subtract",
     "numpy.multiply", "numpy.power", "numpy.fmin", "numpy.fmax",
     "numpy.mod", "numpy.remainder"}
)
#: ndarray methods preserving dtype (and, where obvious, shape).
_PASSTHROUGH_METHODS = frozenset(
    {"copy", "reshape", "ravel", "flatten", "squeeze", "clip", "round",
     "take", "transpose", "sum", "min", "max", "cumsum", "sort", "fill",
     "repeat", "view", "item"}
)
#: Rounding wrappers that make a following int() cast exact/intended.
_ROUNDING_CALLS = frozenset(
    {"builtins.round", "numpy.round", "numpy.rint", "numpy.floor",
     "numpy.ceil", "numpy.trunc", "math.floor", "math.ceil", "math.trunc"}
)


# ----------------------------------------------------------------------
# Declared dtypes from annotations and signatures
# ----------------------------------------------------------------------
def annotation_val(ann: ast.expr | None, ctx: ModuleContext) -> ArrayVal | None:
    """Abstract value declared by an annotation expression, if any."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            return annotation_val(ast.parse(ann.value, mode="eval").body, ctx)
        except SyntaxError:
            return None
    if isinstance(ann, (ast.Name, ast.Attribute)):
        dotted = ctx.resolve(ann)
        if dotted is not None and dotted.startswith("repro.units."):
            alias = dotted.rsplit(".", 1)[1]
            if alias in _F64_ARRAY_ALIASES:
                return ArrayVal("float64", rank=1)
            if alias in _F64_SCALAR_ALIASES:
                return ArrayVal("float64", rank=0)
            return None
        if dotted in ("numpy.ndarray", "numpy.typing.NDArray"):
            dtype = "float64" if ctx.in_package(*F64_CONTRACT_PACKAGES) else None
            return ArrayVal(dtype)
        if isinstance(ann, ast.Name) and ann.id not in ctx.imports:
            if ann.id == "float":
                return ArrayVal("float64", rank=0)
            if ann.id == "int":
                return ArrayVal("int64", rank=0)
            if ann.id == "bool":
                return ArrayVal("bool", rank=0)
        return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return annotation_val(ann.left, ctx) or annotation_val(ann.right, ctx)
    if isinstance(ann, ast.Subscript):
        dotted = ctx.resolve(ann.value) or ""
        head = dotted.rsplit(".", 1)[-1] if dotted else (
            ann.value.id if isinstance(ann.value, ast.Name) else ""
        )
        if head == "Optional":
            return annotation_val(ann.slice, ctx)
        if head == "Annotated" and isinstance(ann.slice, ast.Tuple) and ann.slice.elts:
            return annotation_val(ann.slice.elts[0], ctx)
        if dotted == "numpy.typing.NDArray" or head == "NDArray":
            elem = _dtype_of_expr(ann.slice, ctx)
            return ArrayVal(elem)
        return None
    return None


def _param_vals(fn: FunctionInfo, ctx: ModuleContext) -> dict[str, ArrayVal]:
    """Declared abstract values of one function's parameters."""
    out: dict[str, ArrayVal] = {}
    args = fn.node.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        val = annotation_val(a.annotation, ctx)
        if val is not None:
            out[a.arg] = val
    return out


# ----------------------------------------------------------------------
# Per-function abstract interpretation
# ----------------------------------------------------------------------
@dataclass
class NumericFinding:
    """One violation found by the numeric pass (pre-Finding form)."""

    rule: str  # "NUM002" | "SHAPE001" | "PERF001"
    node: ast.AST
    message: str


class _FunctionNumerics:
    """In-order dtype/shape inference over one function body.

    Mirrors ``units._FunctionUnits``: an environment of abstract values
    seeded from parameter annotations, updated through the statement
    walk, consulted by the expression visitor.  NUM002/SHAPE001
    findings are emitted inline; PERF001 runs as a separate lexical
    pass (it needs the *final* environment to type loop subjects).
    """

    def __init__(
        self,
        fn: FunctionInfo,
        ctx: ModuleContext,
        index: ProjectIndex,
        return_vals: dict[str, ArrayVal],
    ) -> None:
        self.fn = fn
        self.ctx = ctx
        self.index = index
        self.return_vals = return_vals
        self.findings: list[NumericFinding] = []
        self.env: dict[str, ArrayVal] = dict(_param_vals(fn, ctx))
        self.tscope = index._scope_for(fn, ctx)
        self.returned: list[ArrayVal | None] = []
        self._f64_contract = ctx.in_package(*F64_CONTRACT_PACKAGES)
        self._emit = True

    # -- expression inference -------------------------------------------
    def infer(self, expr: ast.expr) -> ArrayVal | None:
        if isinstance(expr, ast.Constant):
            v = expr.value
            if isinstance(v, bool):
                return ArrayVal("bool", rank=0)
            if isinstance(v, int):
                return ArrayVal(_WEAK_INT, rank=0)
            if isinstance(v, float):
                return ArrayVal(_WEAK_FLOAT, rank=0)
            if isinstance(v, complex):
                return ArrayVal("complex128", rank=0)
            return None
        if isinstance(expr, ast.Name):
            return self._name_val(expr)
        if isinstance(expr, ast.Attribute):
            return self._attribute_val(expr)
        if isinstance(expr, ast.Subscript):
            return self._subscript_val(expr)
        if isinstance(expr, ast.UnaryOp):
            if isinstance(expr.op, ast.Not):
                self.infer(expr.operand)
                return ArrayVal("bool", rank=0)
            return self.infer(expr.operand)
        if isinstance(expr, ast.BinOp):
            return self._binop_val(expr)
        if isinstance(expr, ast.Compare):
            left = self.infer(expr.left)
            rank = left.rank if left is not None else None
            for comparator in expr.comparators:
                right = self.infer(comparator)
                if rank in (0, None) and right is not None:
                    rank = right.rank
            return ArrayVal("bool", rank=rank)
        if isinstance(expr, ast.Call):
            return self._call_val(expr)
        if isinstance(expr, ast.IfExp):
            self.infer(expr.test)
            body = self.infer(expr.body)
            orelse = self.infer(expr.orelse)
            return body if body == orelse else None
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            for elt in expr.elts:
                self.infer(elt)
            return None
        return None

    def _name_val(self, expr: ast.Name) -> ArrayVal | None:
        if expr.id in self.env:
            return self.env[expr.id]
        return self._contract_fallback(expr)

    def _attribute_val(self, expr: ast.Attribute) -> ArrayVal | None:
        btype = self.index.value_type(expr.value, self.tscope, self.ctx)
        if btype is not None and btype[0] == "class":
            prop = self.index.lookup_method(btype[1], expr.attr)
            if prop is not None and prop.is_property:
                owner_ctx = self.index.modules.get(prop.module, self.ctx)
                val = annotation_val(prop.returns, owner_ctx)
                if val is not None:
                    return val
                return self.return_vals.get(prop.qualname)
            cinfo = self.index.classes.get(btype[1])
            if cinfo is not None and expr.attr in cinfo.attr_annotations:
                owner_ctx = self.index.modules.get(cinfo.module, self.ctx)
                val = annotation_val(cinfo.attr_annotations[expr.attr], owner_ctx)
                if val is not None:
                    return val
        if expr.attr == "T":
            base = self.infer(expr.value)
            if base is not None and base.is_array:
                dims = tuple(reversed(base.dims)) if base.dims else None
                return ArrayVal(base.dtype, base.rank, dims)
        if expr.attr in ("shape", "strides"):
            return None
        if expr.attr in ("size", "ndim", "itemsize", "nbytes"):
            return ArrayVal("int64", rank=0)
        return self._contract_fallback(expr)

    def _contract_fallback(self, expr: ast.expr) -> ArrayVal | None:
        """ndarray-typed (per the index) values in contract packages are f64."""
        if not self._f64_contract:
            return None
        typ = self.index.value_type(expr, self.tscope, self.ctx)
        if typ is not None and typ[0] == "external" and typ[1] in (
            "numpy.ndarray", "numpy.typing.NDArray"
        ):
            return ArrayVal("float64")
        return None

    def _subscript_val(self, expr: ast.Subscript) -> ArrayVal | None:
        base = self.infer(expr.value)
        if base is None or base.rank is None:
            return base.with_dtype(base.dtype) if base is not None else None

        def is_scalar_index(e: ast.expr) -> bool:
            return not isinstance(e, (ast.Slice,)) and not (
                isinstance(e, ast.Constant) and e.value is Ellipsis
            )

        if isinstance(expr.slice, ast.Tuple):
            dropped = sum(1 for e in expr.slice.elts if is_scalar_index(e))
        else:
            dropped = 1 if is_scalar_index(expr.slice) else 0
        # A scalar index may itself be an array (fancy indexing) — in
        # that case the rank does not drop; stay rank-unknown then.
        idx_val = (
            self.infer(expr.slice)
            if not isinstance(expr.slice, (ast.Slice, ast.Tuple))
            else None
        )
        if idx_val is not None and idx_val.is_array:
            return ArrayVal(base.dtype, idx_val.rank)
        rank = max(base.rank - dropped, 0)
        dims = None
        if base.dims is not None and dropped and not isinstance(expr.slice, ast.Tuple):
            dims = base.dims[1:]
        elif base.dims is not None and not dropped:
            dims = None  # slicing changes extents; keep rank only
        return ArrayVal(base.dtype, rank, dims)

    def _binop_val(self, expr: ast.BinOp) -> ArrayVal | None:
        left = self.infer(expr.left)
        right = self.infer(expr.right)
        if isinstance(expr.op, ast.MatMult):
            return self._matmul_val(expr, left, right)
        if left is None or right is None:
            return None
        # Non-numeric operand dtypes (str %, list +) stay unknown.
        dtype = _combine(left.dtype, right.dtype)
        if isinstance(expr.op, ast.Div):
            dtype = _true_divide(dtype)
        elif isinstance(expr.op, ast.FloorDiv):
            if dtype is not None and dtype not in _WEAK and _KIND_BITS[dtype][0] in "fc":
                pass  # float floor-div stays float
        dims, rank, conflict = broadcast_dims(left, right)
        if conflict is not None and self._emit:
            self.findings.append(
                NumericFinding(
                    "SHAPE001",
                    expr,
                    f"broadcast mismatch: dimensions {conflict[0]} and {conflict[1]} "
                    "are incompatible (neither is 1)",
                )
            )
            return None
        if left.rank == 0 and right.rank == 0:
            rank = 0
            dims = ()
        return ArrayVal(dtype, rank, dims)

    def _matmul_val(
        self, expr: ast.BinOp, left: ArrayVal | None, right: ArrayVal | None
    ) -> ArrayVal | None:
        if left is None or right is None:
            return None
        rank, dims, conflict = _matmul_shape(left, right)
        if conflict is not None and self._emit:
            self.findings.append(
                NumericFinding(
                    "SHAPE001",
                    expr,
                    f"matmul inner dimensions differ: {conflict[0]} vs {conflict[1]}",
                )
            )
            return None
        return ArrayVal(_combine(left.dtype, right.dtype), rank, dims)

    # -- calls -----------------------------------------------------------
    _BUILTIN_DISPATCH = frozenset(
        {"int", "round", "float", "abs", "max", "min", "sum", "len"}
    )

    def _call_val(self, expr: ast.Call) -> ArrayVal | None:
        for arg in expr.args:
            self.infer(arg)
        for kw in expr.keywords:
            self.infer(kw.value)
        dotted = self.ctx.resolve(expr.func)
        if (
            dotted is None
            and isinstance(expr.func, ast.Name)
            and expr.func.id in self._BUILTIN_DISPATCH
            and expr.func.id not in self.ctx.imports
        ):
            dotted = f"builtins.{expr.func.id}"
        if dotted is not None:
            val = self._numpy_call_val(expr, dotted)
            if val is not None:
                return val
        if isinstance(expr.func, ast.Attribute):
            val = self._method_call_val(expr)
            if val is not None:
                return val
        site = self.index.classify_call(
            expr, self.tscope, self.ctx, caller=self.fn.qualname
        )
        if site.kind == "resolved" and site.target is not None:
            callee = self.index.functions.get(site.target)
            if callee is not None and callee.name != "__init__":
                owner_ctx = self.index.modules.get(callee.module, self.ctx)
                declared = annotation_val(callee.returns, owner_ctx)
                if declared is not None:
                    return declared
                return self.return_vals.get(site.target)
        return None

    def _numpy_call_val(self, expr: ast.Call, dotted: str) -> ArrayVal | None:
        arg0 = expr.args[0] if expr.args else None
        kw_dtype = _dtype_of_expr(_keyword(expr, "dtype"), self.ctx)
        if dotted in _CONSTRUCTORS:
            dtype = kw_dtype
            if dtype is None and len(expr.args) >= 2:
                dtype = _dtype_of_expr(expr.args[1], self.ctx)
            if dtype is None:
                dtype = _CONSTRUCTORS[dotted]
            self._check_constructed_dtype(expr, dotted, dtype)
            rank, dims = _shape_of_expr(arg0)
            if rank is None and isinstance(arg0, (ast.Name, ast.Attribute, ast.Call)):
                rank, dims = 1, (_dim_of_expr(arg0),)
            return ArrayVal(dtype, rank, dims)
        if dotted == "numpy.full":
            fill = self.infer(expr.args[1]) if len(expr.args) >= 2 else None
            dtype = kw_dtype
            if dtype is None and fill is not None:
                dtype = {_WEAK_INT: "int64", _WEAK_FLOAT: "float64"}.get(
                    fill.dtype, fill.dtype
                )
            self._check_constructed_dtype(expr, dotted, dtype)
            rank, dims = _shape_of_expr(arg0)
            return ArrayVal(dtype, rank, dims)
        if dotted in _LIKE_CONSTRUCTORS:
            proto = self.infer(arg0) if arg0 is not None else None
            dtype = kw_dtype or (proto.dtype if proto is not None else None)
            self._check_constructed_dtype(expr, dotted, dtype)
            if proto is not None:
                return ArrayVal(dtype, proto.rank, proto.dims)
            return ArrayVal(dtype)
        if dotted in _COERCIONS:
            inner = self.infer(arg0) if arg0 is not None else None
            dtype = kw_dtype
            if dtype is None and inner is not None:
                dtype = inner.dtype
                if dtype == _WEAK_INT:
                    dtype = "int64"
                elif dtype == _WEAK_FLOAT:
                    dtype = "float64"
            if kw_dtype is not None:
                self._check_narrowing_cast(expr, inner, kw_dtype, f"{dotted.split('.')[-1]}(dtype=...)")
                self._check_constructed_dtype(expr, dotted, kw_dtype)
            if isinstance(arg0, (ast.List, ast.Tuple)):
                elems = [self.infer(e) for e in arg0.elts]
                rank = 1
                edt: str | None = None
                for ev in elems:
                    if ev is None:
                        edt = None
                        break
                    edt = ev.dtype if edt is None else _combine(edt, ev.dtype)
                    if ev.is_array:
                        rank = (ev.rank or 0) + 1
                if dtype is None and edt is not None:
                    dtype = "int64" if edt == _WEAK_INT else "float64" if edt == _WEAK_FLOAT else edt
                return ArrayVal(dtype, rank if elems else 1, (len(elems),) if rank == 1 else None)
            if inner is not None:
                rank = inner.rank
                if dotted == "numpy.atleast_1d" and rank == 0:
                    rank = 1
                if dotted == "numpy.atleast_2d" and rank is not None and rank < 2:
                    rank = 2
                return ArrayVal(dtype, rank, inner.dims if rank == inner.rank else None)
            return ArrayVal(dtype)
        if dotted == "numpy.arange":
            any_float = any(
                (v := self.infer(a)) is not None and v.dtype in (_WEAK_FLOAT, "float64", "float32", "float16")
                for a in expr.args
            )
            return ArrayVal(kw_dtype or ("float64" if any_float else "int64"), 1)
        if dotted in ("numpy.linspace", "numpy.logspace", "numpy.geomspace"):
            return ArrayVal(kw_dtype or "float64", 1)
        if dotted in ("numpy.eye", "numpy.identity"):
            return ArrayVal(kw_dtype or "float64", 2)
        if dotted in _FLOAT_UFUNCS:
            inner = self.infer(arg0) if arg0 is not None else None
            if inner is None:
                return ArrayVal("float64")
            dtype = inner.dtype
            if dtype is None:
                dtype = None
            elif dtype in _WEAK or _KIND_BITS[dtype][0] in "biu":
                dtype = "float64"
            return ArrayVal(dtype, inner.rank, inner.dims)
        if dotted in _PASSTHROUGH_UFUNCS:
            inner = self.infer(arg0) if arg0 is not None else None
            return inner
        if dotted in _REDUCTIONS:
            inner = self.infer(arg0) if arg0 is not None else None
            if inner is None:
                return None
            axis = _keyword(expr, "axis")
            rank = 0 if axis is None and len(expr.args) < 2 else None
            return ArrayVal(inner.dtype, rank)
        if dotted in _FLOAT_REDUCTIONS:
            inner = self.infer(arg0) if arg0 is not None else None
            dtype = "float64"
            if inner is not None and inner.dtype is not None and inner.dtype not in _WEAK:
                dtype = inner.dtype if _KIND_BITS[inner.dtype][0] in "fc" else "float64"
            axis = _keyword(expr, "axis")
            rank = 0 if axis is None and len(expr.args) < 2 else None
            return ArrayVal(dtype, rank)
        if dotted in _INT_CALLS:
            if dotted in ("builtins.int", "builtins.round"):
                self._check_int_truncation(expr)
                return ArrayVal("int64", rank=0)
            inner = self.infer(arg0) if arg0 is not None else None
            axis = _keyword(expr, "axis")
            rank = None
            if dotted in ("numpy.argmin", "numpy.argmax", "numpy.count_nonzero"):
                rank = 0 if axis is None else None
            elif inner is not None:
                rank = inner.rank
            return ArrayVal("int64", rank)
        if dotted in _JOINS:
            return self._join_val(expr, dotted, arg0)
        if dotted in _BINARY_UFUNCS:
            if len(expr.args) >= 2:
                left = self.infer(expr.args[0])
                right = self.infer(expr.args[1])
                if left is not None and right is not None:
                    dims, rank, conflict = broadcast_dims(left, right)
                    if conflict is not None and self._emit:
                        self.findings.append(
                            NumericFinding(
                                "SHAPE001",
                                expr,
                                f"broadcast mismatch in {dotted.split('.')[-1]}: "
                                f"dimensions {conflict[0]} and {conflict[1]} are incompatible",
                            )
                        )
                        return None
                    return ArrayVal(_combine(left.dtype, right.dtype), rank, dims)
            return None
        if dotted in ("numpy.matmul", "numpy.dot"):
            if len(expr.args) >= 2:
                return self._matmul_call_val(expr)
            return None
        if dotted == "numpy.einsum":
            dtype: str | None = None
            for a in expr.args[1:]:
                v = self.infer(a)
                if v is None or v.dtype is None:
                    dtype = None
                    break
                dtype = v.dtype if dtype is None else _combine(dtype, v.dtype)
            return ArrayVal(dtype)
        if dotted == "numpy.where":
            if len(expr.args) >= 3:
                a = self.infer(expr.args[1])
                b = self.infer(expr.args[2])
                if a is not None and b is not None:
                    return ArrayVal(_combine(a.dtype, b.dtype))
            return None
        if dotted.startswith("numpy.float"):
            suffix = dotted[len("numpy."):]
            if suffix in _DTYPE_NAMES:
                target = _DTYPE_NAMES[suffix]
                inner = self.infer(arg0) if arg0 is not None else None
                self._check_narrowing_cast(expr, inner, target, f"np.{suffix}()")
                return ArrayVal(target, rank=0)
        if dotted.startswith(("numpy.int", "numpy.uint", "numpy.bool", "numpy.complex")):
            suffix = dotted[len("numpy."):]
            if suffix in _DTYPE_NAMES:
                return ArrayVal(_DTYPE_NAMES[suffix], rank=0)
        if dotted == "builtins.float":
            inner = self.infer(arg0) if arg0 is not None else None
            rank = 0
            return ArrayVal("float64", rank)
        if dotted in ("builtins.abs", "builtins.max", "builtins.min", "builtins.sum"):
            inner = self.infer(arg0) if arg0 is not None else None
            return inner
        if dotted == "builtins.len":
            return ArrayVal("int64", rank=0)
        return None

    def _matmul_call_val(self, expr: ast.Call) -> ArrayVal | None:
        left = self.infer(expr.args[0])
        right = self.infer(expr.args[1])
        if left is None or right is None:
            return None
        rank, dims, conflict = _matmul_shape(left, right)
        if conflict is not None and self._emit:
            self.findings.append(
                NumericFinding(
                    "SHAPE001",
                    expr,
                    f"matmul inner dimensions differ: {conflict[0]} vs {conflict[1]}",
                )
            )
            return None
        return ArrayVal(_combine(left.dtype, right.dtype), rank, dims)

    def _join_val(self, expr: ast.Call, dotted: str, arg0: ast.expr | None) -> ArrayVal | None:
        elems: list[ArrayVal | None] = []
        if isinstance(arg0, (ast.List, ast.Tuple)):
            elems = [self.infer(e) for e in arg0.elts]
        elif arg0 is not None:
            elems = [self.infer(arg0)]
        if dotted == "numpy.append" and len(expr.args) >= 2:
            elems.append(self.infer(expr.args[1]))
        dtype: str | None = None
        rank: int | None = None
        for ev in elems:
            if ev is None:
                return None
            dtype = ev.dtype if dtype is None else _combine(dtype, ev.dtype)
            if ev.rank is not None:
                rank = ev.rank if rank is None else max(rank, ev.rank)
        if dtype == _WEAK_INT:
            dtype = "int64"
        elif dtype == _WEAK_FLOAT:
            dtype = "float64"
        if dotted == "numpy.stack" and rank is not None:
            rank += 1
        if dotted == "numpy.column_stack":
            rank = 2
        return ArrayVal(dtype, rank)

    def _method_call_val(self, expr: ast.Call) -> ArrayVal | None:
        assert isinstance(expr.func, ast.Attribute)
        recv = expr.func.value
        name = expr.func.attr
        if name == "astype":
            base = self.infer(recv)
            target = _dtype_of_expr(
                expr.args[0] if expr.args else _keyword(expr, "dtype"), self.ctx
            )
            self._check_narrowing_cast(expr, base, target, "astype()")
            if base is not None:
                return ArrayVal(target or base.dtype, base.rank, base.dims)
            return ArrayVal(target) if target is not None else None
        if name in _PASSTHROUGH_METHODS:
            base = self.infer(recv)
            if base is None:
                return None
            if name in ("sum", "min", "max"):
                has_axis = bool(expr.args) or _keyword(expr, "axis") is not None
                return ArrayVal(base.dtype, None if has_axis else 0)
            if name == "mean":
                dtype = base.dtype
                if dtype is not None and dtype not in _WEAK and _KIND_BITS[dtype][0] in "biu":
                    dtype = "float64"
                has_axis = bool(expr.args) or _keyword(expr, "axis") is not None
                return ArrayVal(dtype, None if has_axis else 0)
            if name == "item":
                return ArrayVal(base.dtype, 0)
            if name == "reshape":
                shape_arg: ast.expr | None
                if len(expr.args) == 1:
                    shape_arg = expr.args[0]
                elif expr.args:
                    shape_arg = ast.Tuple(elts=list(expr.args), ctx=ast.Load())
                else:
                    shape_arg = _keyword(expr, "shape")
                rank, dims = _shape_of_expr(shape_arg)
                return ArrayVal(base.dtype, rank, dims)
            if name in ("ravel", "flatten"):
                return ArrayVal(base.dtype, 1)
            return base
        if name == "mean":
            base = self.infer(recv)
            if base is None:
                return None
            dtype = base.dtype
            if dtype is not None and dtype not in _WEAK and _KIND_BITS[dtype][0] in "biu":
                dtype = "float64"
            return ArrayVal(dtype)
        return None

    # -- NUM002 checks ---------------------------------------------------
    def _check_constructed_dtype(self, expr: ast.Call, dotted: str, dtype: str | None) -> None:
        """Sub-float64 float array created inside the float64 pipeline."""
        if not (self._emit and self._f64_contract):
            return
        if _is_narrow_float(dtype):
            self.findings.append(
                NumericFinding(
                    "NUM002",
                    expr,
                    f"{dotted.split('.')[-1]}(dtype={dtype}) creates a sub-float64 "
                    "array in the float64 pipeline — the 1e-9 equivalence gate and "
                    "the golden suites assume float64 end to end",
                )
            )

    def _check_narrowing_cast(
        self, expr: ast.Call, base: ArrayVal | None, target: str | None, what: str
    ) -> None:
        """float64 value narrowed to a lower-precision float."""
        if not (self._emit and self._f64_contract):
            return
        if base is None or base.dtype != "float64":
            return
        if _is_narrow_float(target):
            self.findings.append(
                NumericFinding(
                    "NUM002",
                    expr,
                    f"{what} narrows a float64 value to {target} on a hot-path "
                    "dtype contract — keep float64 or justify the cast",
                )
            )

    def _check_int_truncation(self, expr: ast.Call) -> None:
        """Bare ``int()`` on a provably-float64 value truncates, not rounds."""
        if not (self._emit and self._f64_contract):
            return
        dotted = self.ctx.resolve(expr.func)
        if dotted != "builtins.int" and not (
            isinstance(expr.func, ast.Name)
            and expr.func.id == "int"
            and "int" not in self.ctx.imports
        ):
            return
        if not expr.args:
            return
        inner = expr.args[0]
        # int(round(x)) / int(np.floor(x)) is an intended rounding; only
        # bare truncation of a float64 value drifts.
        if isinstance(inner, ast.Call):
            inner_dotted = self.ctx.resolve(inner.func)
            if inner_dotted in _ROUNDING_CALLS:
                return
            if (
                isinstance(inner.func, ast.Name)
                and inner.func.id == "round"
                and "round" not in self.ctx.imports
            ):
                return
        val = self.infer(inner)
        if val is not None and val.dtype == "float64":
            self.findings.append(
                NumericFinding(
                    "NUM002",
                    expr,
                    "bare int() truncates a float64 value toward zero — use "
                    "int(round(...)) (or floor/ceil) to make the rounding explicit",
                )
            )

    # -- statement walk --------------------------------------------------
    def run(self) -> list[NumericFinding]:
        for stmt in self.fn.node.body:
            self._stmt(stmt)
        return self.findings

    def return_val(self) -> ArrayVal | None:
        """Join of every return expression's abstract value."""
        vals = [v for v in self.returned if v is not None]
        if not vals or len(vals) != len(self.returned):
            return None
        out = vals[0]
        for v in vals[1:]:
            dtype = out.dtype if out.dtype == v.dtype else None
            rank = out.rank if out.rank == v.rank else None
            dims = out.dims if out.dims == v.dims else None
            out = ArrayVal(dtype, rank, dims)
        return out if out != ArrayVal() else None

    def _bind(self, target: ast.expr, val: ArrayVal | None) -> None:
        if isinstance(target, ast.Name):
            if val is not None:
                self.env[target.id] = val
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            val = self.infer(stmt.value)
            typ = self.index.value_type(stmt.value, self.tscope, self.ctx)
            for target in stmt.targets:
                self._bind(target, val)
                if isinstance(target, ast.Name) and typ is not None:
                    self.tscope[target.id] = typ
                if isinstance(target, ast.Subscript):
                    self.infer(target.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            declared = annotation_val(stmt.annotation, self.ctx)
            val = self.infer(stmt.value) if stmt.value is not None else None
            if isinstance(stmt.target, ast.Name):
                self._bind(stmt.target, declared or val)
            return
        if isinstance(stmt, ast.AugAssign):
            val = self.infer(stmt.value)
            if isinstance(stmt.target, ast.Name):
                cur = self.env.get(stmt.target.id)
                if cur is not None and val is not None:
                    dtype = _combine(cur.dtype, val.dtype)
                    if isinstance(stmt.op, ast.Div):
                        dtype = _true_divide(dtype)
                    self.env[stmt.target.id] = ArrayVal(dtype, cur.rank, cur.dims)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returned.append(self.infer(stmt.value))
            else:
                self.returned.append(None)
            return
        if isinstance(stmt, ast.For):
            iter_val = self.infer(stmt.iter)
            if (
                isinstance(stmt.target, ast.Name)
                and iter_val is not None
                and iter_val.rank != 0
            ):
                # rank None (unknown) stays unknown; a known rank drops one.
                self._bind(
                    stmt.target,
                    ArrayVal(
                        iter_val.dtype,
                        None if iter_val.rank is None else iter_val.rank - 1,
                        iter_val.dims[1:] if iter_val.dims else None,
                    ),
                )
            else:
                self._bind(stmt.target, None)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self.infer(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.infer(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None)
            for sub in stmt.body:
                self._stmt(sub)
            return
        if isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self._stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub)
            return
        if isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self.infer(child)


# ----------------------------------------------------------------------
# Hot set: call-graph descendants of the serving/telemetry roots
# ----------------------------------------------------------------------
#: (owner class or None, function name) patterns anchoring the hot set.
#: Matched against the tail of each indexed qualname so fixtures can
#: declare their own ``FusedInferenceEngine.infer``.
HOT_ROOT_PATTERNS: tuple[tuple[str | None, str], ...] = (
    ("SelectionService", "_flush"),
    ("SelectionService", "_flush_traced"),
    ("SelectionService", "flush"),
    ("FusedInferenceEngine", "infer"),
    ("Launcher", "collect"),
    ("Launcher", "collect_at_max"),
    (None, "run_campaign"),
)


def _hot_roots(index: ProjectIndex) -> set[str]:
    roots: set[str] = set()
    for qualname, fn in index.functions.items():
        for owner, name in HOT_ROOT_PATTERNS:
            if fn.name != name:
                continue
            if owner is None:
                if fn.class_qualname is None:
                    roots.add(qualname)
            elif fn.class_qualname is not None and fn.class_qualname.rsplit(".", 1)[-1] == owner:
                roots.add(qualname)
    return roots


def _descendants(index: ProjectIndex, roots: set[str]) -> set[str]:
    """Transitive closure of ``roots`` over resolved call edges."""
    by_caller: dict[str, set[str]] = {}
    for site in index.call_graph().edges:
        if site.target is not None:
            by_caller.setdefault(site.caller, set()).add(site.target)
    seen = set(roots)
    frontier = list(roots)
    while frontier:
        qual = frontier.pop()
        for target in by_caller.get(qual, ()):
            if target not in seen and target in index.functions:
                seen.add(target)
                frontier.append(target)
    return seen


# ----------------------------------------------------------------------
# PERF001: hot-path hygiene (lexical pass, typed by the interpreter env)
# ----------------------------------------------------------------------
_ALLOC_CALLS = frozenset(
    {"numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full",
     "numpy.zeros_like", "numpy.ones_like", "numpy.empty_like", "numpy.full_like"}
)
_STACK_CALLS = frozenset(
    {"numpy.stack", "numpy.vstack", "numpy.hstack", "numpy.concatenate",
     "numpy.column_stack", "numpy.array", "numpy.asarray"}
)


def _loop_bound_names(loop: ast.For) -> set[str]:
    """Names bound by the loop target or assigned inside its body."""
    names: set[str] = set()
    for sub in ast.walk(loop.target):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
    for stmt in loop.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for t in targets:
                    for n in ast.walk(t):
                        if isinstance(n, ast.Name):
                            names.add(n.id)
            elif isinstance(sub, ast.For):
                for n in ast.walk(sub.target):
                    if isinstance(n, ast.Name):
                        names.add(n.id)
            elif isinstance(sub, ast.comprehension):
                for n in ast.walk(sub.target):
                    if isinstance(n, ast.Name):
                        names.add(n.id)
    return names


class _HotPathScan:
    """PERF001 patterns over one hot function (post-inference env)."""

    def __init__(self, interp: _FunctionNumerics, hot_via: str) -> None:
        self.interp = interp
        self.ctx = interp.ctx
        self.hot_via = hot_via
        self.findings: list[NumericFinding] = []

    def _is_arrayish(self, name: str) -> bool:
        val = self.interp.env.get(name)
        return val is not None and (val.is_array or val.rank is None and val.dtype is not None)

    def run(self) -> list[NumericFinding]:
        fn = self.interp.fn.node
        suffix = f" (hot via {self.hot_via})"
        # np.append anywhere in a hot function is O(n) per element.
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and self.ctx.resolve(node.func) == "numpy.append":
                self.findings.append(
                    NumericFinding(
                        "PERF001",
                        node,
                        "np.append reallocates the whole array per call — gather into "
                        "a list and stack once, or preallocate" + suffix,
                    )
                )
        list_lits = {
            t.id
            for stmt in ast.walk(fn)
            if isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.List)
            and not stmt.value.elts
            for t in stmt.targets
            if isinstance(t, ast.Name)
        }
        stacked = self._stacked_lists(fn)
        for loop in (n for n in ast.walk(fn) if isinstance(n, ast.For)):
            self._check_per_element(loop, suffix)
            self._check_append_then_stack(loop, list_lits & stacked, suffix)
            self._check_loop_invariant_alloc(loop, suffix)
        return self.findings

    def _stacked_lists(self, fn: ast.AST) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and self.ctx.resolve(node.func) in _STACK_CALLS
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                out.add(node.args[0].id)
        return out

    def _check_per_element(self, loop: ast.For, suffix: str) -> None:
        """``for i in range(n): ... arr[i] ...`` doing per-element arithmetic."""
        if not (
            isinstance(loop.iter, ast.Call)
            and isinstance(loop.iter.func, ast.Name)
            and loop.iter.func.id == "range"
            and isinstance(loop.target, ast.Name)
        ):
            return
        ivar = loop.target.id

        def is_indexed_array(sub: ast.Subscript) -> bool:
            # Only a *scalar* index by the loop var counts — ``z[s:s+f]``
            # slice stores are blocked/chunked operations, not per-element.
            index = sub.slice
            if isinstance(index, ast.Tuple):
                scalar = any(
                    isinstance(e, ast.Name) and e.id == ivar for e in index.elts
                )
            else:
                scalar = isinstance(index, ast.Name) and index.id == ivar
            return (
                scalar
                and isinstance(sub.value, ast.Name)
                and self._is_arrayish(sub.value.id)
            )

        for stmt in loop.body:
            for node in ast.walk(stmt):
                # Store: out[i] = ...   Load in arithmetic: ... + a[i]
                if isinstance(node, ast.Assign):
                    for t in node.targets:
                        if isinstance(t, ast.Subscript) and is_indexed_array(t):
                            self.findings.append(
                                NumericFinding(
                                    "PERF001",
                                    node,
                                    "Python per-element loop writes one array slot per "
                                    "iteration — vectorise over the whole axis" + suffix,
                                )
                            )
                            return
                if isinstance(node, ast.BinOp):
                    for side in (node.left, node.right):
                        if isinstance(side, ast.Subscript) and is_indexed_array(side):
                            self.findings.append(
                                NumericFinding(
                                    "PERF001",
                                    node,
                                    "Python per-element loop does scalar arithmetic on "
                                    "one array element per iteration — vectorise" + suffix,
                                )
                            )
                            return

    def _check_append_then_stack(self, loop: ast.For, candidates: set[str], suffix: str) -> None:
        """ndarray values appended in a loop, stacked afterwards."""
        if not candidates:
            return
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "append"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in candidates
                    and node.args
                ):
                    continue
                val = self.interp.infer(node.args[0])
                # The list is provably stacked later, so anything with a
                # known dtype that is not a provable scalar is a row gather.
                if val is not None and val.rank != 0 and val.dtype is not None:
                    self.findings.append(
                        NumericFinding(
                            "PERF001",
                            node,
                            f"list '{node.func.value.id}' collects ndarray rows in a "
                            "Python loop and is stacked later — compute the whole "
                            "block vectorised instead" + suffix,
                        )
                    )
                    return

    def _check_loop_invariant_alloc(self, loop: ast.For, suffix: str) -> None:
        bound = _loop_bound_names(loop)
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if not (
                    isinstance(node, ast.Call)
                    and self.ctx.resolve(node.func) in _ALLOC_CALLS
                ):
                    continue
                mentions_bound = any(
                    isinstance(n, ast.Name) and n.id in bound
                    for arg in list(node.args) + [kw.value for kw in node.keywords]
                    for n in ast.walk(arg)
                )
                if not mentions_bound:
                    self.findings.append(
                        NumericFinding(
                            "PERF001",
                            node,
                            "loop-invariant array allocation inside a hot loop — "
                            "hoist the buffer out of the loop and reuse it" + suffix,
                        )
                    )
                    return


# ----------------------------------------------------------------------
# PURE001: value-sensitive purity over the call graph
# ----------------------------------------------------------------------
#: External calls whose *result* is ambient (non-reproducible) state.
_IMPURE_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns", "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "os.urandom", "os.getenv", "os.getpid", "os.getloadavg", "os.times",
        "uuid.uuid1", "uuid.uuid4",
        "builtins.input", "builtins.open", "io.open",
        "socket.gethostname", "platform.node",
    }
)
_IMPURE_PREFIXES = ("random.", "secrets.")
#: Seeded construction APIs — *with arguments* they are reproducible.
_RNG_FACTORIES = frozenset(
    {"numpy.random.default_rng", "numpy.random.Generator",
     "numpy.random.SeedSequence", "numpy.random.PCG64", "numpy.random.Philox",
     "numpy.random.MT19937", "numpy.random.SFC64"}
)


def _impure_external(call: ast.Call, ctx: ModuleContext) -> str | None:
    """Reason string when a call expression is an ambient-state source."""
    dotted = ctx.resolve(call.func)
    if dotted is None:
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in ("open", "input")
            and call.func.id not in ctx.imports
        ):
            return f"builtins.{call.func.id}()"
        return None
    if dotted in _IMPURE_CALLS:
        return f"{dotted}()"
    if dotted.startswith(_IMPURE_PREFIXES):
        return f"{dotted}()"
    if dotted.startswith("numpy.random."):
        if dotted in _RNG_FACTORIES:
            if not call.args and not call.keywords:
                return f"{dotted}() with no seed (OS entropy)"
            return None
        return f"module-level {dotted}()"
    return None


def _mutated_globals(index: ProjectIndex) -> dict[str, set[str]]:
    """module -> module-level names rebound via ``global`` somewhere."""
    out: dict[str, set[str]] = {}
    for module, ctx in index.modules.items():
        names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                names.update(node.names)
        if names:
            out[module] = names
    return out


@dataclass
class _PurityInfo:
    """Pre-chewed structure of one function for the purity fixpoint."""

    fn: FunctionInfo
    ctx: ModuleContext
    #: (targets, value) pairs of every binding statement.
    bindings: list[tuple[list[ast.expr], ast.expr]]
    #: Return value expressions.
    returns: list[ast.expr]
    #: call node -> resolved project target (for callee impurity lookup).
    project_calls: dict[ast.Call, str]
    #: call node -> impurity reason (ambient external sources).
    impure_calls: dict[ast.Call, str]
    #: Name nodes reading a mutated module global: name -> reason.
    global_reads: dict[str, str]


def _purity_info(
    fn: FunctionInfo,
    ctx: ModuleContext,
    index: ProjectIndex,
    mutated: dict[str, set[str]],
) -> _PurityInfo:
    bindings: list[tuple[list[ast.expr], ast.expr]] = []
    returns: list[ast.expr] = []
    project_calls: dict[ast.Call, str] = {}
    impure_calls: dict[ast.Call, str] = {}
    tscope = index._scope_for(fn, ctx)
    local_names: set[str] = set(fn.params)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            bindings.append((list(node.targets), node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            bindings.append(([node.target], node.value))
        elif isinstance(node, ast.AugAssign):
            bindings.append(([node.target], node.value))
        elif isinstance(node, ast.For):
            bindings.append(([node.target], node.iter))
        elif isinstance(node, ast.comprehension):
            bindings.append(([node.target], node.iter))
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            bindings.append(([node.optional_vars], node.context_expr))
        elif isinstance(node, ast.Return) and node.value is not None:
            returns.append(node.value)
        elif isinstance(node, ast.Call):
            # Container mutation flows values into the receiver:
            # ``out.append(time.time())`` taints ``out``.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "extend", "insert", "add", "update")
                and isinstance(node.func.value, ast.Name)
                and node.args
            ):
                bindings.append(
                    ([node.func.value], ast.Tuple(elts=list(node.args), ctx=ast.Load()))
                )
            reason = _impure_external(node, ctx)
            if reason is not None:
                impure_calls[node] = reason
                continue
            site = index.classify_call(node, tscope, ctx, caller=fn.qualname)
            if site.kind == "resolved" and site.target is not None:
                project_calls[node] = site.target
    for target_list, _ in bindings:
        for target in target_list:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    local_names.add(sub.id)
    module_mutated = mutated.get(fn.module, set())
    global_reads = {
        name: f"read of mutated module global {fn.module}.{name}"
        for name in module_mutated
        if name not in local_names
    }
    return _PurityInfo(fn, ctx, bindings, returns, project_calls, impure_calls, global_reads)


def _return_impurity(
    info: _PurityInfo,
    impure_of: "dict[str, tuple[bool, str]]",
    overrides: dict[str, tuple[str, ...]],
) -> tuple[bool, str]:
    """(is return-impure, witness) for one function under current facts."""

    def call_reason(call: ast.Call) -> str | None:
        if call in info.impure_calls:
            return info.impure_calls[call]
        target = info.project_calls.get(call)
        if target is None:
            return None
        for candidate in (target, *overrides.get(target, ())):
            impure, witness = impure_of.get(candidate, (False, ""))
            if impure:
                short = candidate.rsplit(".", 2)
                return f"calls {'.'.join(short[-2:])} ({witness})"
        return None

    def expr_reason(expr: ast.AST, tainted: set[str]) -> str | None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                reason = call_reason(node)
                if reason is not None:
                    return reason
            elif isinstance(node, ast.Name) and node.id in tainted:
                return f"value derived from {node.id} ({taint_why[node.id]})"
        return None

    tainted: set[str] = set()
    taint_why: dict[str, str] = {}
    for name, reason in info.global_reads.items():
        # A mutated-global *name* used in any expression taints directly;
        # model it as an always-tainted pseudo-binding.
        tainted.add(name)
        taint_why[name] = reason
    changed = True
    while changed:
        changed = False
        for targets, value in info.bindings:
            reason = expr_reason(value, tainted)
            if reason is None:
                continue
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name) and sub.id not in tainted:
                        tainted.add(sub.id)
                        taint_why[sub.id] = reason
                        changed = True
    for ret in info.returns:
        reason = expr_reason(ret, tainted)
        if reason is not None:
            return True, reason
    return False, ""


# ----------------------------------------------------------------------
# Cache feeds: who produces memoised values
# ----------------------------------------------------------------------
@dataclass
class CacheFeed:
    """One site where a computed value enters a cache."""

    module: str
    line: int
    col: int
    label: str  # "LRUCache.put_many", "self._decision_cache[...]", "@lru_cache"
    #: Project functions whose results feed the cached value (+ overrides).
    roots: tuple[str, ...]
    #: (root, witness) pairs for roots that failed the purity proof.
    impure: tuple[tuple[str, str], ...] = ()
    node: ast.AST | None = field(default=None, repr=False, compare=False)

    @property
    def proven_pure(self) -> bool:
        return not self.impure


def _cache_attr_in(expr: ast.expr) -> str | None:
    """Name of a ``*_cache`` attribute anywhere under ``expr``, if any."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and (
            node.attr.endswith("_cache") or node.attr == "cache"
        ):
            return node.attr
    return None


def _feed_roots(info: _PurityInfo, value_expr: ast.expr) -> set[str]:
    """Project functions whose results flow into ``value_expr`` (backward taint)."""
    needed = {
        n.id for n in ast.walk(value_expr) if isinstance(n, ast.Name)
    }
    roots = {
        info.project_calls[c]
        for c in ast.walk(value_expr)
        if isinstance(c, ast.Call) and c in info.project_calls
    }
    changed = True
    while changed:
        changed = False
        for targets, value in info.bindings:
            hit = any(
                isinstance(sub, ast.Name) and sub.id in needed
                for t in targets
                for sub in ast.walk(t)
            )
            if not hit:
                continue
            for node in ast.walk(value):
                if isinstance(node, ast.Call) and node in info.project_calls:
                    if info.project_calls[node] not in roots:
                        roots.add(info.project_calls[node])
                        changed = True
                elif isinstance(node, ast.Name) and node.id not in needed:
                    needed.add(node.id)
                    changed = True
    return roots


# ----------------------------------------------------------------------
# The analysis object (one per ProjectIndex, cached)
# ----------------------------------------------------------------------
class NumericAnalysis:
    """Dtype/shape propagation, hot set and purity facts for one project."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: Inferred abstract return values of project functions.
        self.return_vals: dict[str, ArrayVal] = {}
        #: Hot function qualname -> root label that makes it hot.
        self.hot_map: dict[str, str] = {}
        #: module -> NUM002/SHAPE001/PERF001 findings.
        self.module_findings: dict[str, list[NumericFinding]] = {}
        #: qualname -> (return-impure, witness).
        self.impurity: dict[str, tuple[bool, str]] = {}
        #: method qualname -> overriding qualnames in subclasses.
        self.overrides: dict[str, tuple[str, ...]] = {}
        #: Every discovered cache-feed site, proofs attached.
        self.cache_feeds: list[CacheFeed] = []
        self._project_fns = [
            fn
            for qual, fn in sorted(index.functions.items())
            if fn.module in index.modules
            and index.modules[fn.module].in_package("repro")
        ]
        self._infer_returns()
        self._compute_hot_map()
        self._run_module_pass()
        self._compute_overrides()
        self._compute_purity()
        self._discover_cache_feeds()

    # -- dtype/shape passes ---------------------------------------------
    def _infer_returns(self) -> None:
        for _ in range(3):
            changed = False
            for fn in self._project_fns:
                ctx = self.index.modules[fn.module]
                interp = _FunctionNumerics(fn, ctx, self.index, self.return_vals)
                interp._emit = False
                interp.run()
                val = interp.return_val()
                if val is None:
                    declared = annotation_val(fn.returns, ctx)
                    val = declared
                if val is not None and self.return_vals.get(fn.qualname) != val:
                    self.return_vals[fn.qualname] = val
                    changed = True
            if not changed:
                break

    def _compute_hot_map(self) -> None:
        by_caller: dict[str, set[str]] = {}
        for site in self.index.call_graph().edges:
            if site.target is not None:
                by_caller.setdefault(site.caller, set()).add(site.target)
        for root in sorted(_hot_roots(self.index)):
            label = ".".join(root.rsplit(".", 2)[-2:])
            frontier = [root]
            while frontier:
                qual = frontier.pop()
                if qual in self.hot_map:
                    continue
                self.hot_map[qual] = label
                frontier.extend(
                    t for t in by_caller.get(qual, ()) if t in self.index.functions
                )

    def _run_module_pass(self) -> None:
        for fn in self._project_fns:
            ctx = self.index.modules[fn.module]
            interp = _FunctionNumerics(fn, ctx, self.index, self.return_vals)
            findings = interp.run()
            if fn.qualname in self.hot_map:
                findings.extend(
                    _HotPathScan(interp, self.hot_map[fn.qualname]).run()
                )
            if findings:
                self.module_findings.setdefault(fn.module, []).extend(findings)

    # -- purity ----------------------------------------------------------
    def _compute_overrides(self) -> None:
        children: dict[str, list[str]] = {}
        for qual, cinfo in self.index.classes.items():
            for base in cinfo.bases:
                children.setdefault(base, []).append(qual)

        def subclasses(qual: str) -> list[str]:
            out: list[str] = []
            stack = list(children.get(qual, ()))
            while stack:
                sub = stack.pop()
                out.append(sub)
                stack.extend(children.get(sub, ()))
            return out

        for qual, cinfo in self.index.classes.items():
            subs = subclasses(qual)
            if not subs:
                continue
            for name, method in cinfo.methods.items():
                over = tuple(
                    self.index.classes[s].methods[name].qualname
                    for s in subs
                    if name in self.index.classes[s].methods
                )
                if over:
                    self.overrides[method.qualname] = over

    def _compute_purity(self) -> None:
        mutated = _mutated_globals(self.index)
        infos: dict[str, _PurityInfo] = {}
        for fn in self._project_fns:
            ctx = self.index.modules[fn.module]
            infos[fn.qualname] = _purity_info(fn, ctx, self.index, mutated)
        self.impurity = {qual: (False, "") for qual in infos}
        for _ in range(len(infos)):
            changed = False
            for qual, info in infos.items():
                fact = _return_impurity(info, self.impurity, self.overrides)
                if fact != self.impurity[qual]:
                    self.impurity[qual] = fact
                    changed = True
            if not changed:
                break
        self._purity_infos = infos

    def _impure_roots(self, roots: set[str]) -> tuple[tuple[str, str], ...]:
        bad: list[tuple[str, str]] = []
        for root in sorted(roots):
            for candidate in (root, *self.overrides.get(root, ())):
                impure, witness = self.impurity.get(candidate, (False, ""))
                if impure:
                    bad.append((candidate, witness))
        return tuple(bad)

    def _discover_cache_feeds(self) -> None:
        # (a) LRUCache.put / put_many call sites (the serving curve cache).
        for site in self.index.call_graph().edges:
            target = site.target or ""
            parts = target.rsplit(".", 2)
            if len(parts) < 3 or parts[-2] != "LRUCache":
                continue
            if parts[-1] not in ("put", "put_many") or site.node is None:
                continue
            info = self._purity_infos.get(site.caller)
            if info is None:
                continue
            args = site.node.args
            value_expr: ast.expr | None = None
            if parts[-1] == "put" and len(args) >= 2:
                value_expr = args[1]
            elif parts[-1] == "put_many" and args:
                value_expr = args[0]
            for kw in site.node.keywords:
                if kw.arg in ("value", "entries"):
                    value_expr = kw.value
            if value_expr is None:
                continue
            roots = _feed_roots(info, value_expr)
            self.cache_feeds.append(
                CacheFeed(
                    module=site.module,
                    line=site.line,
                    col=site.col,
                    label=f"LRUCache.{parts[-1]}",
                    roots=tuple(sorted(roots)),
                    impure=self._impure_roots(roots),
                    node=site.node,
                )
            )
        # (b) subscript stores into ``*_cache`` attributes (decision cache).
        for qual, info in self._purity_infos.items():
            fn = info.fn
            for node in ast.walk(fn.node):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Subscript):
                    continue
                attr = _cache_attr_in(target.value)
                if attr is None:
                    continue
                roots = _feed_roots(info, node.value)
                self.cache_feeds.append(
                    CacheFeed(
                        module=fn.module,
                        line=node.lineno,
                        col=node.col_offset,
                        label=f"self.{attr}[...]",
                        roots=tuple(sorted(roots)),
                        impure=self._impure_roots(roots),
                        node=node,
                    )
                )
        # (c) @lru_cache / @functools.cache functions memoise themselves.
        for fn in self._project_fns:
            if not any(
                "lru_cache" in dec or dec in ("cache", "functools.cache")
                for dec in fn.decorators
            ):
                continue
            roots = {fn.qualname}
            self.cache_feeds.append(
                CacheFeed(
                    module=fn.module,
                    line=fn.lineno,
                    col=fn.node.col_offset,
                    label="@lru_cache",
                    roots=tuple(sorted(roots)),
                    impure=self._impure_roots(roots),
                    node=fn.node,
                )
            )
        self.cache_feeds.sort(key=lambda f: (f.module, f.line, f.col))

    # -- rule API --------------------------------------------------------
    def findings_for_module(self, module: str) -> list[NumericFinding]:
        return self.module_findings.get(module, [])

    def feeds_in_module(self, module: str) -> list[CacheFeed]:
        return [f for f in self.cache_feeds if f.module == module]


def get_numeric_analysis(index: ProjectIndex) -> NumericAnalysis:
    """The (cached) numeric analysis for one project index."""
    analysis = getattr(index, "_numeric_analysis", None)
    if analysis is None:
        analysis = NumericAnalysis(index)
        index._numeric_analysis = analysis  # type: ignore[attr-defined]
    return analysis


# ----------------------------------------------------------------------
# Dtype table (for ``repro graph --dtypes``)
# ----------------------------------------------------------------------
def _format_val(val: ArrayVal) -> str:
    dtype = {_WEAK_INT: "int", _WEAK_FLOAT: "float"}.get(val.dtype, val.dtype) or "?"
    if val.rank == 0:
        return dtype
    if val.rank is None:
        return f"{dtype}[...]"
    dims = (
        ",".join("?" if d is None else str(d) for d in val.dims)
        if val.dims is not None
        else ",".join("?" * 0) or "x".join(["?"] * val.rank)
    )
    return f"{dtype}[{dims}]"


def dtype_table(index: ProjectIndex) -> dict:
    """Inferred dtypes/shapes across the project, JSON-ready."""
    analysis = get_numeric_analysis(index)
    functions = {
        qual: _format_val(val)
        for qual, val in sorted(analysis.return_vals.items())
        if val.dtype is not None or val.rank is not None
    }
    parameters: dict[str, dict[str, str]] = {}
    for qual, fn in sorted(index.functions.items()):
        ctx = index.modules.get(fn.module)
        if ctx is None:
            continue
        params = {
            name: _format_val(val) for name, val in _param_vals(fn, ctx).items()
        }
        if params:
            parameters[qual] = params
    return {
        "schema": 1,
        "lattice": list(DTYPES),
        "hot_roots": sorted(set(analysis.hot_map.values())),
        "hot_functions": sorted(analysis.hot_map),
        "functions": functions,
        "parameters": parameters,
        "cache_feeds": [
            {
                "module": feed.module,
                "line": feed.line,
                "label": feed.label,
                "roots": list(feed.roots),
                "proven_pure": feed.proven_pure,
            }
            for feed in analysis.cache_feeds
        ],
    }
