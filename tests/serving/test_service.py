"""SelectionService correctness: the bitwise-equivalence bar and friends.

The tentpole contract: batched + cached serving produces responses
bitwise-identical to a sequential ``run_online`` loop over the same
request stream.  Everything here compares with exact equality — no
tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import features_at_max
from repro.core.energy import ED2P, EDP
from repro.gpusim import GA100, NoiseModel, SimulatedGPU
from repro.serving import SelectionRequest, SelectionService
from repro.workloads import get_workload

from tests.golden.tiny_pipeline import MAX_SAMPLES_PER_RUN, make_tiny_pipeline
from tests.serving.asserts import assert_online_results_identical

EVAL_NAMES = ("lammps", "lstm", "resnet50", "lammps", "lstm", "lammps")


def sequential_baseline(pipeline, names, *, threshold=None):
    """The reference: one run_online call per request, in order."""
    return [pipeline.run_online(get_workload(n), threshold=threshold) for n in names]


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("chunking", ["one_flush", "per_request", "mixed"])
    def test_batched_equals_sequential_loop(self, pipeline_pair, chunking):
        """Same stream, any flush partition → bitwise-identical results."""
        seq_pipe, srv_pipe = pipeline_pair
        expected = sequential_baseline(seq_pipe, EVAL_NAMES)

        service = SelectionService(srv_pipe)
        requests = [SelectionRequest.from_workload(get_workload(n)) for n in EVAL_NAMES]
        if chunking == "one_flush":
            chunks = [requests]
        elif chunking == "per_request":
            chunks = [[r] for r in requests]
        else:
            chunks = [requests[:2], requests[2:5], requests[5:]]
        responses = [resp for chunk in chunks for resp in service.select_many(chunk)]

        assert len(responses) == len(expected)
        for response, want in zip(responses, expected):
            assert_online_results_identical(response.to_online_result(), want)

    def test_threshold_variant_equivalence(self, pipeline_pair):
        seq_pipe, srv_pipe = pipeline_pair
        expected = sequential_baseline(seq_pipe, EVAL_NAMES, threshold=0.03)
        service = SelectionService(srv_pipe, threshold=0.03)
        responses = service.select_many(
            [SelectionRequest.from_workload(get_workload(n)) for n in EVAL_NAMES]
        )
        for response, want in zip(responses, expected):
            assert_online_results_identical(response.to_online_result(), want)

    def test_run_online_many_equals_loop(self, pipeline_pair):
        """The pipeline-level wrapper honours the same contract."""
        seq_pipe, srv_pipe = pipeline_pair
        expected = sequential_baseline(seq_pipe, EVAL_NAMES)
        got = srv_pipe.run_online_many([get_workload(n) for n in EVAL_NAMES])
        for result, want in zip(got, expected):
            assert_online_results_identical(result, want)

    def test_cached_second_pass_identical(self, quiet_pipeline):
        """On a quiet device the second pass is served from cache, bitwise."""
        service = SelectionService(quiet_pipeline)
        requests = [
            SelectionRequest.from_workload(get_workload(n))
            for n in ("lammps", "lstm", "resnet50")
        ]
        first = service.select_many(requests)
        second = service.select_many(requests)
        assert all(not r.from_cache for r in first)
        assert all(r.from_cache for r in second)
        for a, b in zip(first, second):
            assert_online_results_identical(b.to_online_result(), a.to_online_result())

    def test_features_request_matches_manual_pipeline_math(self, pipeline_pair):
        """Pre-profiled requests reproduce the prediction stage exactly."""
        seq_pipe, srv_pipe = pipeline_pair
        expected = seq_pipe.run_online(get_workload("lstm"))
        # Profile on the *other* identically-seeded device, then hand the
        # profile to the service — only prediction+selection remain.
        fv, p_max, t_max = features_at_max(srv_pipe.device, get_workload("lstm"))
        service = SelectionService(srv_pipe)
        response = service.select_one(
            SelectionRequest.from_features(fv, t_max, power_at_max_w=p_max, name="lstm")
        )
        assert_online_results_identical(response.to_online_result(), expected)


class TestDedupAndCache:
    def test_intra_flush_dedup_computes_unique_curves_once(self, quiet_pipeline):
        service = SelectionService(quiet_pipeline)
        requests = [
            SelectionRequest.from_workload(get_workload(n))
            for n in ("lammps", "lammps", "lstm", "lammps", "lstm")
        ]
        responses = service.select_many(requests)
        stats = service.stats()
        # Quiet device → identical repeat profiles → 2 unique curves.
        assert stats.curves_computed == 2
        assert stats.requests == 5
        assert_online_results_identical(
            responses[1].to_online_result(), responses[0].to_online_result()
        )
        assert responses[1].name == "lammps"

    def test_cache_hits_skip_dnn_forward(self, quiet_pipeline):
        service = SelectionService(quiet_pipeline)
        req = SelectionRequest.from_workload(get_workload("resnet50"))
        service.select_one(req)
        before = service.stats().curves_computed
        service.select_one(req)
        after = service.stats()
        assert after.curves_computed == before
        assert after.cache_hits >= 1
        assert 0.0 < after.hit_rate <= 1.0

    def test_refresh_models_invalidates_cache(self, quiet_pipeline):
        service = SelectionService(quiet_pipeline)
        req = SelectionRequest.from_workload(get_workload("lammps"))
        service.select_one(req)
        assert service.stats().cache_entries == 1
        service.refresh_models()
        assert service.stats().cache_entries == 0
        response = service.select_one(req)
        assert not response.from_cache

    def test_coarse_quantization_hits_across_noisy_repeats(self, tiny_models):
        """Coarse keys make re-measured noisy profiles reuse cached curves.

        Sensor noise on this simulator moves the activity features at the
        second decimal, so 1-decimal quantization buckets repeat profiles
        of the same application together (and the default 12 decimals,
        exercised elsewhere, keeps them apart).
        """
        device = SimulatedGPU(GA100, seed=9, max_samples_per_run=MAX_SAMPLES_PER_RUN)
        pipeline = make_tiny_pipeline(tiny_models, device=device)
        service = SelectionService(pipeline, quantize_decimals=1)
        req = SelectionRequest.from_workload(get_workload("lammps"))
        service.select_one(req)
        response = service.select_one(req)  # noisy re-measurement
        assert response.from_cache
        assert service.stats().curves_computed == 1

    def test_cache_eviction_is_bounded(self, quiet_pipeline):
        service = SelectionService(quiet_pipeline, cache_size=1)
        for name in ("lammps", "lstm", "resnet50"):
            service.select_one(SelectionRequest.from_workload(get_workload(name)))
        stats = service.stats()
        assert stats.cache_entries == 1
        assert stats.cache_evictions == 2


class TestFusedService:
    """The opt-in fast engine: 1e-9 curve closeness, identical decisions."""

    @pytest.fixture()
    def profiled(self, quiet_pipeline):
        requests = []
        for name in ("lammps", "lstm", "resnet50"):
            fv, p_max, t_max = features_at_max(quiet_pipeline.device, get_workload(name))
            requests.append(
                SelectionRequest.from_features(fv, t_max, power_at_max_w=p_max, name=name)
            )
        return requests

    def test_fused_matches_exact_within_1e9(self, quiet_pipeline, profiled):
        exact = SelectionService(quiet_pipeline).select_many(profiled)
        fused = SelectionService(quiet_pipeline, fused=True).select_many(profiled)
        for got, want in zip(fused, exact):
            np.testing.assert_allclose(got.power_w, want.power_w, rtol=1e-9, atol=0.0)
            np.testing.assert_allclose(got.time_s, want.time_s, rtol=1e-9, atol=0.0)
            np.testing.assert_allclose(got.energy_j, want.energy_j, rtol=1e-9, atol=0.0)
            for name, sel in want.selections.items():
                assert got.selections[name].freq_mhz == sel.freq_mhz
                assert got.selections[name].index == sel.index

    def test_stats_report_engine_mode(self, quiet_pipeline):
        assert SelectionService(quiet_pipeline).stats().engine == "exact"
        assert SelectionService(quiet_pipeline, fused=True).stats().engine == "fused"

    def test_clear_cache_forces_recompute(self, quiet_pipeline, profiled):
        service = SelectionService(quiet_pipeline)
        first = service.select_many(profiled)
        service.clear_cache()
        assert service.stats().cache_entries == 0
        again = service.select_many(profiled)
        assert all(not r.from_cache for r in again)
        # Same engine, same weights: the recompute is bitwise-stable.
        for a, b in zip(again, first):
            assert_online_results_identical(b.to_online_result(), a.to_online_result())


class TestRequestValidation:
    def test_needs_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            SelectionRequest(name="x")

    def test_rejects_both_sources(self, quiet_pipeline):
        fv, _, t_max = features_at_max(quiet_pipeline.device, get_workload("lstm"))
        with pytest.raises(ValueError, match="exactly one"):
            SelectionRequest(
                name="x", workload=get_workload("lstm"), features=fv, time_at_max_s=t_max
            )

    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError, match="runs"):
            SelectionRequest.from_workload(get_workload("lstm"), runs=0)


class TestServiceConfig:
    def test_requires_fitted_pipeline(self):
        from repro.core import FrequencySelectionPipeline

        pipe = FrequencySelectionPipeline(SimulatedGPU(GA100, seed=0))
        with pytest.raises(ValueError, match="fitted"):
            SelectionService(pipe)

    def test_rejects_bad_batch_size(self, quiet_pipeline):
        with pytest.raises(ValueError, match="max_batch_size"):
            SelectionService(quiet_pipeline, max_batch_size=0)

    def test_rejects_negative_quantization(self, quiet_pipeline):
        with pytest.raises(ValueError, match="quantize_decimals"):
            SelectionService(quiet_pipeline, quantize_decimals=-1)

    def test_empty_flush(self, quiet_pipeline):
        assert SelectionService(quiet_pipeline).select_many([]) == []

    def test_objective_override(self, quiet_pipeline):
        service = SelectionService(quiet_pipeline)
        response = service.select_one(
            SelectionRequest.from_workload(get_workload("lstm")), objectives=(ED2P,)
        )
        assert set(response.selections) == {"ED2P"}
        with pytest.raises(KeyError, match="EDP"):
            response.selection("EDP")

    def test_threshold_override_per_call(self, quiet_pipeline):
        service = SelectionService(quiet_pipeline, threshold=None)
        req = SelectionRequest.from_workload(get_workload("lstm"))
        free = service.select_one(req, objectives=(EDP,))
        tight = service.select_one(req, objectives=(EDP,), threshold=0.0)
        assert tight.selection("EDP").perf_degradation == 0.0
        assert free.selection("EDP").freq_mhz <= tight.selection("EDP").freq_mhz

    def test_run_online_many_rejects_foreign_service(self, pipeline_pair):
        pipe_a, pipe_b = pipeline_pair
        service = SelectionService(pipe_a)
        with pytest.raises(ValueError, match="different pipeline"):
            pipe_b.run_online_many([get_workload("lstm")], service=service)


class TestStats:
    def test_counters_accumulate(self, quiet_pipeline):
        service = SelectionService(quiet_pipeline)
        service.select_many(
            [SelectionRequest.from_workload(get_workload(n)) for n in ("lammps", "lstm")]
        )
        service.select_one(SelectionRequest.from_workload(get_workload("lammps")))
        stats = service.stats()
        assert stats.requests == 3
        assert stats.batches == 2
        assert stats.max_batch_size == 2
        assert stats.mean_batch_size == pytest.approx(1.5)
        assert stats.measured_requests == 3
        assert stats.total_s >= 0.0
        assert stats.total_s == pytest.approx(
            stats.measure_s + stats.lookup_s + stats.predict_s + stats.select_s
        )

    def test_fresh_service_zeroed(self, quiet_pipeline):
        stats = SelectionService(quiet_pipeline).stats()
        assert stats.requests == 0
        assert stats.batches == 0
        assert stats.mean_batch_size == 0.0
        assert stats.hit_rate == 0.0
