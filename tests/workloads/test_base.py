"""Workload base-class contract tests."""

import numpy as np
import pytest

from repro.gpusim import KernelCensus
from repro.workloads.base import Workload, WorkloadCategory


class _Toy(Workload):
    name = "toy"
    category = WorkloadCategory.MICROBENCH
    default_size = 100
    min_size = 10
    max_size = 1000

    def census(self, size=None):
        n = float(self.resolve_size(size))
        return KernelCensus(flops_fp64=n, dram_bytes=n)


class TestResolveSize:
    def test_none_uses_default(self):
        assert _Toy().resolve_size(None) == 100

    def test_explicit_size(self):
        assert _Toy().resolve_size(500) == 500

    def test_below_min_rejected(self):
        with pytest.raises(ValueError, match="outside supported range"):
            _Toy().resolve_size(9)

    def test_above_max_rejected(self):
        with pytest.raises(ValueError, match="outside supported range"):
            _Toy().resolve_size(1001)

    def test_boundaries_accepted(self):
        assert _Toy().resolve_size(10) == 10
        assert _Toy().resolve_size(1000) == 1000


class TestReferenceKernelContract:
    def test_default_has_no_reference(self):
        assert not _Toy().has_reference_kernel

    def test_default_reference_raises(self):
        with pytest.raises(NotImplementedError, match="toy"):
            _Toy().run_reference(10, np.random.default_rng(0))

    def test_subclass_with_reference_detected(self):
        class WithRef(_Toy):
            def run_reference(self, size, rng):
                return {"checksum": 1.0}

        assert WithRef().has_reference_kernel


class TestCategoryEnum:
    def test_values(self):
        assert WorkloadCategory.MICROBENCH.value == "micro-benchmark"
        assert WorkloadCategory.SPEC_ACCEL.value == "spec-accel"
        assert WorkloadCategory.REAL_APP.value == "real-application"
