"""Ensemble / uncertainty-aware selection tests."""

import numpy as np
import pytest

from repro.core import EDP, FeatureVector
from repro.core.uncertainty import EnsembleModel, EnsemblePrediction, select_conservative


@pytest.fixture(scope="module")
def trained_ensemble(fast_ctx):
    dataset = fast_ctx.pipeline("GA100").training_dataset
    ens = EnsembleModel(n_members=3, reference_power_w=500.0, seed=0)
    ens.fit(dataset, power_epochs=15, time_epochs=10)
    return ens


@pytest.fixture()
def features():
    return FeatureVector(fp_active=0.8, dram_active=0.3, sm_app_clock=1410.0)


class TestEnsembleModel:
    def test_needs_two_members(self):
        with pytest.raises(ValueError, match="n_members"):
            EnsembleModel(n_members=1)

    def test_members_have_distinct_seeds(self):
        ens = EnsembleModel(n_members=3, seed=5)
        seeds = {m.seed for m in ens.power_members}
        assert seeds == {5, 6, 7}

    def test_unfitted_predict_raises(self, features):
        ens = EnsembleModel(n_members=2)
        with pytest.raises(RuntimeError, match="fit"):
            ens.predict_power(features, np.array([1005.0]))

    def test_prediction_shapes(self, trained_ensemble, features):
        freqs = np.linspace(510, 1410, 61)
        pred = trained_ensemble.predict_power(features, freqs, target_power_scale_w=500.0)
        assert pred.mean.shape == (61,)
        assert pred.std.shape == (61,)
        assert np.all(pred.std >= 0)

    def test_disagreement_is_nonzero(self, trained_ensemble, features):
        """Differently seeded members must disagree somewhere."""
        freqs = np.linspace(510, 1410, 61)
        pred = trained_ensemble.predict_power(features, freqs, target_power_scale_w=500.0)
        assert pred.std.max() > 0.0

    def test_time_prediction_scales_with_reference(self, trained_ensemble, features):
        freqs = np.linspace(510, 1410, 13)
        p10 = trained_ensemble.predict_time(features, freqs, time_at_max_s=10.0)
        p20 = trained_ensemble.predict_time(features, freqs, time_at_max_s=20.0)
        assert np.allclose(p20.mean, 2.0 * p10.mean)


class TestEnsemblePrediction:
    def test_bounds_bracket_mean(self):
        pred = EnsemblePrediction(
            freqs_mhz=np.array([1.0, 2.0]),
            mean=np.array([10.0, 20.0]),
            std=np.array([1.0, 2.0]),
        )
        assert np.all(pred.lower() <= pred.mean)
        assert np.all(pred.mean <= pred.upper())

    def test_lower_floored_at_zero(self):
        pred = EnsemblePrediction(
            freqs_mhz=np.array([1.0]), mean=np.array([0.5]), std=np.array([10.0])
        )
        assert pred.lower()[0] == 0.0

    def test_relative_std(self):
        pred = EnsemblePrediction(
            freqs_mhz=np.array([1.0]), mean=np.array([10.0]), std=np.array([1.0])
        )
        assert pred.relative_std[0] == pytest.approx(0.1)


class TestConservativeSelection:
    def _make(self, std_scale: float):
        freqs = np.linspace(510.0, 1410.0, 61)
        x = freqs / freqs[-1]
        t_mean = 1.0 / x
        p_mean = 50.0 + 450.0 * x**3.5
        power = EnsemblePrediction(freqs, p_mean, np.full(61, 1.0))
        time = EnsemblePrediction(freqs, t_mean, std_scale * t_mean)
        return power, time

    def test_zero_uncertainty_matches_plain_threshold(self):
        power, time = self._make(0.0)
        from repro.core import select_optimal_frequency

        conservative = select_conservative(power, time, threshold=0.05, z=1.64)
        plain = select_optimal_frequency(
            power.freqs_mhz,
            power.mean * time.mean,
            time.mean,
            objective=EDP,
            threshold=0.05,
        )
        assert conservative.freq_mhz == plain.freq_mhz

    def test_more_uncertainty_higher_clock(self):
        power, time_tight = self._make(0.005)
        _, time_loose = self._make(0.05)
        tight = select_conservative(power, time_tight, threshold=0.05)
        loose = select_conservative(power, time_loose, threshold=0.05)
        assert loose.freq_mhz >= tight.freq_mhz

    def test_objective_name_labelled(self):
        power, time = self._make(0.01)
        assert select_conservative(power, time).objective_name == "EDP-conservative"

    def test_grid_mismatch_rejected(self):
        power, time = self._make(0.01)
        bad_time = EnsemblePrediction(time.freqs_mhz + 1.0, time.mean, time.std)
        with pytest.raises(ValueError, match="grids disagree"):
            select_conservative(power, bad_time)

    def test_negative_z_rejected(self):
        power, time = self._make(0.01)
        with pytest.raises(ValueError, match="z must"):
            select_conservative(power, time, z=-1.0)

    def test_end_to_end_with_trained_ensemble(self, trained_ensemble, features, fast_ctx):
        device = fast_ctx.device("GA100")
        freqs = device.dvfs.usable_array()
        power = trained_ensemble.predict_power(features, freqs, target_power_scale_w=500.0)
        time = trained_ensemble.predict_time(features, freqs, time_at_max_s=5.0)
        sel = select_conservative(power, time, threshold=0.10)
        assert sel.freq_mhz in freqs
        assert sel.perf_degradation < 0.10
