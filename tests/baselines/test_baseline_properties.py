"""Cross-learner property tests (hypothesis) shared by all baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    MultipleLinearRegression,
    RandomForestRegressor,
)


def make_learners():
    return [
        MultipleLinearRegression(),
        DecisionTreeRegressor(max_depth=6, rng=np.random.default_rng(0)),
        RandomForestRegressor(n_estimators=8, max_depth=6, seed=0),
        GradientBoostingRegressor(n_estimators=25, max_depth=3, seed=0),
    ]


@given(seed=st.integers(0, 200))
@settings(max_examples=15, deadline=None)
def test_constant_target_predicted_exactly(seed):
    """Every learner must reproduce a constant target everywhere."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((60, 3))
    y = np.full(60, 7.5)
    for learner in make_learners():
        learner.fit(x, y)
        pred = learner.predict(rng.standard_normal((20, 3)))
        assert np.allclose(pred, 7.5, atol=1e-6), type(learner).__name__


@given(shift=st.floats(-100.0, 100.0))
@settings(max_examples=15, deadline=None)
def test_target_shift_equivariance_linear(shift):
    """OLS is exactly shift-equivariant.

    (Tree learners are only *mathematically* shift-equivariant: float
    rounding in the SSE-gain comparison can flip split ties under large
    shifts, so they are excluded here.)
    """
    rng = np.random.default_rng(0)
    x = rng.standard_normal((80, 2))
    y = np.sin(x[:, 0]) + x[:, 1]
    xt = rng.standard_normal((30, 2))
    a = MultipleLinearRegression().fit(x, y)
    b = MultipleLinearRegression().fit(x, y + shift)
    assert np.allclose(b.predict(xt), a.predict(xt) + shift, atol=1e-6)


@given(seed=st.integers(0, 200))
@settings(max_examples=10, deadline=None)
def test_tree_family_predictions_within_target_hull(seed):
    """Tree-based learners cannot extrapolate beyond observed targets."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((60, 2))
    y = rng.uniform(3.0, 9.0, size=60)
    xt = 5.0 * rng.standard_normal((30, 2))  # far outside training inputs
    for learner in (
        DecisionTreeRegressor(rng=np.random.default_rng(0)),
        RandomForestRegressor(n_estimators=5, seed=0),
    ):
        learner.fit(x, y)
        pred = learner.predict(xt)
        assert pred.min() >= 3.0 - 1e-9, type(learner).__name__
        assert pred.max() <= 9.0 + 1e-9, type(learner).__name__


def test_all_learners_deterministic_after_seeding():
    rng = np.random.default_rng(1)
    x = rng.standard_normal((70, 3))
    y = x[:, 0] ** 2
    xt = rng.standard_normal((10, 3))
    for build in (
        lambda: MultipleLinearRegression(),
        lambda: DecisionTreeRegressor(rng=np.random.default_rng(9)),
        lambda: RandomForestRegressor(n_estimators=6, seed=9),
        lambda: GradientBoostingRegressor(n_estimators=10, seed=9),
    ):
        a = build().fit(x, y).predict(xt)
        b = build().fit(x, y).predict(xt)
        assert np.array_equal(a, b)
