"""End-to-end determinism: same seeds, same science.

A reproduction is only as good as its reproducibility: two fresh
contexts with identical settings must produce bit-identical datasets,
models, predictions, and selections.
"""

import numpy as np

from repro.core.dataset import build_dataset
from repro.experiments import ExperimentContext, ExperimentSettings
from repro.gpusim import GA100, SimulatedGPU
from repro.telemetry import LaunchConfig, Launcher
from repro.workloads import get_workload


def _fresh_ctx():
    return ExperimentContext(ExperimentSettings.fast(seed=123))


class TestEndToEndDeterminism:
    def test_identical_pipelines_from_identical_seeds(self):
        ctx_a, ctx_b = _fresh_ctx(), _fresh_ctx()
        ds_a = ctx_a.pipeline("GA100").training_dataset
        ds_b = ctx_b.pipeline("GA100").training_dataset
        assert np.array_equal(ds_a.x, ds_b.x)
        assert np.array_equal(ds_a.y_power, ds_b.y_power)
        assert np.array_equal(ds_a.y_slowdown, ds_b.y_slowdown)

        res_a = ctx_a.pipeline("GA100").run_online(get_workload("lammps"))
        res_b = ctx_b.pipeline("GA100").run_online(get_workload("lammps"))
        assert np.array_equal(res_a.power_w, res_b.power_w)
        assert np.array_equal(res_a.time_s, res_b.time_s)
        assert res_a.selection("ED2P").freq_mhz == res_b.selection("ED2P").freq_mhz

    def test_different_seed_changes_measurements_not_science(self):
        a = ExperimentContext(ExperimentSettings.fast(seed=1))
        b = ExperimentContext(ExperimentSettings.fast(seed=2))
        res_a = a.pipeline("GA100").run_online(get_workload("lammps"))
        res_b = b.pipeline("GA100").run_online(get_workload("lammps"))
        # Raw measurements differ...
        assert res_a.measured_time_at_max_s != res_b.measured_time_at_max_s
        # ...but the selected clock is stable to within a few grid bins.
        assert abs(res_a.selection("ED2P").freq_mhz - res_b.selection("ED2P").freq_mhz) <= 150.0


def _campaign_dataset(workers: int, *, per_sample: bool = True):
    device = SimulatedGPU(GA100, seed=42, max_samples_per_run=8)
    launcher = Launcher(device)
    config = LaunchConfig(freqs_mhz=(600.0, 1005.0, 1410.0), runs_per_config=2)
    artifacts = launcher.collect(
        [get_workload("stream"), get_workload("dgemm")], config, workers=workers
    )
    return build_dataset(artifacts, per_sample=per_sample)


class TestParallelCampaignDeterminism:
    """Serial and parallel collection must be the same campaign, bitwise.

    Every (workload, freq, run) cell draws from its own SeedSequence
    child pinned to the cell's plan position, so neither worker count nor
    completion order can leak into the data.
    """

    def test_workers_1_and_4_produce_identical_datasets(self):
        a = _campaign_dataset(workers=1)
        b = _campaign_dataset(workers=4)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.y_power, b.y_power)
        assert np.array_equal(a.y_time, b.y_time)
        assert np.array_equal(a.y_slowdown, b.y_slowdown)

    def test_workers_invariance_holds_for_aggregate_rows(self):
        a = _campaign_dataset(workers=1, per_sample=False)
        b = _campaign_dataset(workers=4, per_sample=False)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.y_power, b.y_power)
        assert np.array_equal(a.y_time, b.y_time)
        assert np.array_equal(a.y_slowdown, b.y_slowdown)

    def test_repeated_campaigns_on_one_device_differ(self):
        """Successive campaigns must not replay the same noise (the spawn
        counter advances), mirroring how serial reruns differ."""
        device = SimulatedGPU(GA100, seed=42, max_samples_per_run=8)
        launcher = Launcher(device)
        config = LaunchConfig(freqs_mhz=(1410.0,), runs_per_config=1)
        first = launcher.collect([get_workload("stream")], config, workers=2)
        second = launcher.collect([get_workload("stream")], config, workers=2)
        assert first[0].record.exec_time_s != second[0].record.exec_time_s
