"""Voltage design-space exploration (the paper's stated future work).

Section 8: "In the future, we plan to evaluate the voltage design space
using the proposed methodology on GPUs supporting change of voltage
configuration."  The simulator's voltage curve supports per-clock
overrides, so this example runs that study: undervolt the energy-optimal
clock region and measure the additional savings on DGEMM, checking
stability margins by sweeping the undervolt depth.

Run:  python examples/voltage_exploration.py
"""

import numpy as np

from repro.gpusim import GA100, SimulatedGPU, VoltageCurve
from repro.workloads import get_workload


def energy_curve(device: SimulatedGPU, census) -> tuple[np.ndarray, np.ndarray]:
    freqs = device.dvfs.usable_array()
    energy = np.array([device.true_energy(census, f) for f in freqs])
    return freqs, energy


def main() -> None:
    census = get_workload("dgemm").census()

    baseline = SimulatedGPU(GA100, seed=0)
    freqs, e_base = energy_curve(baseline, census)
    opt_idx = int(np.argmin(e_base))
    opt_freq = freqs[opt_idx]
    stock_v = baseline.voltage.volts(opt_freq)
    print(f"stock energy optimum: {opt_freq:.0f} MHz at {stock_v:.3f} V "
          f"({e_base[opt_idx]:.0f} J per DGEMM run)")

    print("\nundervolting the optimal clock (stability margin sweep):")
    print(f"{'undervolt':>10s} {'voltage':>8s} {'energy':>8s} {'saving':>8s}")
    for undervolt_mv in (0, 20, 40, 60, 80):
        curve = VoltageCurve(GA100)
        if undervolt_mv:
            curve.set_override(opt_freq, stock_v - undervolt_mv / 1000.0)
        device = SimulatedGPU(GA100, seed=0, voltage=curve)
        energy = device.true_energy(census, opt_freq)
        saving = 100.0 * (1.0 - energy / e_base[opt_idx])
        print(f"{undervolt_mv:7d} mV {curve.volts(opt_freq):7.3f}V "
              f"{energy:7.0f}J {saving:7.1f}%")

    print("\nundervolting the whole upper clock band:")
    curve = VoltageCurve(GA100)
    for f in freqs[freqs >= opt_freq]:
        curve.set_override(float(f), max(0.70, float(baseline.voltage.volts(f)) - 0.05))
    tuned = SimulatedGPU(GA100, seed=0, voltage=curve)
    _, e_tuned = energy_curve(tuned, census)
    new_opt = freqs[np.argmin(e_tuned)]
    print(f"new energy optimum: {new_opt:.0f} MHz "
          f"({e_tuned.min():.0f} J, was {e_base[opt_idx]:.0f} J stock)")
    print(f"band undervolt moves the optimum {'up' if new_opt > opt_freq else 'down or nowhere'} "
          f"and saves {100 * (1 - e_tuned.min() / e_base[opt_idx]):.1f}% energy overall")


if __name__ == "__main__":
    main()
