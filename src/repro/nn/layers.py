"""Dense (fully connected) layer with backpropagation.

Implements the neuron of paper Eq. 5: ``s = sum(w_i x_i) + b`` followed by
the activation, vectorized as ``A = act(X @ W + b)`` over the batch.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import for_activation

__all__ = ["Dense"]


class Dense:
    """Fully connected layer ``y = act(x @ W + b)``.

    Parameters live in :attr:`params` and the matching gradients (after a
    backward pass) in :attr:`grads`, both keyed ``"W"`` / ``"b"`` — the
    contract optimizers rely on.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Activation | str = "linear",
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be >= 1")
        self.in_features = in_features
        self.out_features = out_features
        self.activation = get_activation(activation) if isinstance(activation, str) else activation
        # A fixed-seed default keeps standalone layers reproducible; the
        # network builder always threads its own SeedSequence-derived rng.
        rng = rng if rng is not None else np.random.default_rng(0)
        init = for_activation(self.activation.name)
        self.params: dict[str, np.ndarray] = {
            "W": init(rng, in_features, out_features),
            "b": np.zeros(out_features),
        }
        self.grads: dict[str, np.ndarray] = {}
        self._x: np.ndarray | None = None
        self._z: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        """Batch forward pass; caches inputs when ``training``."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected input of shape (batch, {self.in_features}), got {x.shape}")
        z = x @ self.params["W"] + self.params["b"]
        if training:
            self._x, self._z = x, z
        return self.activation(z)

    def forward_blocked(self, x: np.ndarray, block_rows: int) -> np.ndarray:
        """Inference forward pass with the matmul split into row blocks.

        BLAS gemm kernels handle the tail rows of a matrix with edge
        kernels whose accumulation order can differ from the kernel an
        interior row gets, so ``predict(vstack(curves))`` is *not* bitwise
        equal to per-curve ``predict`` calls for every stack size.  When
        each logical unit of work is ``block_rows`` rows (one prediction
        curve), running the matmul per block reproduces the standalone
        per-curve gemm calls exactly while the bias add and activation —
        elementwise, hence stacking-invariant — stay vectorized over the
        whole stack.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected input of shape (batch, {self.in_features}), got {x.shape}")
        if block_rows < 1:
            raise ValueError("block_rows must be >= 1")
        weights = self.params["W"]
        z = np.empty((x.shape[0], self.out_features))
        for start in range(0, x.shape[0], block_rows):
            z[start : start + block_rows] = x[start : start + block_rows] @ weights
        z += self.params["b"]
        return self.activation(z)

    def spec(self) -> tuple[np.ndarray, np.ndarray, str]:
        """Packed-inference export: ``(W, b, activation_name)``.

        Returns C-contiguous float64 *copies* so an inference engine can
        fold scaler affines into them (and hand them to shared-memory
        shard workers) without aliasing the trainable parameters — later
        training steps must never mutate a packed engine's weights.
        """
        return (
            np.ascontiguousarray(self.params["W"], dtype=float),
            np.ascontiguousarray(self.params["b"], dtype=float),
            self.activation.name,
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop: consumes dL/dA, fills grads, returns dL/dX.

        Gradients are *mean-reduced* over the batch (matching the MSE loss
        convention in :mod:`repro.nn.losses`), so learning rates transfer
        across batch sizes.
        """
        if self._x is None or self._z is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        grad_z = grad_out * self.activation.derivative(self._z)
        self.grads["W"] = self._x.T @ grad_z
        self.grads["b"] = grad_z.sum(axis=0)
        return grad_z @ self.params["W"].T

    def num_parameters(self) -> int:
        """Total trainable scalars in this layer."""
        return sum(int(p.size) for p in self.params.values())
