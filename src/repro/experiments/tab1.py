"""Table 1: specifications of the GPUs used in this study.

A direct dump of the architecture constants — the bench asserts that the
simulator is parameterised with exactly the paper's figures (frequency
ranges, config counts, memory clock/size, bandwidth, TDP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.arch import get_architecture
from repro.gpusim.dvfs import DVFSConfigSpace
from repro.experiments.report import render_table

__all__ = ["Tab1Result", "run_tab1", "render_tab1"]


@dataclass(frozen=True)
class Tab1Result:
    """Spec rows for both architectures."""

    rows: dict[str, dict[str, float | str]]


def run_tab1() -> Tab1Result:
    """Collect the Table 1 rows from the architecture registry."""
    rows: dict[str, dict[str, float | str]] = {}
    for name in ("GA100", "GV100"):
        arch = get_architecture(name)
        dvfs = DVFSConfigSpace.for_architecture(arch)
        rows[name] = {
            "core_freq_range_mhz": f"[{arch.core_freq_min_mhz:.0f}:{arch.core_freq_max_mhz:.0f}]",
            "default_core_freq_mhz": arch.default_core_freq_mhz,
            "used_dvfs_configs": len(dvfs),
            "supported_dvfs_configs": dvfs.num_supported,
            "memory_freq_mhz": arch.memory_freq_mhz,
            "memory_gib": arch.memory_gib,
            "peak_bandwidth_gbs": arch.peak_memory_bandwidth / 1e9,
            "tdp_w": arch.tdp_watts,
        }
    return Tab1Result(rows=rows)


def render_tab1(result: Tab1Result) -> str:
    """Table 1 layout: one column per GPU."""
    keys = list(next(iter(result.rows.values())).keys())
    table_rows = [[k, *(result.rows[gpu][k] for gpu in ("GA100", "GV100"))] for k in keys]
    return render_table(["spec", "GA100", "GV100"], table_rows, title="Table 1 - GPU specifications")
