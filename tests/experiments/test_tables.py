"""Table experiments run end-to-end (fast profile) with shape asserts."""

import pytest

from repro.experiments.tab1 import render_tab1, run_tab1
from repro.experiments.tab3 import render_tab3, run_tab3
from repro.experiments.tab4 import render_tab4, run_tab4
from repro.experiments.tab5 import render_tab5, run_tab5
from repro.experiments.tab6 import TAB6_APPS, THRESHOLDS, render_tab6, run_tab6


class TestTab1:
    def test_paper_specs(self):
        result = run_tab1()
        ga = result.rows["GA100"]
        gv = result.rows["GV100"]
        assert ga["used_dvfs_configs"] == 61
        assert gv["used_dvfs_configs"] == 117
        assert ga["tdp_w"] == 500.0
        assert gv["tdp_w"] == 250.0
        assert ga["peak_bandwidth_gbs"] == pytest.approx(2039.0)

    def test_render(self):
        out = render_tab1(run_tab1())
        assert "GA100" in out and "GV100" in out


class TestTab3:
    @pytest.fixture(scope="class")
    def tab3(self, fast_ctx, fast_suite):
        return run_tab3(fast_ctx, suite=fast_suite)

    def test_twelve_rows(self, tab3):
        assert len(tab3.rows) == 12

    def test_accuracy_floors(self, tab3):
        """Paper: 89-98%. The fast profile tolerates a lower floor."""
        assert tab3.min_accuracy("GA100") > 70.0
        assert tab3.min_accuracy("GV100") > 70.0

    def test_portability_gap_small(self, tab3):
        """GV100 (transferred weights) stays close to GA100 accuracy."""
        import numpy as np

        ga = np.mean([r.power_accuracy for r in tab3.rows if r.arch == "GA100"])
        gv = np.mean([r.power_accuracy for r in tab3.rows if r.arch == "GV100"])
        assert abs(ga - gv) < 10.0

    def test_row_lookup(self, tab3):
        row = tab3.row("GA100", "lammps")
        assert row.app == "lammps"
        with pytest.raises(KeyError):
            tab3.row("GA100", "doom")

    def test_render(self, tab3):
        assert "GV100" in render_tab3(tab3)


class TestTab4And5:
    def test_tab4_matches_fig9(self, fast_ctx, fast_suite):
        t4 = run_tab4(fast_ctx, suite=fast_suite)
        assert len(t4.evaluations) == 6
        assert "Table 4" in render_tab4(t4)

    def test_tab5_matches_fig10(self, fast_ctx, fast_suite):
        t5 = run_tab5(fast_ctx, suite=fast_suite)
        assert len(t5.rows) == 6
        assert "Table 5" in render_tab5(t5)


class TestTab6:
    @pytest.fixture(scope="class")
    def tab6(self, fast_ctx, fast_suite):
        return run_tab6(fast_ctx, suite=fast_suite)

    def test_all_cells_present(self, tab6):
        assert len(tab6.cells) == len(TAB6_APPS) * len(THRESHOLDS)

    def test_thresholds_honored(self, tab6):
        # Algorithm 1 bounds degradation as 1 - T_max/T < th, which in the
        # table's T/T_max - 1 convention is a bound of th / (1 - th).
        for app in TAB6_APPS:
            assert tab6.cell(app, 0.05).time_change_pct > -100 * 0.05 / 0.95
            assert tab6.cell(app, 0.01).time_change_pct > -100 * 0.01 / 0.99

    def test_tighter_threshold_less_time_loss(self, tab6):
        """Paper Table 6 shape: thresholds monotonically cut the loss."""
        for app in TAB6_APPS:
            nil = tab6.cell(app, None).time_change_pct
            t5 = tab6.cell(app, 0.05).time_change_pct
            t1 = tab6.cell(app, 0.01).time_change_pct
            assert nil <= t5 + 1e-9 <= t1 + 2e-9

    def test_tighter_threshold_less_energy_saving(self, tab6):
        for app in TAB6_APPS:
            nil = tab6.cell(app, None).energy_saving_pct
            t1 = tab6.cell(app, 0.01).energy_saving_pct
            assert t1 <= nil + 1e-9

    def test_frequency_rises_with_tightening(self, tab6):
        for app in TAB6_APPS:
            assert (
                tab6.cell(app, None).freq_mhz
                <= tab6.cell(app, 0.05).freq_mhz
                <= tab6.cell(app, 0.01).freq_mhz
            )

    def test_unknown_cell_raises(self, tab6):
        with pytest.raises(KeyError):
            tab6.cell("lammps", 0.42)

    def test_render(self, tab6):
        out = render_tab6(tab6)
        assert "Nil" in out and "5%" in out and "1%" in out
