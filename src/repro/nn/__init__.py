"""From-scratch NumPy feedforward neural network framework.

Implements everything the paper's modelling section (4.3) needs without a
deep-learning dependency:

* the nine activation functions the paper swept (ReLU, ELU, Leaky ReLU,
  SELU, sigmoid, tanh, softmax, softplus, softsign),
* the five optimizers it swept (Adam, Adamax, Nadam, RMSprop, AdaDelta)
  plus plain SGD,
* dense layers with backpropagation, MSE/MAE/Huber losses, LeCun/He/Glorot
  initialisation, mini-batch training with an 80/20 train/validation split
  and loss histories (paper Fig. 6), and weight (de)serialisation.

Everything is vectorized over the batch dimension; no Python-level loops
touch individual samples.
"""

from repro.nn.activations import (
    ELU,
    SELU,
    Activation,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Softmax,
    Softplus,
    Softsign,
    Tanh,
    get_activation,
)
from repro.nn.initializers import glorot_uniform, he_normal, lecun_normal
from repro.nn.layers import Dense
from repro.nn.losses import MAE, MSE, Huber, Loss, get_loss
from repro.nn.network import FeedForwardNetwork
from repro.nn.optimizers import SGD, AdaDelta, Adam, Adamax, Nadam, Optimizer, RMSprop, get_optimizer
from repro.nn.schedules import (
    ConstantSchedule,
    CosineAnnealing,
    ExponentialDecay,
    Schedule,
    StepDecay,
    WarmupSchedule,
)
from repro.nn.serialize import load_network, save_network
from repro.nn.training import History, TrainConfig, train

__all__ = [
    "Activation",
    "ReLU",
    "LeakyReLU",
    "ELU",
    "SELU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Softplus",
    "Softsign",
    "Linear",
    "get_activation",
    "lecun_normal",
    "he_normal",
    "glorot_uniform",
    "Dense",
    "Loss",
    "MSE",
    "MAE",
    "Huber",
    "get_loss",
    "FeedForwardNetwork",
    "Optimizer",
    "SGD",
    "RMSprop",
    "Adam",
    "Adamax",
    "Nadam",
    "AdaDelta",
    "get_optimizer",
    "Schedule",
    "ConstantSchedule",
    "StepDecay",
    "ExponentialDecay",
    "CosineAnnealing",
    "WarmupSchedule",
    "History",
    "TrainConfig",
    "train",
    "save_network",
    "load_network",
]
