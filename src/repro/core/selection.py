"""Optimal frequency selection — paper Algorithm 1.

Two steps:

1. score every configuration with the objective (EDP/ED2P) and take the
   minimiser;
2. if a performance-degradation threshold is given and the minimiser
   violates it, walk *upward* in frequency from the minimiser and take
   the first configuration whose degradation is under the threshold.

Note on the paper's pseudocode: lines 11-17 as printed assign ``index``
on *every* pass where the degradation test holds, which would always end
at the maximum frequency; the prose ("a higher frequency configuration is
selected ... this step is repeated until the performance degradation is
less than the threshold") describes the first-satisfying walk implemented
here.  Degradation is measured against performance at the maximum
frequency: ``perfDeg = 1 - T(f_max) / T(f)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.energy import EDP, ObjectiveFunction
from repro.units import Fraction, JoulesArray, MHz, MHzArray, SecondsArray

__all__ = ["SelectionResult", "select_optimal_frequency", "select_optimal_frequency_many"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of Algorithm 1 for one application."""

    freq_mhz: MHz
    index: int
    objective_name: str
    scores: np.ndarray
    #: Performance degradation at the selected clock vs f_max (fraction;
    #: positive = slower).
    perf_degradation: Fraction
    #: Energy change at the selected clock vs f_max (fraction; positive =
    #: saving).
    energy_saving: Fraction
    #: Whether the threshold walk moved the selection above the raw
    #: objective minimiser.
    threshold_applied: bool


def select_optimal_frequency(
    freqs_mhz: MHzArray,
    energy_j: JoulesArray,
    time_s: SecondsArray,
    *,
    objective: ObjectiveFunction = EDP,
    threshold: Fraction | None = None,
) -> SelectionResult:
    """Run Algorithm 1 over per-configuration energy/time curves.

    Parameters
    ----------
    freqs_mhz:
        Ascending clock grid; the last entry must be the maximum
        (reference) frequency.
    energy_j, time_s:
        Predicted (or measured) energy and execution time per clock.
    objective:
        EDP, ED2P, or any :class:`~repro.core.energy.ObjectiveFunction`.
    threshold:
        Optional maximum tolerated performance degradation (fraction,
        e.g. 0.05 for the paper's 5 % row in Table 6).  ``None`` selects
        purely by the objective, as the paper's main evaluation does.
    """
    freqs = np.asarray(freqs_mhz, dtype=float)
    energy = np.asarray(energy_j, dtype=float)
    time = np.asarray(time_s, dtype=float)
    if not (freqs.shape == energy.shape == time.shape):
        raise ValueError("freqs, energy, and time must have identical shapes")
    if freqs.size < 1:
        raise ValueError("empty design space")
    if np.any(np.diff(freqs) <= 0):
        raise ValueError("freqs must be strictly ascending")
    if threshold is not None and threshold < 0:
        raise ValueError("threshold must be non-negative")

    scores = objective(energy, time)
    k = int(np.argmin(scores))

    t_max = time[-1]
    e_max = energy[-1]
    degradation = 1.0 - t_max / time  # positive where slower than f_max

    index = k
    if threshold is not None and degradation[k] >= threshold:
        # Walk upward in frequency until degradation is acceptable; the
        # maximum frequency always satisfies a positive threshold
        # (degradation there is 0), and a zero threshold falls through to
        # f_max itself.
        for i in range(k + 1, freqs.size):
            if degradation[i] < threshold:
                index = i
                break
        else:
            index = freqs.size - 1
    # The flag records whether the walk actually *moved* the selection;
    # a walk that lands back on the minimiser (threshold=0 with the
    # minimiser already at f_max) applied nothing.
    threshold_applied = index != k

    return SelectionResult(
        freq_mhz=float(freqs[index]),
        index=index,
        objective_name=objective.name,
        scores=scores,
        perf_degradation=float(degradation[index]),
        energy_saving=float(1.0 - energy[index] / e_max) if e_max > 0 else 0.0,
        threshold_applied=threshold_applied,
    )


def select_optimal_frequency_many(
    freqs_mhz: MHzArray,
    energy_j: JoulesArray,
    time_s: SecondsArray,
    *,
    objective: ObjectiveFunction = EDP,
    threshold: Fraction | None = None,
) -> list[SelectionResult]:
    """Algorithm 1 over a batch of applications sharing one clock grid.

    ``energy_j`` and ``time_s`` are ``(n_apps, n_freqs)`` matrices.  The
    scoring, argmin, and degradation stages run as whole-matrix
    elementwise/rowwise operations — every one of which is
    stacking-invariant, so each row's result stays bitwise-identical to
    the per-row :func:`select_optimal_frequency` call (a property the
    test suite asserts).  Only rows whose minimiser actually violates the
    threshold fall back to the O(f) upward walk.
    """
    freqs = np.asarray(freqs_mhz, dtype=float)
    energy = np.asarray(energy_j, dtype=float)
    time = np.asarray(time_s, dtype=float)
    if energy.ndim != 2 or energy.shape != time.shape:
        raise ValueError(f"energy and time must be matching (n, f) matrices, got {energy.shape} vs {time.shape}")
    n, f = energy.shape
    if freqs.shape != (f,):
        raise ValueError(f"freqs must have shape ({f},), got {freqs.shape}")
    if f < 1:
        raise ValueError("empty design space")
    if np.any(np.diff(freqs) <= 0):
        raise ValueError("freqs must be strictly ascending")
    if threshold is not None and threshold < 0:
        raise ValueError("threshold must be non-negative")
    if n == 0:
        return []

    scores = objective(energy, time)
    minimisers = np.argmin(scores, axis=1)
    # Row-broadcast of the scalar path's `1.0 - t_max / time`: the same
    # divide/subtract per element, so bitwise-equal per row.
    degradation = 1.0 - time[:, -1:] / time

    indices = minimisers.copy()
    if threshold is not None:
        rows = np.flatnonzero(degradation[np.arange(n), minimisers] >= threshold)
        for i in rows:
            k = int(minimisers[i])
            for j in range(k + 1, f):
                if degradation[i, j] < threshold:
                    indices[i] = j
                    break
            else:
                indices[i] = f - 1

    e_max = energy[:, -1]
    rows_at = np.arange(n)
    selected_energy = energy[rows_at, indices]
    selected_degradation = degradation[rows_at, indices]
    savings = np.where(e_max > 0, 1.0 - selected_energy / np.where(e_max > 0, e_max, 1.0), 0.0)
    name = objective.name
    # Batch the ndarray->python conversions (tolist / row-view iteration
    # run in C); per-element float()/int() calls dominate otherwise.
    return [
        SelectionResult(
            freq_mhz=freq,
            index=index,
            objective_name=name,
            scores=score_row,
            perf_degradation=deg,
            energy_saving=saving,
            threshold_applied=applied,
        )
        for freq, index, score_row, deg, saving, applied in zip(
            freqs[indices].tolist(),
            indices.tolist(),
            list(scores),
            selected_degradation.tolist(),
            savings.tolist(),
            (indices != minimisers).tolist(),
        )
    ]
