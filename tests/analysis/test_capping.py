"""Power-cap policy tests."""

import numpy as np
import pytest

from repro.analysis import clock_for_power_cap, power_cap_policy


@pytest.fixture()
def curves():
    freqs = np.linspace(510.0, 1410.0, 61)
    x = freqs / freqs[-1]
    power = 50.0 + 450.0 * x**3
    time = 1.0 / x
    return freqs, power, time


class TestClockForCap:
    def test_fastest_admissible_clock(self, curves):
        freqs, power, _ = curves
        idx = clock_for_power_cap(freqs, power, 300.0)
        assert power[idx] <= 300.0
        if idx + 1 < freqs.size:
            assert power[idx + 1] > 300.0

    def test_generous_cap_gives_max_clock(self, curves):
        freqs, power, _ = curves
        assert clock_for_power_cap(freqs, power, 1e6) == freqs.size - 1

    def test_infeasible_cap_gives_lowest(self, curves):
        freqs, power, _ = curves
        assert clock_for_power_cap(freqs, power, 1.0) == 0

    def test_validation(self, curves):
        freqs, power, _ = curves
        with pytest.raises(ValueError, match="identical shapes"):
            clock_for_power_cap(freqs, power[:-1], 100.0)
        with pytest.raises(ValueError, match="cap_w"):
            clock_for_power_cap(freqs, power, 0.0)
        with pytest.raises(ValueError, match="ascending"):
            clock_for_power_cap(freqs[::-1], power, 100.0)


class TestPolicy:
    def test_decisions_per_cap(self, curves):
        freqs, power, time = curves
        decisions = power_cap_policy(freqs, power, time, [400.0, 250.0, 100.0])
        assert len(decisions) == 3
        # Tighter caps -> lower clocks, bigger slowdowns.
        assert decisions[0].freq_mhz >= decisions[1].freq_mhz >= decisions[2].freq_mhz
        assert decisions[0].slowdown <= decisions[1].slowdown <= decisions[2].slowdown

    def test_infeasible_flag(self, curves):
        freqs, power, time = curves
        decision = power_cap_policy(freqs, power, time, [10.0])[0]
        assert decision.infeasible
        assert decision.freq_mhz == freqs[0]

    def test_feasible_decision_honours_cap(self, curves):
        freqs, power, time = curves
        decision = power_cap_policy(freqs, power, time, [350.0])[0]
        assert not decision.infeasible
        assert decision.power_w <= 350.0

    def test_slowdown_of_max_clock_is_one(self, curves):
        freqs, power, time = curves
        decision = power_cap_policy(freqs, power, time, [1e9])[0]
        assert decision.slowdown == pytest.approx(1.0)
