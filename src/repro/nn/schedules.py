"""Learning-rate schedules.

Schedules map an epoch index to a learning-rate multiplier; the training
loop applies them to the optimizer before each epoch.  They compose with
any optimizer because only ``optimizer.learning_rate`` is touched (the
base value is captured on first use and restored on demand).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Schedule", "ConstantSchedule", "StepDecay", "ExponentialDecay", "CosineAnnealing", "WarmupSchedule"]


class Schedule(ABC):
    """Epoch -> learning-rate multiplier (1.0 = base rate)."""

    @abstractmethod
    def multiplier(self, epoch: int) -> float:
        """Multiplier for ``epoch`` (0-based)."""

    def __call__(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        m = self.multiplier(epoch)
        if m <= 0:
            raise RuntimeError(f"{type(self).__name__} produced non-positive multiplier {m}")
        return m


class ConstantSchedule(Schedule):
    """No decay — the implicit default."""

    def multiplier(self, epoch: int) -> float:
        return 1.0


class StepDecay(Schedule):
    """Multiply by ``gamma`` every ``step_epochs`` epochs."""

    def __init__(self, step_epochs: int, gamma: float = 0.5) -> None:
        if step_epochs < 1:
            raise ValueError("step_epochs must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.step_epochs = step_epochs
        self.gamma = gamma

    def multiplier(self, epoch: int) -> float:
        return self.gamma ** (epoch // self.step_epochs)


class ExponentialDecay(Schedule):
    """Smooth per-epoch decay ``rate ** epoch``."""

    def __init__(self, rate: float = 0.97) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        self.rate = rate

    def multiplier(self, epoch: int) -> float:
        return self.rate**epoch


class CosineAnnealing(Schedule):
    """Cosine decay from 1.0 to ``floor`` over ``total_epochs``."""

    def __init__(self, total_epochs: int, floor: float = 0.01) -> None:
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        if not 0.0 < floor <= 1.0:
            raise ValueError("floor must be in (0, 1]")
        self.total_epochs = total_epochs
        self.floor = floor

    def multiplier(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        return self.floor + 0.5 * (1.0 - self.floor) * (1.0 + np.cos(np.pi * progress))


class WarmupSchedule(Schedule):
    """Linear warmup over the first epochs, then delegate to ``after``."""

    def __init__(self, warmup_epochs: int, after: Schedule | None = None) -> None:
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        self.warmup_epochs = warmup_epochs
        self.after = after if after is not None else ConstantSchedule()

    def multiplier(self, epoch: int) -> float:
        if epoch < self.warmup_epochs:
            return (epoch + 1) / self.warmup_epochs
        return self.after.multiplier(epoch - self.warmup_epochs)
