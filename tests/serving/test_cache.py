"""LRUCache unit tests."""

from __future__ import annotations

import threading

import pytest

from repro.serving.cache import LRUCache


class TestBasics:
    def test_miss_returns_none(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        assert cache.misses == 1
        assert cache.hits == 0

    def test_put_then_get(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert len(cache) == 1

    def test_put_refreshes_value(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_clear_keeps_lifetime_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.misses == 1

    def test_maxsize_validated(self):
        with pytest.raises(ValueError, match="maxsize"):
            LRUCache(0)


class TestEviction:
    def test_oldest_evicted_at_capacity(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # now "b" is the LRU entry
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_size_never_exceeds_maxsize(self):
        cache = LRUCache(3)
        for i in range(50):
            cache.put(i, i)
            assert len(cache) <= 3
        assert cache.evictions == 47


class TestConcurrency:
    def test_parallel_put_get_stays_bounded(self):
        cache = LRUCache(16)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    key = (base * 200 + i) % 64
                    cache.put(key, key)
                    got = cache.get(key)
                    assert got is None or got == key
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16
        assert cache.hits + cache.misses == 8 * 200
